"""High-level simulation entry points used by examples, benchmarks and the CLI.

Every entry point here plans its work as a list of
:class:`~repro.exec.jobs.SimJob` records and executes them through an
:class:`~repro.exec.engine.ExecutionEngine`.  Callers that pass no engine get
a serial, uncached engine — bit-for-bit the behaviour of the original nested
loops — while the CLI's ``--jobs``/``--cache`` flags and the benchmark
harnesses inject parallel and memoised engines through the same parameter.

.. deprecated::
    :func:`run_schedule`, :func:`compare_schedulers` / :func:`run_comparison`
    are kept as thin shims for existing callers; new code should describe
    experiments declaratively with :class:`repro.api.ExperimentSpec` and
    :func:`repro.api.run_experiment`, which return a filterable
    :class:`~repro.api.resultset.ResultSet` instead of loose lists.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from ..circuits import Circuit
from ..exec.engine import ExecutionEngine
from ..exec.jobs import SimJob, plan_jobs
from ..fabric import GridLayout, StarVariant, compress_layout, star_layout
from .config import SimulationConfig
from .results import SimulationResult

__all__ = ["default_layout", "run_schedule", "run_comparison",
           "ComparisonRow", "compare_schedulers", "aggregate_comparison"]


def default_layout(circuit: Circuit, compression: float = 0.0,
                   seed: int = 0) -> GridLayout:
    """The STAR grid the paper evaluates on, optionally compressed.

    One 2x2 STAR block per program qubit (Figure 1c); ``compression`` in
    ``[0, 1]`` applies the Section 5.3 co-design sweep.  Equivalent to the
    registered ``"star"`` layout builder (:data:`repro.api.LAYOUTS`).
    """
    layout = star_layout(circuit.num_qubits, StarVariant.STAR)
    if compression > 0.0:
        layout, _report = compress_layout(layout, compression, seed=seed)
    return layout


def _resolve_engine(engine: Optional[ExecutionEngine]) -> ExecutionEngine:
    """Default to a serial, uncached engine (the deterministic reference)."""
    return engine if engine is not None else ExecutionEngine()


def _deprecated(name: str, replacement: str) -> None:
    warnings.warn(
        f"{name} is deprecated; use {replacement} instead "
        f"(see the 'Experiment API' section of the README)",
        DeprecationWarning, stacklevel=3)


def run_schedule(scheduler, circuit: Circuit,
                 config: Optional[SimulationConfig] = None,
                 layout: Optional[GridLayout] = None,
                 seeds: Union[int, Sequence[int]] = 1,
                 compression: float = 0.0,
                 engine: Optional[ExecutionEngine] = None
                 ) -> List[SimulationResult]:
    """Run ``scheduler`` on ``circuit`` for one or more seeds.

    .. deprecated:: use :func:`repro.api.run_experiment` with an
       :class:`~repro.api.spec.ExperimentSpec`, or plan jobs explicitly with
       :func:`repro.exec.plan_jobs` for unregistered circuits/layouts.

    Parameters
    ----------
    scheduler:
        Any :class:`~repro.scheduling.base.Scheduler` instance.
    config:
        Defaults to the paper's headline configuration (d=7, p=1e-4, k=25).
    layout:
        Defaults to the STAR grid for the circuit (optionally compressed).
    seeds:
        Either the number of seeded repetitions (seeds 0..n-1) or an explicit
        sequence of seeds.
    engine:
        Optional :class:`~repro.exec.engine.ExecutionEngine`; defaults to
        serial, uncached execution.  Results are returned in seed order no
        matter which executor backs the engine.
    """
    _deprecated("run_schedule", "repro.api.run_experiment (or repro.exec.plan_jobs)")
    config = config or SimulationConfig()
    layout = layout or default_layout(circuit, compression=compression)
    jobs = plan_jobs([scheduler], circuit, config, layout, seeds)
    return _resolve_engine(engine).run(jobs)


@dataclass
class ComparisonRow:
    """Aggregate of one (benchmark, scheduler) cell of Figure 10."""

    benchmark: str
    scheduler: str
    mean_cycles: float
    min_cycles: float
    max_cycles: float
    mean_idle_fraction: float
    runs: int
    results: List[SimulationResult] = field(default_factory=list, repr=False)

    def normalised_to(self, reference: "ComparisonRow") -> float:
        """Execution time normalised to a reference scheduler (Figure 10's y-axis)."""
        if reference.mean_cycles == 0:
            return 0.0
        return self.mean_cycles / reference.mean_cycles


def aggregate_comparison(jobs: Sequence[SimJob],
                         results: Sequence[SimulationResult]
                         ) -> Dict[str, ComparisonRow]:
    """Fold positionally-aligned ``(jobs, results)`` into comparison rows.

    Rows are keyed and ordered by scheduler name (ascending), and each row's
    ``results`` list is ordered by seed — deterministic regardless of the
    executor that produced ``results``.  This is a view over
    :meth:`repro.api.resultset.ResultSet.comparison_rows`, the canonical
    aggregation.
    """
    from ..api.resultset import ResultSet
    return ResultSet.from_jobs(jobs, results).comparison_rows()


def compare_schedulers(schedulers, circuit: Circuit,
                       config: Optional[SimulationConfig] = None,
                       layout: Optional[GridLayout] = None,
                       seeds: Union[int, Sequence[int]] = 3,
                       compression: float = 0.0,
                       engine: Optional[ExecutionEngine] = None
                       ) -> Dict[str, ComparisonRow]:
    """Run several schedulers on the same circuit/layout/seeds and aggregate.

    .. deprecated:: use :func:`repro.api.run_experiment` with an
       :class:`~repro.api.spec.ExperimentSpec` naming the schedulers, then
       :meth:`~repro.api.resultset.ResultSet.comparison_rows`.

    The returned mapping is ordered by scheduler name (ascending) and each
    row's per-seed ``results`` are ordered by seed, so output is identical
    whether the underlying engine executes serially, in parallel, or from
    cache.
    """
    _deprecated("compare_schedulers", "repro.api.run_experiment")
    from ..api.resultset import ResultSet
    config = config or SimulationConfig()
    layout = layout or default_layout(circuit, compression=compression)
    jobs = plan_jobs(schedulers, circuit, config, layout, seeds)
    results = _resolve_engine(engine).run(jobs)
    return ResultSet.from_jobs(jobs, results).comparison_rows()


#: Documented alias for :func:`compare_schedulers`, kept for the examples and
#: benchmarks written against the original artifact's naming.  Identical
#: semantics (and identical deprecation), including the
#: sorted-by-scheduler-name row ordering.
run_comparison = compare_schedulers
