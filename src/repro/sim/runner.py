"""Layout defaults and comparison-row aggregation for simulation results.

Work is planned as :class:`~repro.exec.jobs.SimJob` lists and executed
through an :class:`~repro.exec.engine.ExecutionEngine`; experiments are
described declaratively with :class:`repro.api.ExperimentSpec` and run via
:func:`repro.api.run_experiment`.

The original loose entry points — ``run_schedule``, ``compare_schedulers``
and its ``run_comparison`` alias — went through a ``DeprecationWarning``
cycle and are now hard errors: calling one raises :class:`RuntimeError`
naming the replacement.  The error stubs remain importable so existing
``from repro.sim import run_schedule`` statements fail at the call site
with a message, not at import time with an ``ImportError``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..circuits import Circuit
from ..exec.jobs import SimJob
from ..fabric import GridLayout, StarVariant, compress_layout, star_layout
from .results import SimulationResult

__all__ = ["default_layout", "run_schedule", "run_comparison",
           "ComparisonRow", "compare_schedulers", "aggregate_comparison"]


def default_layout(circuit: Circuit, compression: float = 0.0,
                   seed: int = 0) -> GridLayout:
    """The STAR grid the paper evaluates on, optionally compressed.

    One 2x2 STAR block per program qubit (Figure 1c); ``compression`` in
    ``[0, 1]`` applies the Section 5.3 co-design sweep.  Equivalent to the
    registered ``"star"`` layout builder (:data:`repro.api.LAYOUTS`).
    """
    layout = star_layout(circuit.num_qubits, StarVariant.STAR)
    if compression > 0.0:
        layout, _report = compress_layout(layout, compression, seed=seed)
    return layout


def _removed(name: str, replacement: str) -> RuntimeError:
    return RuntimeError(
        f"{name} was removed after its deprecation cycle; use {replacement} "
        f"instead (see the 'Experiment API' section of the README)")


def run_schedule(*args, **kwargs):
    """Removed.  Use :func:`repro.api.run_experiment` with an
    :class:`~repro.api.spec.ExperimentSpec`, or plan jobs explicitly with
    :func:`repro.exec.plan_jobs` for unregistered circuits/layouts."""
    raise _removed(
        "run_schedule",
        "repro.api.run_experiment with an ExperimentSpec (or "
        "repro.exec.plan_jobs + ExecutionEngine.run for unregistered "
        "circuits)")


def compare_schedulers(*args, **kwargs):
    """Removed.  Use :func:`repro.api.run_experiment` with an
    :class:`~repro.api.spec.ExperimentSpec` naming the schedulers, then
    :meth:`~repro.api.resultset.ResultSet.comparison_rows`."""
    raise _removed(
        "compare_schedulers",
        "repro.api.run_experiment with an ExperimentSpec, then "
        "ResultSet.comparison_rows()")


def run_comparison(*args, **kwargs):
    """Removed alias of :func:`compare_schedulers`; same replacement."""
    raise _removed(
        "run_comparison",
        "repro.api.run_experiment with an ExperimentSpec, then "
        "ResultSet.comparison_rows()")


@dataclass
class ComparisonRow:
    """Aggregate of one (benchmark, scheduler) cell of Figure 10."""

    benchmark: str
    scheduler: str
    mean_cycles: float
    min_cycles: float
    max_cycles: float
    mean_idle_fraction: float
    runs: int
    results: List[SimulationResult] = field(default_factory=list, repr=False)

    def normalised_to(self, reference: "ComparisonRow") -> float:
        """Execution time normalised to a reference scheduler (Figure 10's y-axis)."""
        if reference.mean_cycles == 0:
            return 0.0
        return self.mean_cycles / reference.mean_cycles


def aggregate_comparison(jobs: Sequence[SimJob],
                         results: Sequence[SimulationResult]
                         ) -> Dict[str, ComparisonRow]:
    """Fold positionally-aligned ``(jobs, results)`` into comparison rows.

    Rows are keyed and ordered by scheduler name (ascending), and each row's
    ``results`` list is ordered by seed — deterministic regardless of the
    executor that produced ``results``.  This is a view over
    :meth:`repro.api.resultset.ResultSet.comparison_rows`, the canonical
    aggregation.
    """
    from ..api.resultset import ResultSet
    return ResultSet.from_jobs(jobs, results).comparison_rows()
