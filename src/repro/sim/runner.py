"""High-level simulation entry points used by examples, benchmarks and the CLI.

Every entry point here plans its work as a list of
:class:`~repro.exec.jobs.SimJob` records and executes them through an
:class:`~repro.exec.engine.ExecutionEngine`.  Callers that pass no engine get
a serial, uncached engine — bit-for-bit the behaviour of the original nested
loops — while the CLI's ``--jobs``/``--cache`` flags and the benchmark
harnesses inject parallel and memoised engines through the same parameter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Union

from ..circuits import Circuit
from ..fabric import GridLayout, StarVariant, compress_layout, star_layout
from .config import SimulationConfig
from .results import SimulationResult, aggregate_results, geometric_mean

__all__ = ["default_layout", "run_schedule", "run_comparison",
           "ComparisonRow", "compare_schedulers", "aggregate_comparison"]


def default_layout(circuit: Circuit, compression: float = 0.0,
                   seed: int = 0) -> GridLayout:
    """The STAR grid the paper evaluates on, optionally compressed.

    One 2x2 STAR block per program qubit (Figure 1c); ``compression`` in
    ``[0, 1]`` applies the Section 5.3 co-design sweep.
    """
    layout = star_layout(circuit.num_qubits, StarVariant.STAR)
    if compression > 0.0:
        layout, _report = compress_layout(layout, compression, seed=seed)
    return layout


def _resolve_engine(engine=None):
    """Default to a serial, uncached engine (the deterministic reference)."""
    from ..exec.engine import ExecutionEngine
    return engine if engine is not None else ExecutionEngine()


def run_schedule(scheduler, circuit: Circuit,
                 config: Optional[SimulationConfig] = None,
                 layout: Optional[GridLayout] = None,
                 seeds: Union[int, Sequence[int]] = 1,
                 compression: float = 0.0,
                 engine=None) -> List[SimulationResult]:
    """Run ``scheduler`` on ``circuit`` for one or more seeds.

    Parameters
    ----------
    scheduler:
        Any :class:`~repro.scheduling.base.Scheduler` instance.
    config:
        Defaults to the paper's headline configuration (d=7, p=1e-4, k=25).
    layout:
        Defaults to the STAR grid for the circuit (optionally compressed).
    seeds:
        Either the number of seeded repetitions (seeds 0..n-1) or an explicit
        sequence of seeds.
    engine:
        Optional :class:`~repro.exec.engine.ExecutionEngine`; defaults to
        serial, uncached execution.  Results are returned in seed order no
        matter which executor backs the engine.
    """
    from ..exec.jobs import plan_jobs
    config = config or SimulationConfig()
    layout = layout or default_layout(circuit, compression=compression)
    jobs = plan_jobs([scheduler], circuit, config, layout, seeds)
    return _resolve_engine(engine).run(jobs)


@dataclass
class ComparisonRow:
    """Aggregate of one (benchmark, scheduler) cell of Figure 10."""

    benchmark: str
    scheduler: str
    mean_cycles: float
    min_cycles: float
    max_cycles: float
    mean_idle_fraction: float
    runs: int
    results: List[SimulationResult] = field(default_factory=list, repr=False)

    def normalised_to(self, reference: "ComparisonRow") -> float:
        """Execution time normalised to a reference scheduler (Figure 10's y-axis)."""
        if reference.mean_cycles == 0:
            return 0.0
        return self.mean_cycles / reference.mean_cycles


def aggregate_comparison(jobs, results: Sequence[SimulationResult]
                         ) -> Dict[str, ComparisonRow]:
    """Fold positionally-aligned ``(jobs, results)`` into comparison rows.

    Rows are keyed and ordered by scheduler name (ascending), and each row's
    ``results`` list is ordered by seed — deterministic regardless of the
    executor that produced ``results``.
    """
    per_scheduler: Dict[str, List[SimulationResult]] = {}
    benchmarks: Dict[str, str] = {}
    for job, result in zip(jobs, results):
        per_scheduler.setdefault(job.scheduler_name, []).append(result)
        benchmarks[job.scheduler_name] = job.benchmark
    rows: Dict[str, ComparisonRow] = {}
    for name in sorted(per_scheduler):
        results_for = sorted(per_scheduler[name], key=lambda r: r.seed)
        aggregate = aggregate_results(results_for)
        idle = (sum(result.idle_fraction() for result in results_for)
                / len(results_for)) if results_for else 0.0
        rows[name] = ComparisonRow(
            benchmark=benchmarks[name],
            scheduler=name,
            mean_cycles=aggregate["mean"],
            min_cycles=aggregate["min"],
            max_cycles=aggregate["max"],
            mean_idle_fraction=idle,
            runs=int(aggregate["runs"]),
            results=results_for,
        )
    return rows


def compare_schedulers(schedulers, circuit: Circuit,
                       config: Optional[SimulationConfig] = None,
                       layout: Optional[GridLayout] = None,
                       seeds: Union[int, Sequence[int]] = 3,
                       compression: float = 0.0,
                       engine=None) -> Dict[str, ComparisonRow]:
    """Run several schedulers on the same circuit/layout/seeds and aggregate.

    The returned mapping is ordered by scheduler name (ascending) and each
    row's per-seed ``results`` are ordered by seed, so output is identical
    whether the underlying engine executes serially, in parallel, or from
    cache.
    """
    from ..exec.jobs import plan_jobs
    config = config or SimulationConfig()
    layout = layout or default_layout(circuit, compression=compression)
    jobs = plan_jobs(schedulers, circuit, config, layout, seeds)
    results = _resolve_engine(engine).run(jobs)
    return aggregate_comparison(jobs, results)


#: Documented alias for :func:`compare_schedulers`, kept for the examples and
#: benchmarks written against the original artifact's naming.  Identical
#: semantics, including the sorted-by-scheduler-name row ordering.
run_comparison = compare_schedulers
