"""High-level simulation entry points used by examples, benchmarks and the CLI."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Union

from ..circuits import Circuit
from ..fabric import GridLayout, StarVariant, compress_layout, star_layout
from .config import SimulationConfig
from .results import SimulationResult, aggregate_results, geometric_mean

__all__ = ["default_layout", "run_schedule", "run_comparison",
           "ComparisonRow", "compare_schedulers"]


def default_layout(circuit: Circuit, compression: float = 0.0,
                   seed: int = 0) -> GridLayout:
    """The STAR grid the paper evaluates on, optionally compressed.

    One 2x2 STAR block per program qubit (Figure 1c); ``compression`` in
    ``[0, 1]`` applies the Section 5.3 co-design sweep.
    """
    layout = star_layout(circuit.num_qubits, StarVariant.STAR)
    if compression > 0.0:
        layout, _report = compress_layout(layout, compression, seed=seed)
    return layout


def run_schedule(scheduler, circuit: Circuit,
                 config: Optional[SimulationConfig] = None,
                 layout: Optional[GridLayout] = None,
                 seeds: Union[int, Sequence[int]] = 1,
                 compression: float = 0.0) -> List[SimulationResult]:
    """Run ``scheduler`` on ``circuit`` for one or more seeds.

    Parameters
    ----------
    scheduler:
        Any :class:`~repro.scheduling.base.Scheduler` instance.
    config:
        Defaults to the paper's headline configuration (d=7, p=1e-4, k=25).
    layout:
        Defaults to the STAR grid for the circuit (optionally compressed).
    seeds:
        Either the number of seeded repetitions (seeds 0..n-1) or an explicit
        sequence of seeds.
    """
    config = config or SimulationConfig()
    layout = layout or default_layout(circuit, compression=compression)
    if isinstance(seeds, int):
        seed_list: Sequence[int] = range(seeds)
    else:
        seed_list = seeds
    return [scheduler.run(circuit, layout, config, seed=seed)
            for seed in seed_list]


@dataclass
class ComparisonRow:
    """Aggregate of one (benchmark, scheduler) cell of Figure 10."""

    benchmark: str
    scheduler: str
    mean_cycles: float
    min_cycles: float
    max_cycles: float
    mean_idle_fraction: float
    runs: int
    results: List[SimulationResult] = field(default_factory=list, repr=False)

    def normalised_to(self, reference: "ComparisonRow") -> float:
        """Execution time normalised to a reference scheduler (Figure 10's y-axis)."""
        if reference.mean_cycles == 0:
            return 0.0
        return self.mean_cycles / reference.mean_cycles


def compare_schedulers(schedulers, circuit: Circuit,
                       config: Optional[SimulationConfig] = None,
                       layout: Optional[GridLayout] = None,
                       seeds: Union[int, Sequence[int]] = 3,
                       compression: float = 0.0) -> Dict[str, ComparisonRow]:
    """Run several schedulers on the same circuit/layout/seeds and aggregate."""
    config = config or SimulationConfig()
    layout = layout or default_layout(circuit, compression=compression)
    rows: Dict[str, ComparisonRow] = {}
    for scheduler in schedulers:
        results = run_schedule(scheduler, circuit, config=config,
                               layout=layout, seeds=seeds)
        aggregate = aggregate_results(results)
        idle = (sum(result.idle_fraction() for result in results)
                / len(results)) if results else 0.0
        rows[scheduler.name] = ComparisonRow(
            benchmark=circuit.name,
            scheduler=scheduler.name,
            mean_cycles=aggregate["mean"],
            min_cycles=aggregate["min"],
            max_cycles=aggregate["max"],
            mean_idle_fraction=idle,
            runs=int(aggregate["runs"]),
            results=results,
        )
    return rows


# Backwards-compatible alias used in a few examples/benchmarks.
run_comparison = compare_schedulers
