"""Simulation configuration (the knobs of Section 5.1)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..lattice import DEFAULT_COSTS, ROUTING_BACKEND_NAMES, LatticeSurgeryCosts
from ..rus import InjectionStrategy, PreparationModel

__all__ = ["SimulationConfig"]


@dataclass(frozen=True)
class SimulationConfig:
    """All parameters a scheduler run depends on.

    Parameters
    ----------
    distance:
        Surface-code distance ``d`` (the paper's headline results use 7).
    physical_error_rate:
        Physical qubit error rate ``p`` (headline: 1e-4).
    activity_window:
        ``c``, the number of past cycles over which ancilla activity is
        averaged (fixed to 100 in the paper).
    mst_period:
        ``k``, cycles between the starts of successive MST computations
        (swept over {25, 50, 100, 200}).
    mst_latency:
        ``tau_mst``, cycles one MST computation takes before it becomes
        available (~100 lattice-surgery cycles on the paper's hardware
        estimate).
    injection_strategy:
        Which injection circuit RESCQ prefers when the prepared ancilla sits
        on the data qubit's Z edge (Table 1).
    baseline_injection_strategy:
        The injection circuit used by the static baselines (Figure 1d uses
        the CNOT strategy).
    costs:
        Lattice-surgery cycle costs.
    max_cycles:
        Safety bound; the simulator raises if a run exceeds it (deadlock
        guard).
    max_parallel_preparations:
        Cap on how many ancillas RESCQ fans a single Rz preparation out to.
    eager_correction_prep / parallel_preparation:
        RESCQ design-choice toggles, used by the ablation benchmarks.
    profile_enabled:
        Collect per-phase cycle and wall-time counters
        (:class:`~repro.kernel.profiler.KernelProfile`) into
        :attr:`~repro.sim.results.SimulationResult.profile`.  Pure
        observability: simulated results are identical either way.
    routing_backend:
        Shortest-path machinery behind the routing index: ``"python"``
        (reference BFS), ``"vector"`` (batched numpy BFS, the default) or
        ``"numba"`` (compiled kernel, optional dependency).  All backends
        produce byte-identical traces; only wall-clock speed differs.
    kernel_backend:
        Event engine behind the simulation kernel: ``"python"`` (reference
        per-event heap), ``"batched"`` (cycle-bucketed boundary drain, the
        default) or ``"numba"`` (batched with a compiled drain, optional
        dependency).  Like the routing backends, all engines produce
        byte-identical traces; only wall-clock speed differs.
    """

    distance: int = 7
    physical_error_rate: float = 1e-4
    activity_window: int = 100
    mst_period: int = 25
    mst_latency: int = 100
    injection_strategy: InjectionStrategy = InjectionStrategy.ZZ
    baseline_injection_strategy: InjectionStrategy = InjectionStrategy.CNOT
    costs: LatticeSurgeryCosts = field(default_factory=lambda: DEFAULT_COSTS)
    max_cycles: int = 2_000_000
    max_parallel_preparations: int = 4
    eager_correction_prep: bool = True
    parallel_preparation: bool = True
    use_mst_routing: bool = True
    profile_enabled: bool = False
    routing_backend: str = "vector"
    kernel_backend: str = "batched"

    def __post_init__(self) -> None:
        if self.routing_backend not in ROUTING_BACKEND_NAMES:
            raise ValueError(
                f"routing_backend must be one of {ROUTING_BACKEND_NAMES}, "
                f"got {self.routing_backend!r}")
        # Imported lazily: repro.kernel imports this module at load time.
        from ..kernel.engines import KERNEL_BACKEND_NAMES
        if self.kernel_backend not in KERNEL_BACKEND_NAMES:
            raise ValueError(
                f"kernel_backend must be one of {KERNEL_BACKEND_NAMES}, "
                f"got {self.kernel_backend!r}")
        if self.distance < 3 or self.distance % 2 == 0:
            raise ValueError("distance must be an odd integer >= 3")
        if not 0.0 < self.physical_error_rate < 0.5:
            raise ValueError("physical_error_rate must be in (0, 0.5)")
        if self.activity_window <= 0 or self.mst_period <= 0:
            raise ValueError("activity_window and mst_period must be positive")
        if self.mst_latency < 0:
            raise ValueError("mst_latency must be non-negative")
        if self.max_parallel_preparations < 1:
            raise ValueError("max_parallel_preparations must be >= 1")

    def preparation_model(self) -> PreparationModel:
        """The |m_theta> preparation statistics implied by (d, p)."""
        return PreparationModel(self.distance, self.physical_error_rate)

    def with_updates(self, **kwargs) -> "SimulationConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    def describe(self) -> str:
        return (f"d={self.distance} p={self.physical_error_rate:g} "
                f"k={self.mst_period} c={self.activity_window} "
                f"tau_mst={self.mst_latency}")
