"""Cycle-level symbolic execution: configuration, results, and runners."""

from .config import SimulationConfig
from .results import GateTrace, SimulationResult, aggregate_results, geometric_mean
from .runner import (
    ComparisonRow,
    compare_schedulers,
    default_layout,
    run_comparison,
    run_schedule,
)

__all__ = [
    "SimulationConfig",
    "GateTrace",
    "SimulationResult",
    "aggregate_results",
    "geometric_mean",
    "ComparisonRow",
    "compare_schedulers",
    "run_comparison",
    "run_schedule",
    "default_layout",
]
