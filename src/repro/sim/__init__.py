"""Cycle-level symbolic execution: configuration, results, and runners."""

from .config import SimulationConfig
from .results import GateTrace, SimulationResult, aggregate_results, geometric_mean
from .runner import (
    ComparisonRow,
    aggregate_comparison,
    compare_schedulers,
    default_layout,
    run_comparison,
    run_schedule,
)

__all__ = [
    "SimulationConfig",
    "GateTrace",
    "SimulationResult",
    "aggregate_results",
    "geometric_mean",
    "ComparisonRow",
    "aggregate_comparison",
    "compare_schedulers",
    "run_comparison",
    "run_schedule",
    "default_layout",
]
