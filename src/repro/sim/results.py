"""Simulation outputs: per-gate traces and run-level results."""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["GateTrace", "SimulationResult", "geometric_mean",
           "aggregate_results"]


@dataclass(frozen=True)
class GateTrace:
    """Timing record of one executed gate.

    ``scheduled_cycle`` is the cycle at which the gate became ready (all its
    dependency predecessors had completed); ``start_cycle`` is when hardware
    work for it began; ``end_cycle`` is when it retired.  Figure 5 plots
    ``end_cycle - scheduled_cycle`` ("the time taken ... to complete after
    they are scheduled").
    """

    gate_index: int
    kind: str                      # "cnot", "rz", "h"
    qubits: Tuple[int, ...]
    scheduled_cycle: int
    start_cycle: int
    end_cycle: int
    injections: int = 0
    preparation_attempts: int = 0
    edge_rotations: int = 0

    @property
    def latency_after_schedule(self) -> int:
        return self.end_cycle - self.scheduled_cycle

    @property
    def service_time(self) -> int:
        return self.end_cycle - self.start_cycle

    @property
    def queueing_delay(self) -> int:
        return self.start_cycle - self.scheduled_cycle


@dataclass
class SimulationResult:
    """Everything a single (benchmark, scheduler, config, seed) run produced."""

    benchmark: str
    scheduler: str
    seed: int
    total_cycles: int
    num_qubits: int
    traces: List[GateTrace] = field(default_factory=list)
    #: Cycles each data qubit spent occupied by an operation.
    data_busy_cycles: Dict[int, int] = field(default_factory=dict)
    config_summary: str = ""
    metadata: Dict[str, float] = field(default_factory=dict)
    #: Per-phase cycle / wall-time counters (populated only when the run's
    #: config set ``profile_enabled``; see repro.kernel.profiler).  Pure
    #: observability — excluded from serialised results by default.
    profile: Dict[str, float] = field(default_factory=dict)

    # -- per-kind latency views (Figure 5) -------------------------------------

    def latencies(self, kind: Optional[str] = None) -> List[int]:
        return [trace.latency_after_schedule for trace in self.traces
                if kind is None or trace.kind == kind]

    def mean_latency(self, kind: Optional[str] = None) -> float:
        values = self.latencies(kind)
        return statistics.fmean(values) if values else 0.0

    def latency_histogram(self, kind: str,
                          max_cycles: int = 30) -> Dict[int, int]:
        """Histogram of post-schedule completion latency, clamped at ``max_cycles``."""
        histogram: Dict[int, int] = {}
        for value in self.latencies(kind):
            bucket = min(value, max_cycles)
            histogram[bucket] = histogram.get(bucket, 0) + 1
        return dict(sorted(histogram.items()))

    # -- idle-time accounting (Figures 11/12 idling panels) -----------------------

    def idle_fraction(self) -> float:
        """Average fraction of the run each data qubit spent idle."""
        if self.total_cycles <= 0 or self.num_qubits == 0:
            return 0.0
        fractions = []
        for qubit in range(self.num_qubits):
            busy = self.data_busy_cycles.get(qubit, 0)
            fractions.append(1.0 - min(busy, self.total_cycles) / self.total_cycles)
        return statistics.fmean(fractions)

    # -- counters -------------------------------------------------------------------

    @property
    def num_gates(self) -> int:
        return len(self.traces)

    def total_injections(self) -> int:
        return sum(trace.injections for trace in self.traces)

    def total_edge_rotations(self) -> int:
        return sum(trace.edge_rotations for trace in self.traces)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (the aggregate the paper reports across benchmarks)."""
    filtered = [value for value in values if value > 0]
    if not filtered:
        return 0.0
    return math.exp(sum(math.log(value) for value in filtered) / len(filtered))


def aggregate_results(results: Iterable[SimulationResult]) -> Dict[str, float]:
    """Mean/min/max total cycles across repeated seeded runs of one configuration."""
    cycles = [result.total_cycles for result in results]
    if not cycles:
        return {"mean": 0.0, "min": 0.0, "max": 0.0, "runs": 0}
    return {
        "mean": statistics.fmean(cycles),
        "min": float(min(cycles)),
        "max": float(max(cycles)),
        "runs": float(len(cycles)),
    }
