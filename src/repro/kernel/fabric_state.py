"""Runtime fabric occupancy shared by every scheduling policy.

The :class:`~repro.fabric.layout.GridLayout` is static; everything that
changes while a circuit executes on it lives here: which ancilla tile is busy
until when, which tile is holding a prepared state for which gate, when each
data qubit frees up and how many cycles it has spent busy, and which Pauli
boundary each data patch currently exposes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..fabric import GridLayout, Position
from ..fabric.flat import FlatGrid
from ..lattice import OrientationTracker
from .activity import ActivityTracker

__all__ = ["FabricState"]


class FabricState:
    """Occupancy, reservations and orientation state of the tile grid.

    Parameters
    ----------
    layout:
        The static tile grid.
    num_qubits:
        Number of program qubits (sizes the per-data-qubit arrays).
    activity_window:
        When given, an :class:`~repro.scheduling.activity.ActivityTracker`
        over that window records every busy interval (RESCQ's MST routing
        metric); layer-synchronous policies pass ``None`` and skip the
        bookkeeping entirely.
    """

    def __init__(self, layout: GridLayout, num_qubits: int,
                 activity_window: Optional[int] = None) -> None:
        self.layout = layout
        #: Ancilla positions, cached once (sorted row-major, stable order).
        self.ancillas: List[Position] = layout.ancilla_positions()
        #: Cycle until which each ancilla tile is busy (exclusive).
        self.anc_free: Dict[Position, int] = {pos: 0 for pos in self.ancillas}
        #: Ancilla -> gate index whose prepared state it is holding.
        self.anc_holding: Dict[Position, int] = {}
        #: Cycle until which each data qubit is busy (exclusive).
        self.data_free: List[int] = [0] * num_qubits
        #: Total cycles each data qubit has spent occupied by an operation.
        self.data_busy: Dict[int, int] = {q: 0 for q in range(num_qubits)}
        self.orientation = OrientationTracker(num_qubits)
        self.activity: Optional[ActivityTracker] = (
            ActivityTracker(activity_window) if activity_window else None)

    # -- ancilla occupancy -------------------------------------------------------

    def ancilla_idle(self, position: Position, now: int) -> bool:
        """True when the tile has no scheduled work at cycle ``now``."""
        return self.anc_free[position] <= now

    def occupy_ancilla(self, position: Position, start: int, end: int) -> None:
        """Mark the tile busy during ``[start, end)`` (and record activity)."""
        self.anc_free[position] = end
        if self.activity is not None:
            self.activity.record_busy(position, start, end)

    def truncate_ancilla(self, position: Position, now: int) -> None:
        """Free the tile at ``now`` if its scheduled work ends later.

        Used when in-flight work is cancelled (e.g. a preparation terminated
        because its Rz gate completed).  Activity already recorded for the
        cancelled interval is deliberately kept — the paper's activity metric
        counts scheduled occupancy.
        """
        if self.anc_free[position] > now:
            self.anc_free[position] = now

    # -- held states -------------------------------------------------------------

    def hold(self, position: Position, gate_index: int) -> None:
        self.anc_holding[position] = gate_index

    def release_hold(self, position: Position) -> None:
        self.anc_holding.pop(position, None)

    def holder(self, position: Position) -> Optional[int]:
        return self.anc_holding.get(position)

    # -- data-qubit occupancy ------------------------------------------------------

    def data_idle(self, qubit: int, now: int) -> bool:
        return self.data_free[qubit] <= now

    def occupy_data(self, qubit: int, start: int, end: int) -> None:
        """Mark the data qubit busy during ``[start, end)`` and account it."""
        self.data_free[qubit] = end
        self.data_busy[qubit] += end - start

    # -- synchronisation -----------------------------------------------------------

    def layer_barrier(self, cycle: int) -> None:
        """Layer-synchronous release rule: nothing is free before ``cycle``."""
        for position in self.anc_free:
            if self.anc_free[position] < cycle:
                self.anc_free[position] = cycle
        for qubit in range(len(self.data_free)):
            if self.data_free[qubit] < cycle:
                self.data_free[qubit] = cycle

    def activity_snapshot(self, now: int) -> Dict[Position, float]:
        """Per-ancilla activity at ``now`` (requires an activity window)."""
        if self.activity is None:
            raise RuntimeError("this FabricState tracks no activity")
        return self.activity.snapshot(self.ancillas, now)

    # -- array views ---------------------------------------------------------------
    #
    # Struct-of-arrays projections of the occupancy dicts, in the FlatGrid
    # ancilla-slot order (row-major).  The dicts remain the source of truth
    # for the per-gate scalar hot path; these views serve vectorised
    # consumers (batch scoring, diagnostics, equivalence tests) that want one
    # numpy pass over the whole fabric.

    @property
    def flat_grid(self) -> FlatGrid:
        """The layout's flat-array representation (shared, version-tracked)."""
        return FlatGrid.for_layout(self.layout)

    def anc_free_view(self) -> np.ndarray:
        """``int64[num_ancillas]`` — cycle each ancilla slot frees up (exclusive)."""
        anc_free = self.anc_free
        return np.fromiter((anc_free[pos] for pos in self.ancillas),
                           dtype=np.int64, count=len(self.ancillas))

    def anc_holding_view(self) -> np.ndarray:
        """``int64[num_ancillas]`` — gate index held per slot, -1 when empty."""
        holding = self.anc_holding
        return np.fromiter((holding.get(pos, -1) for pos in self.ancillas),
                           dtype=np.int64, count=len(self.ancillas))

    def anc_idle_mask(self, now: int) -> np.ndarray:
        """``bool[num_ancillas]`` — slots with no scheduled work at ``now``."""
        return self.anc_free_view() <= now

    def data_free_view(self) -> np.ndarray:
        """``int64[num_qubits]`` — cycle each data qubit frees up (exclusive)."""
        return np.asarray(self.data_free, dtype=np.int64)
