"""Lightweight per-phase instrumentation threaded through the kernel.

A :class:`KernelProfile` accumulates two kinds of counters for one run:

* **simulated-cycle counters** (``sim_*``) — how many lattice-surgery cycles
  of hardware work each phase scheduled (preparation, injection, CNOT
  merges, Hadamards, edge rotations);
* **wall-time counters** (``wall_*_s``) — real seconds spent in the
  classical-controller phases worth watching (routing queries, MST builds,
  and the whole run), measured with :func:`time.perf_counter`.  Nested
  :meth:`KernelProfile.timer` phases are **exclusive**: time accumulated by
  an inner timer is subtracted from every enclosing timer, so phase seconds
  add up without double-counting (an MST build that issues routing queries
  books the query time under ``routing``, not twice).  ``wall_total_s`` is
  recorded directly via :meth:`KernelProfile.add_wall` and stays inclusive —
  it is the denominator for per-phase shares;
* **event counters** — scheduling passes, processed events, routing queries
  and routing-plan cache hits.

Profiles are cheap (a few thousand float additions per run) but still
opt-in: schedulers build one only when
:attr:`~repro.sim.config.SimulationConfig.profile_enabled` is set, and the
flattened dict lands in :attr:`~repro.sim.results.SimulationResult.profile`
(rendered by ``rescq run --profile``).
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from typing import ContextManager, Dict, Iterator, Optional

__all__ = ["KernelProfile", "profile_timer"]

#: Reusable no-op context (nullcontext is stateless, safe to share).
_NULL_CONTEXT = nullcontext()


def profile_timer(profile: Optional["KernelProfile"],
                  phase: str) -> ContextManager[None]:
    """``profile.timer(phase)`` or a shared no-op when profiling is off.

    Lets call sites write one ``with profile_timer(self.profile, "x"):``
    around the real call instead of duplicating it in an if/else — the
    profiled and unprofiled paths must execute identical work.
    """
    if profile is None:
        return _NULL_CONTEXT
    return profile.timer(phase)


class KernelProfile:
    """Per-phase cycle and wall-time counters for one simulation run."""

    __slots__ = ("wall", "counters", "_frames")

    def __init__(self) -> None:
        #: phase -> accumulated wall seconds (exclusive of nested timers).
        self.wall: Dict[str, float] = {}
        #: counter name -> accumulated value (simulated cycles or counts).
        self.counters: Dict[str, float] = {}
        #: Open timer frames: ``[phase, start, child_seconds]`` per nesting
        #: level, used to make nested phase timers exclusive.
        self._frames: list = []

    def add(self, counter: str, amount: float = 1.0) -> None:
        self.counters[counter] = self.counters.get(counter, 0.0) + amount

    def add_wall(self, phase: str, seconds: float) -> None:
        self.wall[phase] = self.wall.get(phase, 0.0) + seconds

    def observe_max(self, counter: str, value: float) -> None:
        """Track the running maximum of ``value`` under ``counter``.

        For high-water marks (largest event bucket, deepest queue) where
        accumulation would be meaningless.
        """
        current = self.counters.get(counter)
        if current is None or value > current:
            self.counters[counter] = value

    @contextmanager
    def timer(self, phase: str) -> Iterator[None]:
        """Accumulate the *exclusive* wall time of the block under ``phase``.

        Time spent inside nested ``timer`` blocks is attributed to the inner
        phase only; the enclosing phase books the remainder.
        """
        frame = [phase, time.perf_counter(), 0.0]
        self._frames.append(frame)
        try:
            yield
        finally:
            elapsed = time.perf_counter() - frame[1]
            self._frames.pop()
            self.add_wall(phase, elapsed - frame[2])
            if self._frames:
                self._frames[-1][2] += elapsed

    def as_dict(self) -> Dict[str, float]:
        """Flatten to the ``SimulationResult.profile`` mapping.

        Wall phases appear as ``wall_<phase>_s`` (rounded to microseconds),
        counters under their own names.
        """
        flat: Dict[str, float] = {}
        for phase in sorted(self.wall):
            flat[f"wall_{phase}_s"] = round(self.wall[phase], 6)
        for name in sorted(self.counters):
            flat[name] = self.counters[name]
        return flat
