"""The gate lifecycle: dependency releases, ready ordering and retirement.

Every gate moves through the same states regardless of policy::

    pending --(all predecessors retired)--> released --(policy starts
    hardware work)--> executing --> retired (trace recorded)

The lifecycle owns the dependency graph, the cycle at which each gate was
released, and the ordered trace list; policies own the in-between (their
task objects, queues and arbitration).
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from ..circuits import Circuit, GateDependencyGraph
from ..sim.results import GateTrace

__all__ = ["GateLifecycle"]


class GateLifecycle:
    """Release/retire bookkeeping for one circuit execution."""

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        self._dag: "GateDependencyGraph | None" = None
        #: Gate index -> cycle at which all its predecessors had retired.
        self.release_cycle: Dict[int, int] = {}
        #: Retirement order; what :class:`~repro.sim.results.SimulationResult`
        #: reports as ``traces``.
        self.traces: List[GateTrace] = []

    @property
    def dag(self) -> GateDependencyGraph:
        """The dependency graph, built on first use.

        Layer-synchronous policies derive ordering from ``circuit.layers()``
        and only append traces, so they never pay for DAG construction.
        """
        if self._dag is None:
            self._dag = GateDependencyGraph(self.circuit)
        return self._dag

    def release_initial(self) -> None:
        """Release the dependency-free frontier at cycle 0."""
        for index in self.dag.ready:
            self.release_cycle[index] = 0

    def ready_by_priority(self) -> List[int]:
        """Released-but-not-retired gates, critical-path-first."""
        return self.dag.ready_by_priority()

    @property
    def all_completed(self) -> bool:
        return self.dag.all_completed

    @property
    def num_pending(self) -> int:
        return self.dag.num_pending

    def retire(self, trace: GateTrace, now: int) -> List[int]:
        """Record ``trace``, complete the gate, release its successors.

        Newly released successors get ``now`` as their release cycle.
        Returns the newly released gate indices.
        """
        self.traces.append(trace)
        newly_released = self.dag.complete(trace.gate_index)
        for index in newly_released:
            self.release_cycle[index] = now
        return newly_released

    def retire_many(self, traces: Iterable[GateTrace], now: int) -> List[int]:
        """Retire a batch of gates in order; one combined release list.

        Exactly equivalent to calling :meth:`retire` per trace — the batched
        event engine uses this to retire a whole homogeneous event run with
        one lifecycle call.
        """
        append = self.traces.append
        complete = self.dag.complete
        release_cycle = self.release_cycle
        newly_released: List[int] = []
        for trace in traces:
            append(trace)
            for index in complete(trace.gate_index):
                release_cycle[index] = now
                newly_released.append(index)
        return newly_released

    def describe_pending(self, limit: int = 4) -> str:
        """``#index kind`` summaries of the first pending gates.

        Diagnostic detail for :class:`~repro.kernel.kernel.DeadlockError`:
        naming the stuck gates beats reporting only a count.
        """
        indices = self.dag.pending_nodes(limit + 1)
        parts = [f"#{index} {self.circuit[index].name}"
                 for index in indices[:limit]]
        if len(indices) > limit:
            parts.append("...")
        return ", ".join(parts)
