"""The shared simulation kernel every scheduling policy runs on.

The kernel factors the machinery that RESCQ and the layer-synchronous
baselines used to hand-roll separately into four layers (bottom to top):

``SimulationClock`` (:mod:`repro.kernel.clock`)
    The simulated-time axis: the current cycle plus a deterministic
    event queue (ordered by cycle, then strictly by push order).  It is
    the ``python`` reference of a pluggable **event-engine** family
    (:mod:`repro.kernel.engines`): the ``batched`` default drains whole
    cycle boundaries from cycle-bucketed struct-of-arrays storage, the
    optional ``numba`` engine compiles the drain segmentation — all
    byte-identical, selected via ``SimulationConfig(kernel_backend=...)``.

``FabricState`` (:mod:`repro.kernel.fabric_state`)
    Runtime state of the tile grid shared by all policies: per-ancilla
    busy-until times and held states, per-data-qubit busy-until times and
    busy-cycle accounting, edge orientations, and (for policies that route
    on it) the sliding-window activity tracker.

``GateLifecycle`` (:mod:`repro.kernel.lifecycle`)
    The gate state machine: dependency releases, per-gate release cycles,
    and the retirement path that appends traces and unlocks successors.

``SimulationKernel`` (:mod:`repro.kernel.kernel`)
    Composes the three, owns the run inputs (circuit, layout, config,
    seed), the shared :class:`~repro.lattice.routing.RoutingIndex`, and the
    optional :class:`~repro.kernel.profiler.KernelProfile`.  It drives the
    two execution disciplines — the event-driven loop
    (:meth:`SimulationKernel.run_event_driven`) and the layer-synchronous
    loop (:meth:`SimulationKernel.run_layer_synchronous`) — so policies
    only implement release rules, queue arbitration and plan choice.
"""

from .clock import SimulationClock
from .engines import (KERNEL_BACKEND_NAMES, BatchedEngine, NumbaEngine,
                      create_engine, kernel_numba_available)
from .fabric_state import FabricState
from .kernel import (DeadlockError, EventDrivenPolicy, LayerSyncPolicy,
                     SimulationKernel)
from .lifecycle import GateLifecycle
from .profiler import KernelProfile, profile_timer

__all__ = [
    "SimulationClock",
    "KERNEL_BACKEND_NAMES",
    "BatchedEngine",
    "NumbaEngine",
    "create_engine",
    "kernel_numba_available",
    "FabricState",
    "GateLifecycle",
    "KernelProfile",
    "profile_timer",
    "SimulationKernel",
    "EventDrivenPolicy",
    "LayerSyncPolicy",
    "DeadlockError",
]
