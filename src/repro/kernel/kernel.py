"""The simulation kernel: one engine, two disciplines, pluggable policies.

:class:`SimulationKernel` owns everything a scheduling policy shares with
every other policy — the clock and event queue, the fabric occupancy state,
the gate lifecycle, the per-layout routing index, the seeded RNG and the
optional profiler — and drives one of two execution disciplines:

* :meth:`SimulationKernel.run_event_driven` — the realtime loop (RESCQ):
  repeat scheduling passes at the current cycle, then jump the clock to the
  next pending event and dispatch it to the policy;
* :meth:`SimulationKernel.run_layer_synchronous` — the static baseline loop:
  execute the circuit layer by layer with a barrier after each (the next
  layer starts only when every gate of the current one has finished).

Policies implement the narrow hooks of :class:`EventDrivenPolicy` or
:class:`LayerSyncPolicy`: release rules, queue arbitration and plan choice.
Everything else — time, occupancy, dependency releases, trace collection,
result assembly — is kernel machinery.
"""

from __future__ import annotations

import abc
import time
from typing import Dict, Optional

import numpy as np

from ..circuits import Circuit, Gate
from ..lattice import RoutingIndex
from ..sim.config import SimulationConfig
from ..sim.results import SimulationResult
from .engines import create_engine
from .fabric_state import FabricState
from .lifecycle import GateLifecycle
from .profiler import KernelProfile

__all__ = ["DeadlockError", "EventDrivenPolicy", "LayerSyncPolicy",
           "SimulationKernel"]


class DeadlockError(RuntimeError):
    """No gate can make progress and no work is in flight."""


class EventDrivenPolicy(abc.ABC):
    """Hooks an event-driven (realtime) scheduling policy implements."""

    def on_start(self) -> None:
        """Called once, after the initial dependency frontier is released."""

    @abc.abstractmethod
    def schedule_pass(self) -> None:
        """Start every piece of work that can start at the current cycle."""

    @abc.abstractmethod
    def handle_event(self, tag: str, payload: tuple) -> None:
        """React to one completion event popped from the clock's queue."""

    def handle_event_batch(self, tag: str, payloads: list) -> None:
        """React to a run of same-tag events due at the same cycle.

        Called by the batched event engines with the payloads in push order.
        The default is the reference discipline — one :meth:`handle_event`
        call per payload — and any override MUST be observationally
        equivalent to that loop (the golden suite and the engine-equivalence
        property tests pin this).
        """
        handle = self.handle_event
        for payload in payloads:
            handle(tag, payload)

    def on_advance(self) -> None:
        """Called after each batch of events, with the clock at the new cycle."""

    def result_metadata(self) -> Dict[str, float]:
        """Extra fields for :attr:`SimulationResult.metadata`."""
        return {}


class LayerSyncPolicy(abc.ABC):
    """Hooks a layer-synchronous scheduling policy implements."""

    def begin_layer(self, layer_start: int) -> None:
        """Called at the start of each layer (reset per-layer arbitration)."""

    @abc.abstractmethod
    def execute_gate(self, gate_index: int, gate: Gate,
                     layer_start: int) -> int:
        """Execute one gate of the open layer; return its end cycle."""

    def result_metadata(self) -> Dict[str, float]:
        return {}


class SimulationKernel:
    """Shared state and drive loops for one seeded scheduler run."""

    def __init__(self, circuit: Circuit, layout, config: SimulationConfig,
                 seed: int, scheduler_name: str,
                 benchmark: Optional[str] = None,
                 activity_window: Optional[int] = None) -> None:
        self.circuit = circuit
        self.layout = layout
        self.config = config
        self.seed = seed
        self.scheduler_name = scheduler_name
        self.benchmark = benchmark if benchmark is not None else circuit.name
        self.rng = np.random.default_rng(seed)

        self.clock = create_engine(config.kernel_backend)
        self.fabric = FabricState(layout, circuit.num_qubits,
                                  activity_window=activity_window)
        self.lifecycle = GateLifecycle(circuit)
        #: Shared per-(layout, backend) routing cache (reused across runs
        #: and seeds; separate backends hold separate caches so equivalence
        #: tests compare honest cold-path behaviour).
        self.routing = RoutingIndex.for_layout(layout,
                                               backend=config.routing_backend)
        # The routing index is shared across runs; remember its counters so
        # the profile reports only this run's queries.
        self._routing_queries_start = self.routing.queries
        self._routing_hits_start = self.routing.plan_cache_hits
        self.profile: Optional[KernelProfile] = (
            KernelProfile() if config.profile_enabled else None)

    # -- drive loops ---------------------------------------------------------------

    def run_event_driven(self, policy: EventDrivenPolicy) -> SimulationResult:
        """The realtime discipline: scheduling passes + event-queue jumps."""
        profile = self.profile
        wall_start = time.perf_counter() if profile is not None else 0.0
        self.lifecycle.release_initial()
        policy.on_start()
        while not self.lifecycle.all_completed:
            if profile is not None:
                profile.add("scheduling_passes")
            policy.schedule_pass()
            if self.lifecycle.all_completed:
                break
            next_cycle = self.clock.next_event_cycle()
            if next_cycle is None:
                raise DeadlockError(
                    f"scheduler deadlock at cycle {self.clock.now}: "
                    f"{self.lifecycle.num_pending} gates pending with no "
                    f"work in flight "
                    f"({self.lifecycle.describe_pending()})")
            if next_cycle > self.config.max_cycles:
                raise RuntimeError("simulation exceeded max_cycles")
            self.clock.advance(next_cycle)
            self.clock.dispatch_due(next_cycle, policy)
            policy.on_advance()
        if profile is not None:
            profile.add_wall("total", time.perf_counter() - wall_start)
        return self.build_result(policy.result_metadata())

    def run_layer_synchronous(self, policy: LayerSyncPolicy) -> SimulationResult:
        """The static discipline: per-layer execution with a full barrier."""
        profile = self.profile
        wall_start = time.perf_counter() if profile is not None else 0.0
        clock = 0
        for layer in self.circuit.layers():
            layer_start = clock
            layer_end = layer_start
            policy.begin_layer(layer_start)
            for gate_index in layer:
                gate = self.circuit[gate_index]
                end = policy.execute_gate(gate_index, gate, layer_start)
                layer_end = max(layer_end, end)
                if layer_end - layer_start > self.config.max_cycles:
                    raise RuntimeError("layer exceeded max_cycles; "
                                       "likely an unroutable CNOT")
            # Layer barrier: everything waits for the slowest gate.
            clock = layer_end
            self.fabric.layer_barrier(clock)
        self.clock.advance(clock)
        if profile is not None:
            profile.add_wall("total", time.perf_counter() - wall_start)
        return self.build_result(policy.result_metadata())

    # -- result assembly ------------------------------------------------------------

    def build_result(self,
                     metadata: Optional[Dict[str, float]] = None
                     ) -> SimulationResult:
        profile: Dict[str, float] = {}
        if self.profile is not None:
            self.profile.add("events", float(self.clock.events_processed))
            batches = getattr(self.clock, "batches_dispatched", None)
            if batches is not None:
                self.profile.add("event_batches", float(batches))
                self.profile.observe_max(
                    "max_bucket_events",
                    float(self.clock.max_bucket_events))
            self.profile.add("routing_queries",
                             float(self.routing.queries
                                   - self._routing_queries_start))
            self.profile.add("routing_plan_cache_hits",
                             float(self.routing.plan_cache_hits
                                   - self._routing_hits_start))
            profile = self.profile.as_dict()
        return SimulationResult(
            benchmark=self.benchmark,
            scheduler=self.scheduler_name,
            seed=self.seed,
            total_cycles=self.clock.now,
            num_qubits=self.circuit.num_qubits,
            traces=self.lifecycle.traces,
            data_busy_cycles=self.fabric.data_busy,
            config_summary=self.config.describe(),
            metadata=dict(metadata or {}),
            profile=profile,
        )
