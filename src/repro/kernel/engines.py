"""Pluggable event engines behind the simulation kernel (the PR 8 strategy,
applied to the event loop).

Every engine implements the same interface as the reference
:class:`~repro.kernel.clock.SimulationClock` — ``push`` /
``next_event_cycle`` / ``advance`` / ``pop_due`` / ``dispatch_due`` /
``pending_events`` / ``events_processed`` — and every engine dispatches the
exact same events in the exact same order, so all simulated traces are
byte-identical.  Only the storage and the dispatch *granularity* differ:

* ``python`` — the reference: a single ``heapq`` of ``(cycle, seq, tag,
  payload)`` tuples, one ``handle_event`` call per event.  Always available;
  the other engines are validated against it.
* ``batched`` (the default) — cycle-bucketed struct-of-arrays storage: one
  bucket per distinct cycle holding parallel arrays of interned tag ids and
  payload tuples, with a small heap over the *bucket keys* only.  A whole
  cycle boundary is drained in one sweep and handed to the policy as
  homogeneous-tag runs via ``handle_event_batch``, which lets
  :class:`~repro.scheduling.rescq.RescqPolicy` vectorise same-cycle
  injection outcomes and batch gate retirement.
* ``numba`` — the batched engine with the tag-run segmentation compiled via
  ``numba.njit`` for very large same-cycle event storms (optional
  dependency, ``pip install repro[numba]``; import-guarded with an install
  hint).

Tie-break preservation (why the batched engines are byte-identical): the
reference heap orders events by ``(cycle, seq)`` where ``seq`` is a global
monotonic push counter.  A bucket receives its events in push order (list
append), and buckets are drained in ascending cycle order, so concatenating
bucket contents reproduces the exact ``(cycle, seq)`` sequence.  Grouping a
bucket into *runs* of equal consecutive tags changes nothing about the
order in which individual events reach the policy — the default
``handle_event_batch`` is a plain loop over ``handle_event``, and the
specialised batch handlers are required (and property-tested) to be
stream-equivalent to that loop.  Events pushed *while* a sweep is being
dispatched are picked up in the same sweep, after the already-drained
events of their cycle — identical to the reference heap, where a freshly
pushed event's higher ``seq`` sorts it behind every event already popped.
(Like the reference, all kernel policies only ever push events at strictly
later cycles — every hardware operation lasts at least one cycle.)
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterator, List, Optional, Tuple

from .clock import SimulationClock

__all__ = ["KERNEL_BACKEND_NAMES", "BatchedEngine", "NumbaEngine",
           "create_engine", "kernel_numba_available"]

#: Engine names accepted by ``SimulationConfig(kernel_backend=...)``.
KERNEL_BACKEND_NAMES = ("python", "batched", "numba")

#: Bucket size at which the numba engine switches from the python run
#: scanner to the compiled kernel (array conversion has a fixed cost that
#: only amortises on large same-cycle storms).
_NUMBA_RUN_THRESHOLD = 512


def kernel_numba_available() -> bool:
    """True when the optional numba dependency can be imported."""
    try:
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


class _Bucket:
    """Struct-of-arrays event storage for one distinct cycle.

    Parallel lists, appended in push order: ``tags`` holds small interned
    tag ids (ints compare faster than strings and feed the run scanner),
    ``payloads`` the event payload tuples.
    """

    __slots__ = ("tags", "payloads")

    def __init__(self) -> None:
        self.tags: List[int] = []
        self.payloads: List[tuple] = []


class BatchedEngine:
    """Cycle-bucketed event engine draining whole cycle boundaries at once.

    Replaces the per-event ``heapq`` discipline with:

    * a dict of per-cycle :class:`_Bucket` (int64 cycle keys -> parallel
      tag-id/payload arrays, append-ordered = push-ordered);
    * a heap over the *distinct cycle keys* only (one push per new cycle,
      not one per event — the fabric schedules many events per boundary);
    * one :meth:`dispatch_due` sweep per boundary that hands the policy
      homogeneous-tag runs via ``handle_event_batch``.
    """

    name = "batched"

    def __init__(self) -> None:
        self.now = 0
        self.events_processed = 0
        #: Dispatch observability (surfaced in the run profile): how many
        #: handle_event/handle_event_batch calls the engine issued, and the
        #: largest single-cycle bucket it drained.
        self.batches_dispatched = 0
        self.max_bucket_events = 0
        self._buckets: Dict[int, _Bucket] = {}
        self._cycle_heap: List[int] = []
        #: tag string -> interned id, and the reverse table.
        self._tag_ids: Dict[str, int] = {}
        self._tag_names: List[str] = []
        self._pending = 0

    # -- the SimulationClock interface ---------------------------------------------

    def push(self, cycle: int, tag: str, payload: tuple) -> None:
        """Schedule ``(tag, payload)`` to fire at ``cycle``."""
        bucket = self._buckets.get(cycle)
        if bucket is None:
            bucket = _Bucket()
            self._buckets[cycle] = bucket
            heapq.heappush(self._cycle_heap, cycle)
        tag_id = self._tag_ids.get(tag)
        if tag_id is None:
            tag_id = len(self._tag_names)
            self._tag_ids[tag] = tag_id
            self._tag_names.append(tag)
        bucket.tags.append(tag_id)
        bucket.payloads.append(payload)
        self._pending += 1

    def next_event_cycle(self) -> Optional[int]:
        """Cycle of the earliest pending event, or ``None`` when idle."""
        heap = self._cycle_heap
        buckets = self._buckets
        while heap:
            cycle = heap[0]
            if cycle in buckets:
                return cycle
            heapq.heappop(heap)  # stale key: its bucket was fully drained
        return None

    def advance(self, cycle: int) -> None:
        """Move the clock forward to ``cycle``."""
        self.now = cycle

    def _take_next_bucket(self, cycle: int) -> Optional[_Bucket]:
        """Detach the earliest bucket with key <= ``cycle`` (or ``None``)."""
        next_cycle = self.next_event_cycle()
        if next_cycle is None or next_cycle > cycle:
            return None
        bucket = self._buckets.pop(next_cycle)
        self._pending -= len(bucket.tags)
        return bucket

    def pop_due(self, cycle: int) -> Iterator[Tuple[str, tuple]]:
        """Pop and yield every event scheduled at or before ``cycle``.

        Interface-compatible with the reference clock (events pushed while
        iterating with a due cycle are picked up in the same sweep, after
        the already-drained events of their cycle).
        """
        names = self._tag_names
        while True:
            bucket = self._take_next_bucket(cycle)
            if bucket is None:
                return
            for tag_id, payload in zip(bucket.tags, bucket.payloads):
                self.events_processed += 1
                yield names[tag_id], payload

    # -- batched dispatch ----------------------------------------------------------

    def _tag_runs(self, tags: List[int]) -> List[Tuple[int, int, int]]:
        """``(tag_id, start, stop)`` segments of equal consecutive tags."""
        runs: List[Tuple[int, int, int]] = []
        start = 0
        current = tags[0]
        for index in range(1, len(tags)):
            tag = tags[index]
            if tag != current:
                runs.append((current, start, index))
                start = index
                current = tag
        runs.append((current, start, len(tags)))
        return runs

    def dispatch_due(self, cycle: int, policy) -> None:
        """Drain the boundary at ``cycle`` as homogeneous-tag event batches.

        Each bucket is delivered as runs of equal consecutive tags: single
        events go through ``handle_event`` (exactly like the reference
        engine), longer runs through ``handle_event_batch`` whose default
        implementation is that same loop — so engines differ only in how
        often the policy gets the chance to vectorise.
        """
        names = self._tag_names
        while True:
            bucket = self._take_next_bucket(cycle)
            if bucket is None:
                return
            tags = bucket.tags
            payloads = bucket.payloads
            self.events_processed += len(tags)
            if len(tags) > self.max_bucket_events:
                self.max_bucket_events = len(tags)
            for tag_id, start, stop in self._tag_runs(tags):
                self.batches_dispatched += 1
                if stop - start == 1:
                    policy.handle_event(names[tag_id], payloads[start])
                else:
                    policy.handle_event_batch(names[tag_id],
                                              payloads[start:stop])

    @property
    def pending_events(self) -> int:
        return self._pending


class NumbaEngine(BatchedEngine):
    """The batched engine with compiled tag-run segmentation.

    Buckets below :data:`_NUMBA_RUN_THRESHOLD` events use the inherited
    python scanner (converting tiny lists to arrays costs more than the
    scan); larger same-cycle storms — the 4k-tile regime — run the
    ``numba.njit`` kernel over an int64 tag array.  Dispatch order is
    unchanged either way, so traces stay byte-identical.
    """

    name = "numba"

    def __init__(self) -> None:
        super().__init__()
        if not kernel_numba_available():
            raise RuntimeError(
                "kernel_backend='numba' requires the optional numba "
                "dependency; install it with `pip install repro[numba]` "
                "or select the 'batched' engine")
        self._run_kernel = _build_run_kernel()

    def _tag_runs(self, tags: List[int]) -> List[Tuple[int, int, int]]:
        if len(tags) < _NUMBA_RUN_THRESHOLD:
            return BatchedEngine._tag_runs(self, tags)
        import numpy as np
        array = np.array(tags, dtype=np.int64)
        bounds = self._run_kernel(array)
        return [(tags[bounds[i]], int(bounds[i]), int(bounds[i + 1]))
                for i in range(len(bounds) - 1)]


def _build_run_kernel():
    """Compile the run-boundary kernel (deferred so import works without
    numba)."""
    import numpy as np
    from numba import njit

    @njit(cache=True)
    def run_bounds(tags):
        count = 1
        for i in range(1, tags.size):
            if tags[i] != tags[i - 1]:
                count += 1
        bounds = np.empty(count + 1, dtype=np.int64)
        bounds[0] = 0
        slot = 1
        for i in range(1, tags.size):
            if tags[i] != tags[i - 1]:
                bounds[slot] = i
                slot += 1
        bounds[count] = tags.size
        return bounds

    return run_bounds


_ENGINE_CLASSES = {
    "python": SimulationClock,
    "batched": BatchedEngine,
    "numba": NumbaEngine,
}


def create_engine(name: str):
    """Instantiate the named event engine (raises on unknown names)."""
    try:
        engine_cls = _ENGINE_CLASSES[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel backend {name!r}; "
            f"expected one of {KERNEL_BACKEND_NAMES}") from None
    return engine_cls()
