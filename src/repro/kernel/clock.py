"""The simulated-time axis: current cycle plus a deterministic event queue."""

from __future__ import annotations

import heapq
from typing import Iterator, List, Optional, Tuple

__all__ = ["SimulationClock"]


class SimulationClock:
    """Simulation clock with a cycle-ordered event queue.

    Events are ``(cycle, tag, payload)`` records.  Ties on ``cycle`` resolve
    strictly by push order (a monotonic sequence number), never by payload
    contents — which is what makes kernel event ordering deterministic and
    independent of dict/set iteration order in the policies.
    """

    def __init__(self) -> None:
        self.now = 0
        self._events: List[Tuple[int, int, str, tuple]] = []
        self._seq = 0
        self.events_processed = 0

    def push(self, cycle: int, tag: str, payload: tuple) -> None:
        """Schedule ``(tag, payload)`` to fire at ``cycle``."""
        self._seq += 1
        heapq.heappush(self._events, (cycle, self._seq, tag, payload))

    def next_event_cycle(self) -> Optional[int]:
        """Cycle of the earliest pending event, or ``None`` when idle."""
        return self._events[0][0] if self._events else None

    def advance(self, cycle: int) -> None:
        """Move the clock forward to ``cycle``."""
        self.now = cycle

    def pop_due(self, cycle: int) -> Iterator[Tuple[str, tuple]]:
        """Pop and yield every event scheduled at or before ``cycle``.

        Events pushed *while iterating* with a due cycle are picked up in the
        same sweep (heap order is re-evaluated on every step).
        """
        while self._events and self._events[0][0] <= cycle:
            _cycle, _seq, tag, payload = heapq.heappop(self._events)
            self.events_processed += 1
            yield tag, payload

    @property
    def pending_events(self) -> int:
        return len(self._events)
