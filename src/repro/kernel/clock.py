"""The simulated-time axis: current cycle plus a deterministic event queue.

:class:`SimulationClock` doubles as the ``python`` reference **event
engine**: the other engines in :mod:`repro.kernel.engines` implement the
same interface (``push`` / ``next_event_cycle`` / ``advance`` / ``pop_due``
/ ``dispatch_due``) over different storage, and are validated against this
one event for event.
"""

from __future__ import annotations

import heapq
from typing import Iterator, List, Optional, Tuple

__all__ = ["SimulationClock"]


class SimulationClock:
    """Simulation clock with a cycle-ordered event queue.

    Events are ``(cycle, tag, payload)`` records.  Ties on ``cycle`` resolve
    strictly by push order (a monotonic sequence number), never by payload
    contents — which is what makes kernel event ordering deterministic and
    independent of dict/set iteration order in the policies.
    """

    #: Engine name (see :data:`repro.kernel.engines.KERNEL_BACKEND_NAMES`).
    name = "python"

    def __init__(self) -> None:
        self.now = 0
        self._events: List[Tuple[int, int, str, tuple]] = []
        self._seq = 0
        self.events_processed = 0

    def push(self, cycle: int, tag: str, payload: tuple) -> None:
        """Schedule ``(tag, payload)`` to fire at ``cycle``."""
        self._seq += 1
        heapq.heappush(self._events, (cycle, self._seq, tag, payload))

    def next_event_cycle(self) -> Optional[int]:
        """Cycle of the earliest pending event, or ``None`` when idle."""
        return self._events[0][0] if self._events else None

    def advance(self, cycle: int) -> None:
        """Move the clock forward to ``cycle``."""
        self.now = cycle

    def pop_due(self, cycle: int) -> Iterator[Tuple[str, tuple]]:
        """Pop and yield every event scheduled at or before ``cycle``.

        Events pushed *while iterating* with a due cycle are picked up in the
        same sweep (heap order is re-evaluated on every step).
        """
        while self._events and self._events[0][0] <= cycle:
            _cycle, _seq, tag, payload = heapq.heappop(self._events)
            self.events_processed += 1
            yield tag, payload

    def dispatch_due(self, cycle: int, policy) -> None:
        """Pop every event due at or before ``cycle`` and hand it to ``policy``.

        The reference dispatch discipline: one
        :meth:`~repro.kernel.kernel.EventDrivenPolicy.handle_event` call per
        event, in strict ``(cycle, push-order)`` sequence.  The batched
        engines dispatch the same events in the same order but grouped into
        homogeneous-tag runs (see
        :meth:`~repro.kernel.kernel.EventDrivenPolicy.handle_event_batch`).
        """
        for tag, payload in self.pop_due(cycle):
            policy.handle_event(tag, payload)

    @property
    def pending_events(self) -> int:
        return len(self._events)
