"""Sliding-window ancilla activity tracking (Section 4.2).

RESCQ's routing metric is the *activity* of each ancilla qubit: the fraction
of the last ``c`` cycles during which the ancilla was busy.  The tracker
records busy intervals as they are scheduled and answers window queries at MST
(re)computation time; old intervals are pruned lazily.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, Tuple

from ..fabric import Position

__all__ = ["ActivityTracker"]


class ActivityTracker:
    """Records per-ancilla busy intervals and answers windowed activity queries."""

    def __init__(self, window: int = 100) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self._intervals: Dict[Position, Deque[Tuple[int, int]]] = {}

    def record_busy(self, position: Position, start: int, end: int) -> None:
        """Record that ``position`` is busy during cycles ``[start, end)``."""
        if end <= start:
            return
        self._intervals.setdefault(position, deque()).append((start, end))

    def _prune(self, position: Position, horizon: int) -> None:
        intervals = self._intervals.get(position)
        if not intervals:
            return
        while intervals and intervals[0][1] <= horizon:
            intervals.popleft()

    def busy_cycles_in_window(self, position: Position, now: int) -> int:
        """Number of cycles in ``[now - window, now)`` during which the tile was busy."""
        horizon = now - self.window
        self._prune(position, horizon)
        busy = 0
        for start, end in self._intervals.get(position, ()):  # few, recent intervals
            lo = max(start, horizon)
            hi = min(end, now)
            if hi > lo:
                busy += hi - lo
        return busy

    def activity(self, position: Position, now: int) -> float:
        """``activity = #cycles active in the last c cycles / c`` (Section 4.2)."""
        if now <= 0:
            return 0.0
        effective_window = min(self.window, now)
        busy = self.busy_cycles_in_window(position, now)
        return min(1.0, busy / effective_window) if effective_window else 0.0

    def snapshot(self, positions: Iterable[Position], now: int) -> Dict[Position, float]:
        """Activity of every listed position at cycle ``now``."""
        return {position: self.activity(position, now) for position in positions}

    def reset(self) -> None:
        self._intervals.clear()
