"""Sliding-window ancilla activity tracking (Section 4.2).

RESCQ's routing metric is the *activity* of each ancilla qubit: the fraction
of the last ``c`` cycles during which the ancilla was busy.  The tracker
records busy intervals as they are scheduled and answers window queries at MST
(re)computation time; old intervals are pruned lazily.

Intervals are stored struct-of-arrays style — three parallel flat lists
``(slot, start, end)`` plus a position<->slot interning map — so the bulk
:meth:`ActivityTracker.snapshot` query (one per MST build, over every ancilla)
runs as a single vectorised clip-and-bincount instead of a per-position python
loop.  The arithmetic is pure integer clipping, so the numbers are identical
to the historical per-position scan.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from ..fabric import Position

__all__ = ["ActivityTracker"]


class ActivityTracker:
    """Records per-ancilla busy intervals and answers windowed activity queries."""

    def __init__(self, window: int = 100) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        #: Position -> dense slot index (assigned on first record).
        self._slots: Dict[Position, int] = {}
        # Parallel interval arrays: interval i is tile _slot_list[i] busy
        # during [_start_list[i], _end_list[i]).
        self._slot_list: List[int] = []
        self._start_list: List[int] = []
        self._end_list: List[int] = []

    def record_busy(self, position: Position, start: int, end: int) -> None:
        """Record that ``position`` is busy during cycles ``[start, end)``."""
        if end <= start:
            return
        slot = self._slots.get(position)
        if slot is None:
            slot = len(self._slots)
            self._slots[position] = slot
        self._slot_list.append(slot)
        self._start_list.append(start)
        self._end_list.append(end)

    def busy_cycles_in_window(self, position: Position, now: int) -> int:
        """Number of cycles in ``[now - window, now)`` during which the tile was busy."""
        slot = self._slots.get(position)
        if slot is None:
            return 0
        horizon = now - self.window
        busy = 0
        for index, interval_slot in enumerate(self._slot_list):
            if interval_slot != slot:
                continue
            lo = max(self._start_list[index], horizon)
            hi = min(self._end_list[index], now)
            if hi > lo:
                busy += hi - lo
        return busy

    def activity(self, position: Position, now: int) -> float:
        """``activity = #cycles active in the last c cycles / c`` (Section 4.2)."""
        if now <= 0:
            return 0.0
        effective_window = min(self.window, now)
        busy = self.busy_cycles_in_window(position, now)
        return min(1.0, busy / effective_window) if effective_window else 0.0

    def snapshot(self, positions: Iterable[Position], now: int) -> Dict[Position, float]:
        """Activity of every listed position at cycle ``now`` (one numpy pass)."""
        if now <= 0 or not self._slot_list:
            return {position: 0.0 for position in positions}
        horizon = now - self.window
        slots = np.asarray(self._slot_list, dtype=np.int64)
        starts = np.asarray(self._start_list, dtype=np.int64)
        ends = np.asarray(self._end_list, dtype=np.int64)
        live = ends > horizon
        if not live.all():
            # Lazy prune: intervals fully behind the window can never
            # contribute again (``now`` is monotonic in a run).
            slots = slots[live]
            starts = starts[live]
            ends = ends[live]
            self._slot_list = slots.tolist()
            self._start_list = starts.tolist()
            self._end_list = ends.tolist()
        contrib = np.minimum(ends, now) - np.maximum(starts, horizon)
        np.clip(contrib, 0, None, out=contrib)
        busy = np.bincount(slots, weights=contrib.astype(np.float64),
                           minlength=len(self._slots))
        effective_window = min(self.window, now)
        slot_of = self._slots.get
        result: Dict[Position, float] = {}
        for position in positions:
            slot = slot_of(position)
            if slot is None:
                result[position] = 0.0
            else:
                result[position] = min(1.0, int(busy[slot]) / effective_window)
        return result

    def reset(self) -> None:
        self._slots.clear()
        self._slot_list.clear()
        self._start_list.clear()
        self._end_list.clear()
