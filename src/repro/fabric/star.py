"""STAR architecture layout builders (Section 2.2 and Figure 1c).

[Akahoshi et al. 2024] define three atomic blocks around each data qubit:

* **STAR** — a 2x2 block: 1 data tile + 3 ancilla tiles;
* **compact STAR** — a 3x1 block: 1 data tile + 2 ancilla tiles;
* **compressed STAR** — a 2x1 block: 1 data tile + 1 ancilla tile.

The builders below tile those blocks into a near-square grid of blocks with
the data qubit at the top-left corner of its block (program qubit ``q`` maps
to block ``(q // block_cols, q % block_cols)``), which realises the one-to-one
qubit mapping used in Section 5.1.
"""

from __future__ import annotations

import enum
import math
from typing import Dict, Optional, Tuple

from .layout import GridLayout
from .tile import Position

__all__ = ["StarVariant", "star_layout", "block_grid_shape"]


class StarVariant(enum.Enum):
    """The three STAR block shapes from [1], ordered by ancilla budget."""

    STAR = "star"              # 2x2 block, 3 ancilla per data
    COMPACT = "compact"        # 3x1 block, 2 ancilla per data
    COMPRESSED = "compressed"  # 2x1 block, 1 ancilla per data

    @property
    def block_shape(self) -> Tuple[int, int]:
        if self is StarVariant.STAR:
            return (2, 2)
        if self is StarVariant.COMPACT:
            return (3, 1)
        return (2, 1)

    @property
    def ancilla_per_data(self) -> int:
        rows, cols = self.block_shape
        return rows * cols - 1


def block_grid_shape(num_data_qubits: int,
                     block_cols: Optional[int] = None) -> Tuple[int, int]:
    """Near-square arrangement of ``num_data_qubits`` blocks.

    Returns ``(block_rows, block_cols)`` with
    ``block_rows * block_cols >= num_data_qubits``.
    """
    if num_data_qubits <= 0:
        raise ValueError("need at least one data qubit")
    if block_cols is None:
        block_cols = int(math.ceil(math.sqrt(num_data_qubits)))
    block_rows = int(math.ceil(num_data_qubits / block_cols))
    return block_rows, block_cols


def star_layout(num_data_qubits: int,
                variant: StarVariant = StarVariant.STAR,
                block_cols: Optional[int] = None,
                seed: int = 0) -> GridLayout:
    """Build a grid layout tiling ``num_data_qubits`` STAR blocks.

    Parameters
    ----------
    num_data_qubits:
        Number of program qubits to place (one per block).
    variant:
        Ancilla budget per data qubit.  ``STAR`` lays out literal 2x2 blocks.
        ``COMPACT`` and ``COMPRESSED`` are realised by removing one / two
        ancilla tiles from every block of the STAR grid subject to the
        ancilla-connectivity invariant enforced by
        :func:`repro.fabric.compression.compress_layout` (see the reproduction
        note there): naive free-standing 3x1 / 2x1 block tilings would leave
        the ancilla routing fabric disconnected and no CNOT between distant
        qubits could ever be scheduled.
    block_cols:
        Optional override for the number of block columns (defaults to a
        near-square arrangement).
    seed:
        Seed forwarded to the compression pass for the non-STAR variants.
    """
    block_rows, cols_of_blocks = block_grid_shape(num_data_qubits, block_cols)
    tile_rows_per_block, tile_cols_per_block = StarVariant.STAR.block_shape

    rows = block_rows * tile_rows_per_block
    cols = cols_of_blocks * tile_cols_per_block

    data_positions: Dict[int, Position] = {}
    for qubit in range(num_data_qubits):
        block_row, block_col = divmod(qubit, cols_of_blocks)
        data_positions[qubit] = (block_row * tile_rows_per_block,
                                 block_col * tile_cols_per_block)

    layout = GridLayout(rows, cols, data_positions,
                        name=f"{variant.value}_{num_data_qubits}q")
    if variant is StarVariant.STAR:
        return layout

    # Defer the import so fabric.compression can import fabric.layout freely.
    from .compression import compress_layout

    removals = 1 if variant is StarVariant.COMPACT else 2
    compressed, _report = compress_layout(
        layout, fraction=1.0, seed=seed,
        ancillas_to_remove_per_block=removals)
    compressed.name = f"{variant.value}_{num_data_qubits}q"
    return compressed
