"""The logical tile grid (``GridLayout``) onto which programs are mapped.

The layout is *static*: it records which tiles are data, ancilla, or disabled
and which program qubit each data tile holds.  Runtime state (edge
orientation, tile busy times, activity) lives in the simulator.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .tile import Edge, Position, Tile, TileType, manhattan

__all__ = ["GridLayout"]


class GridLayout:
    """A ``rows x cols`` grid of tiles.

    Parameters
    ----------
    rows, cols:
        Grid dimensions.
    data_positions:
        Mapping from program qubit index to grid position.  Every listed
        position becomes a DATA tile; all other in-grid positions start as
        ANCILLA tiles.
    name:
        Human-readable layout name (used in reports).
    """

    def __init__(self, rows: int, cols: int,
                 data_positions: Dict[int, Position],
                 name: str = "grid") -> None:
        if rows <= 0 or cols <= 0:
            raise ValueError("grid dimensions must be positive")
        self.rows = rows
        self.cols = cols
        self.name = name
        self._tiles: Dict[Position, Tile] = {}
        self._data_positions: Dict[int, Position] = dict(data_positions)

        seen_positions: Set[Position] = set()
        for qubit, position in self._data_positions.items():
            if not self.in_bounds(position):
                raise ValueError(f"data qubit {qubit} at {position} is out of bounds")
            if position in seen_positions:
                raise ValueError(f"two data qubits mapped to {position}")
            seen_positions.add(position)

        for row in range(rows):
            for col in range(cols):
                position = (row, col)
                self._tiles[position] = Tile(position, TileType.ANCILLA)
        for qubit, position in self._data_positions.items():
            self._tiles[position] = Tile(position, TileType.DATA, data_index=qubit)

    # -- basic queries -----------------------------------------------------------

    @property
    def num_data_qubits(self) -> int:
        return len(self._data_positions)

    @property
    def data_positions(self) -> Dict[int, Position]:
        return dict(self._data_positions)

    def in_bounds(self, position: Position) -> bool:
        row, col = position
        return 0 <= row < self.rows and 0 <= col < self.cols

    def tile(self, position: Position) -> Tile:
        return self._tiles[position]

    def tile_type(self, position: Position) -> TileType:
        return self._tiles[position].tile_type

    def is_ancilla(self, position: Position) -> bool:
        return (self.in_bounds(position)
                and self._tiles[position].tile_type is TileType.ANCILLA)

    def is_data(self, position: Position) -> bool:
        return (self.in_bounds(position)
                and self._tiles[position].tile_type is TileType.DATA)

    def is_disabled(self, position: Position) -> bool:
        return (not self.in_bounds(position)
                or self._tiles[position].tile_type is TileType.DISABLED)

    def data_position(self, qubit: int) -> Position:
        return self._data_positions[qubit]

    def data_qubit_at(self, position: Position) -> Optional[int]:
        tile = self._tiles.get(position)
        if tile is not None and tile.is_data:
            return tile.data_index
        return None

    def ancilla_positions(self) -> List[Position]:
        return [pos for pos, tile in sorted(self._tiles.items())
                if tile.is_ancilla]

    def positions(self) -> Iterator[Position]:
        return iter(sorted(self._tiles))

    @property
    def num_ancilla(self) -> int:
        return sum(1 for tile in self._tiles.values() if tile.is_ancilla)

    @property
    def ancilla_per_data(self) -> float:
        if not self._data_positions:
            return 0.0
        return self.num_ancilla / len(self._data_positions)

    # -- adjacency ---------------------------------------------------------------

    def neighbors(self, position: Position) -> List[Position]:
        """In-bounds, non-disabled neighbours of ``position``."""
        result = []
        for edge in Edge:
            neighbor = edge.neighbor(position)
            if self.in_bounds(neighbor) and not self.is_disabled(neighbor):
                result.append(neighbor)
        return result

    def ancilla_neighbors(self, position: Position) -> List[Position]:
        """Neighbouring ANCILLA tiles of ``position``."""
        return [pos for pos in self.neighbors(position) if self.is_ancilla(pos)]

    def ancilla_neighbors_of_qubit(self, qubit: int) -> List[Position]:
        return self.ancilla_neighbors(self._data_positions[qubit])

    def edge_to_neighbor(self, position: Position, neighbor: Position) -> Edge:
        return Edge.between(position, neighbor)

    # -- mutation (used by compression) --------------------------------------------

    def disable(self, position: Position) -> None:
        """Remove an ancilla tile from the fabric (grid compression)."""
        tile = self._tiles[position]
        if tile.is_data:
            raise ValueError(f"cannot disable data tile at {position}")
        self._tiles[position] = Tile(position, TileType.DISABLED)

    def enable_ancilla(self, position: Position) -> None:
        """Re-enable a previously disabled position as an ancilla tile."""
        tile = self._tiles[position]
        if tile.is_data:
            raise ValueError(f"{position} holds a data qubit")
        self._tiles[position] = Tile(position, TileType.ANCILLA)

    # -- connectivity ------------------------------------------------------------

    def active_positions(self) -> List[Position]:
        return [pos for pos, tile in sorted(self._tiles.items())
                if not tile.is_disabled]

    def is_connected(self) -> bool:
        """True when all non-disabled tiles form one connected component.

        Connectivity over *all* active tiles (data and ancilla) is the
        invariant grid compression must preserve (Section 5.3: "while still
        ensuring the grid remains connected").
        """
        active = self.active_positions()
        if not active:
            return True
        seen: Set[Position] = set()
        queue = deque([active[0]])
        seen.add(active[0])
        while queue:
            current = queue.popleft()
            for neighbor in self.neighbors(current):
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
        return len(seen) == len(active)

    def every_data_qubit_has_ancilla_neighbor(self) -> bool:
        """True when every data qubit retains at least one adjacent ancilla."""
        return all(self.ancilla_neighbors(pos)
                   for pos in self._data_positions.values())

    # -- misc --------------------------------------------------------------------

    def copy(self) -> "GridLayout":
        clone = GridLayout(self.rows, self.cols, self._data_positions,
                           name=self.name)
        for position, tile in self._tiles.items():
            if tile.is_disabled:
                clone.disable(position)
        return clone

    def ascii_art(self) -> str:
        """Render the grid for debugging: D=data, .=ancilla, space=disabled."""
        lines = []
        for row in range(self.rows):
            chars = []
            for col in range(self.cols):
                tile = self._tiles[(row, col)]
                if tile.is_data:
                    chars.append("D")
                elif tile.is_ancilla:
                    chars.append(".")
                else:
                    chars.append(" ")
            lines.append("".join(chars))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"GridLayout(name={self.name!r}, {self.rows}x{self.cols}, "
                f"data={self.num_data_qubits}, ancilla={self.num_ancilla})")
