"""The logical tile grid (``GridLayout``) onto which programs are mapped.

The layout is *static*: it records which tiles are data, ancilla, or disabled
and which program qubit each data tile holds.  Runtime state (edge
orientation, tile busy times, activity) lives in the simulator.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .tile import Edge, Position, Tile, TileType

__all__ = ["GridLayout"]


class GridLayout:
    """A ``rows x cols`` grid of tiles.

    Parameters
    ----------
    rows, cols:
        Grid dimensions.
    data_positions:
        Mapping from program qubit index to grid position.  Every listed
        position becomes a DATA tile; all other in-grid positions start as
        ANCILLA tiles.
    name:
        Human-readable layout name (used in reports).
    """

    def __init__(self, rows: int, cols: int,
                 data_positions: Dict[int, Position],
                 name: str = "grid") -> None:
        if rows <= 0 or cols <= 0:
            raise ValueError("grid dimensions must be positive")
        self.rows = rows
        self.cols = cols
        self.name = name
        self._tiles: Dict[Position, Tile] = {}
        self._data_positions: Dict[int, Position] = dict(data_positions)

        seen_positions: Set[Position] = set()
        for qubit, position in self._data_positions.items():
            if not self.in_bounds(position):
                raise ValueError(f"data qubit {qubit} at {position} is out of bounds")
            if position in seen_positions:
                raise ValueError(f"two data qubits mapped to {position}")
            seen_positions.add(position)

        for row in range(rows):
            for col in range(cols):
                position = (row, col)
                self._tiles[position] = Tile(position, TileType.ANCILLA)
        for qubit, position in self._data_positions.items():
            self._tiles[position] = Tile(position, TileType.DATA, data_index=qubit)

        #: Monotonic counter bumped on every disable/enable; routing caches
        #: key their validity on it.
        self._version = 0
        #: Recent mutations as (version, position, enabled) records so caches
        #: can invalidate by delta; bounded, oldest dropped (a consumer whose
        #: last-seen version fell off the log must do a full invalidation).
        self._change_log: List[Tuple[int, Position, bool]] = []
        self._neighbors: Dict[Position, List[Position]] = {}
        self._ancilla_neighbors: Dict[Position, List[Position]] = {}
        self._ancilla_positions: List[Position] = []
        self._rebuild_adjacency()

    # -- basic queries -----------------------------------------------------------

    @property
    def num_data_qubits(self) -> int:
        return len(self._data_positions)

    @property
    def data_positions(self) -> Dict[int, Position]:
        return dict(self._data_positions)

    def in_bounds(self, position: Position) -> bool:
        row, col = position
        return 0 <= row < self.rows and 0 <= col < self.cols

    def tile(self, position: Position) -> Tile:
        return self._tiles[position]

    def tile_type(self, position: Position) -> TileType:
        return self._tiles[position].tile_type

    def is_ancilla(self, position: Position) -> bool:
        return (self.in_bounds(position)
                and self._tiles[position].tile_type is TileType.ANCILLA)

    def is_data(self, position: Position) -> bool:
        return (self.in_bounds(position)
                and self._tiles[position].tile_type is TileType.DATA)

    def is_disabled(self, position: Position) -> bool:
        return (not self.in_bounds(position)
                or self._tiles[position].tile_type is TileType.DISABLED)

    def data_position(self, qubit: int) -> Position:
        return self._data_positions[qubit]

    def data_qubit_at(self, position: Position) -> Optional[int]:
        tile = self._tiles.get(position)
        if tile is not None and tile.is_data:
            return tile.data_index
        return None

    def ancilla_positions(self) -> List[Position]:
        return list(self._ancilla_positions)

    def positions(self) -> Iterator[Position]:
        return iter(sorted(self._tiles))

    @property
    def num_ancilla(self) -> int:
        return sum(1 for tile in self._tiles.values() if tile.is_ancilla)

    @property
    def ancilla_per_data(self) -> float:
        if not self._data_positions:
            return 0.0
        return self.num_ancilla / len(self._data_positions)

    # -- adjacency ---------------------------------------------------------------
    #
    # Neighbour lists are precomputed once at construction and maintained by
    # delta on disable/enable, so the routing inner loops never rebuild them.
    # The cached lists are shared (not copied) on return: callers must treat
    # them as read-only.

    @property
    def version(self) -> int:
        """Bumped on every disable/enable; caches key their validity on it."""
        return self._version

    def _raw_neighbors(self, position: Position) -> List[Position]:
        result = []
        for edge in Edge:
            neighbor = edge.neighbor(position)
            if self.in_bounds(neighbor) and not self.is_disabled(neighbor):
                result.append(neighbor)
        return result

    def _rebuild_adjacency(self) -> None:
        self._neighbors = {}
        self._ancilla_neighbors = {}
        for position, tile in self._tiles.items():
            self._refresh_adjacency_entry(position)
        self._ancilla_positions = [pos for pos, tile in sorted(self._tiles.items())
                                   if tile.is_ancilla]

    def _refresh_adjacency_entry(self, position: Position) -> None:
        neighbors = self._raw_neighbors(position)
        self._neighbors[position] = neighbors
        self._ancilla_neighbors[position] = [pos for pos in neighbors
                                             if self._tiles[pos].is_ancilla]

    _CHANGE_LOG_LIMIT = 4096

    def _on_tile_changed(self, position: Position, enabled: bool) -> None:
        """Delta-refresh adjacency after ``position`` changed type."""
        self._version += 1
        self._change_log.append((self._version, position, enabled))
        if len(self._change_log) > self._CHANGE_LOG_LIMIT:
            del self._change_log[:len(self._change_log) // 2]
        self._refresh_adjacency_entry(position)
        for edge in Edge:
            neighbor = edge.neighbor(position)
            if neighbor in self._tiles:
                self._refresh_adjacency_entry(neighbor)
        self._ancilla_positions = [pos for pos, tile in sorted(self._tiles.items())
                                   if tile.is_ancilla]

    def changes_since(self, version: int) -> Optional[List[Tuple[int, "Position", bool]]]:
        """Mutations after ``version``, oldest first.

        Returns ``None`` when the requested range has been dropped from the
        bounded change log (the caller must then invalidate everything).
        """
        if version >= self._version:
            return []
        if not self._change_log or self._change_log[0][0] > version + 1:
            return None
        return [entry for entry in self._change_log if entry[0] > version]

    def neighbors(self, position: Position) -> List[Position]:
        """In-bounds, non-disabled neighbours of ``position`` (read-only)."""
        cached = self._neighbors.get(position)
        if cached is not None:
            return cached
        return self._raw_neighbors(position)

    def ancilla_neighbors(self, position: Position) -> List[Position]:
        """Neighbouring ANCILLA tiles of ``position`` (read-only)."""
        cached = self._ancilla_neighbors.get(position)
        if cached is not None:
            return cached
        return [pos for pos in self.neighbors(position) if self.is_ancilla(pos)]

    def ancilla_neighbors_of_qubit(self, qubit: int) -> List[Position]:
        return self.ancilla_neighbors(self._data_positions[qubit])

    def edge_to_neighbor(self, position: Position, neighbor: Position) -> Edge:
        return Edge.between(position, neighbor)

    # -- mutation (used by compression) --------------------------------------------

    def disable(self, position: Position) -> None:
        """Remove an ancilla tile from the fabric (grid compression)."""
        tile = self._tiles[position]
        if tile.is_data:
            raise ValueError(f"cannot disable data tile at {position}")
        self._tiles[position] = Tile(position, TileType.DISABLED)
        self._on_tile_changed(position, enabled=False)

    def enable_ancilla(self, position: Position) -> None:
        """Re-enable a previously disabled position as an ancilla tile."""
        tile = self._tiles[position]
        if tile.is_data:
            raise ValueError(f"{position} holds a data qubit")
        self._tiles[position] = Tile(position, TileType.ANCILLA)
        self._on_tile_changed(position, enabled=True)

    # -- connectivity ------------------------------------------------------------

    def active_positions(self) -> List[Position]:
        return [pos for pos, tile in sorted(self._tiles.items())
                if not tile.is_disabled]

    def is_connected(self) -> bool:
        """True when all non-disabled tiles form one connected component.

        Connectivity over *all* active tiles (data and ancilla) is the
        invariant grid compression must preserve (Section 5.3: "while still
        ensuring the grid remains connected").
        """
        active = self.active_positions()
        if not active:
            return True
        seen: Set[Position] = set()
        queue = deque([active[0]])
        seen.add(active[0])
        while queue:
            current = queue.popleft()
            for neighbor in self.neighbors(current):
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
        return len(seen) == len(active)

    def every_data_qubit_has_ancilla_neighbor(self) -> bool:
        """True when every data qubit retains at least one adjacent ancilla."""
        return all(self.ancilla_neighbors(pos)
                   for pos in self._data_positions.values())

    # -- misc --------------------------------------------------------------------

    def __getstate__(self) -> Dict[str, object]:
        # The shared routing indices and flat-array view (attached by
        # RoutingIndex.for_layout / FlatGrid.for_layout) are per-process
        # caches; keep them out of pickles shipped to workers.
        state = self.__dict__.copy()
        state.pop("_routing_index", None)
        state.pop("_routing_indices", None)
        state.pop("_flat_grid", None)
        return state

    def copy(self) -> "GridLayout":
        clone = GridLayout(self.rows, self.cols, self._data_positions,
                           name=self.name)
        for position, tile in self._tiles.items():
            if tile.is_disabled:
                clone.disable(position)
        return clone

    def ascii_art(self) -> str:
        """Render the grid for debugging: D=data, .=ancilla, space=disabled."""
        lines = []
        for row in range(self.rows):
            chars = []
            for col in range(self.cols):
                tile = self._tiles[(row, col)]
                if tile.is_data:
                    chars.append("D")
                elif tile.is_ancilla:
                    chars.append(".")
                else:
                    chars.append(" ")
            lines.append("".join(chars))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"GridLayout(name={self.name!r}, {self.rows}x{self.cols}, "
                f"data={self.num_data_qubits}, ancilla={self.num_ancilla})")
