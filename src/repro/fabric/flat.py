"""Struct-of-arrays view of one :class:`GridLayout` revision.

The object-graph layout (``Tile`` dataclasses in dicts, neighbour lists of
tuples) is convenient for construction and mutation but slow to traverse in
the routing/MST hot loops.  :class:`FlatGrid` flattens one layout *revision*
into numpy arrays:

* ``row * cols + col`` is the **flat index** of a tile — note that comparing
  flat indices is exactly the row-major tuple order of ``Position``;
* ``route_neighbors`` is an ``(size, 4)`` int32 table of the ancilla
  neighbour of every tile in :class:`~repro.fabric.tile.Edge` declaration
  order (NORTH, SOUTH, EAST, WEST), ``-1`` where the neighbour is out of
  bounds, disabled or not an ancilla — the exact transition relation of
  :func:`~repro.lattice.routing.bfs_ancilla_path`;
* ancilla tiles additionally get a dense **slot** numbering in row-major
  order (matching :meth:`GridLayout.ancilla_positions`), with a per-slot
  Edge-order neighbour table and the activity-graph edge list
  (``edge_u``/``edge_v``) in the same enumeration order the networkx graph
  builder used, so stable sorts over these arrays reproduce its tie-breaks.

A ``FlatGrid`` is immutable and keyed to ``layout.version``:
:meth:`for_layout` caches one per layout and rebuilds it after any
disable/enable.  Consumers must treat every array as read-only.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from .tile import Position
from .layout import GridLayout

__all__ = ["FlatGrid"]

#: Edge declaration order (NORTH, SOUTH, EAST, WEST) as (d_row, d_col).
_EDGE_OFFSETS = ((-1, 0), (1, 0), (0, 1), (0, -1))


class FlatGrid:
    """Immutable flat-array snapshot of one layout revision."""

    __slots__ = (
        "layout", "version", "rows", "cols", "size",
        "ancilla_mask", "active_mask", "route_neighbors",
        "num_ancilla", "anc_flat", "anc_slot", "anc_neighbor_slots",
        "edge_u", "edge_v", "_positions", "anc_positions",
    )

    def __init__(self, layout: GridLayout) -> None:
        self.layout = layout
        self.version = layout.version
        rows, cols = layout.rows, layout.cols
        self.rows = rows
        self.cols = cols
        size = rows * cols
        self.size = size

        ancilla_mask = np.zeros(size, dtype=bool)
        active_mask = np.zeros(size, dtype=bool)
        for flat_index, position in enumerate(self._iter_positions()):
            tile = layout.tile(position)
            if tile.is_ancilla:
                ancilla_mask[flat_index] = True
            if not tile.is_disabled:
                active_mask[flat_index] = True
        self.ancilla_mask = ancilla_mask
        self.active_mask = active_mask

        # (size, 4) flat index of each Edge-order neighbour that is an
        # ancilla tile; -1 for out-of-bounds / disabled / data neighbours.
        grid = np.arange(size, dtype=np.int32).reshape(rows, cols)
        route_neighbors = np.full((size, 4), -1, dtype=np.int32)
        for axis, (d_row, d_col) in enumerate(_EDGE_OFFSETS):
            shifted = np.full((rows, cols), -1, dtype=np.int32)
            src_r = slice(max(d_row, 0), rows + min(d_row, 0))
            dst_r = slice(max(-d_row, 0), rows + min(-d_row, 0))
            src_c = slice(max(d_col, 0), cols + min(d_col, 0))
            dst_c = slice(max(-d_col, 0), cols + min(-d_col, 0))
            shifted[dst_r, dst_c] = grid[src_r, src_c]
            column = shifted.ravel()
            valid = column >= 0
            keep = valid.copy()
            keep[valid] &= ancilla_mask[column[valid]]
            route_neighbors[keep, axis] = column[keep]
        self.route_neighbors = route_neighbors

        # Dense ancilla slots in row-major (== flat index) order; matches
        # GridLayout.ancilla_positions() exactly.
        anc_flat = np.flatnonzero(ancilla_mask).astype(np.int32)
        self.anc_flat = anc_flat
        self.num_ancilla = int(anc_flat.size)
        anc_slot = np.full(size, -1, dtype=np.int32)
        anc_slot[anc_flat] = np.arange(self.num_ancilla, dtype=np.int32)
        self.anc_slot = anc_slot

        # Per-slot Edge-order neighbour slots (-1 where none).
        neighbor_flats = route_neighbors[anc_flat]
        anc_neighbor_slots = np.full_like(neighbor_flats, -1)
        valid = neighbor_flats >= 0
        anc_neighbor_slots[valid] = anc_slot[neighbor_flats[valid]]
        self.anc_neighbor_slots = anc_neighbor_slots

        # Activity-graph edges (u, v) with u < v, enumerated u-ascending then
        # Edge order — the insertion (and hence iteration) order of the
        # networkx graph historically built by build_activity_graph.
        u_col = np.repeat(np.arange(self.num_ancilla, dtype=np.int32), 4)
        v_col = anc_neighbor_slots.ravel()
        keep = (v_col >= 0) & (v_col > u_col)
        self.edge_u = u_col[keep]
        self.edge_v = v_col[keep]

        #: flat index -> Position as plain python int tuples (path output
        #: must be byte-compatible with the object-graph BFS).
        self._positions: List[Position] = list(self._iter_positions())
        #: slot -> ancilla Position.
        self.anc_positions: List[Position] = [self._positions[flat]
                                              for flat in anc_flat.tolist()]

    def _iter_positions(self):
        cols = self.layout.cols
        for flat_index in range(self.layout.rows * cols):
            yield (flat_index // cols, flat_index % cols)

    # -- conversions -----------------------------------------------------------

    def flat_index(self, position: Position) -> int:
        """Flat index of ``position`` (may be out of bounds: returns -1)."""
        row, col = position
        if 0 <= row < self.rows and 0 <= col < self.cols:
            return row * self.cols + col
        return -1

    def position(self, flat_index: int) -> Position:
        return self._positions[flat_index]

    def slot_of(self, position: Position) -> int:
        """Dense ancilla slot of ``position`` (-1 when not an ancilla)."""
        flat = self.flat_index(position)
        return int(self.anc_slot[flat]) if flat >= 0 else -1

    def blocked_mask(self, blocked) -> Optional[np.ndarray]:
        """Boolean size-array marking blocked flat indices (None when empty)."""
        if not blocked:
            return None
        mask = np.zeros(self.size, dtype=bool)
        for position in blocked:
            flat = self.flat_index(position)
            if flat >= 0:
                mask[flat] = True
        return mask

    # -- cache ------------------------------------------------------------------

    @classmethod
    def for_layout(cls, layout: GridLayout) -> "FlatGrid":
        """The cached flat view of ``layout``'s current revision.

        Rebuilt from scratch whenever the layout's version moved (rebuilds
        are rare — grid compression mutates the layout before a run, not
        during it — and vectorised, so a full rebuild beats delta patching).
        """
        flat = getattr(layout, "_flat_grid", None)
        if flat is None or flat.version != layout.version:
            flat = cls(layout)
            layout._flat_grid = flat
        return flat
