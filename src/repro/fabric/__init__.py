"""Surface-code fabric: tiles, STAR layouts, and grid compression."""

from .compression import (
    CompressionReport,
    ancilla_subgraph_connected,
    block_ancillas,
    compress_layout,
)
from .layout import GridLayout
from .star import StarVariant, block_grid_shape, star_layout
from .tile import Edge, Position, Tile, TileType, manhattan

__all__ = [
    "Edge",
    "Position",
    "Tile",
    "TileType",
    "manhattan",
    "GridLayout",
    "StarVariant",
    "star_layout",
    "block_grid_shape",
    "CompressionReport",
    "compress_layout",
    "block_ancillas",
    "ancilla_subgraph_connected",
]
