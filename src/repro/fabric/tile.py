"""Tiles of the surface-code fabric.

A *tile* is a ``d x d`` rotated-surface-code patch position in the logical
grid.  Tiles are either **data** tiles (hold a program qubit), **ancilla**
tiles (used for routing, |m_theta> preparation and injection), or
**disabled** positions (removed by grid compression, Section 5.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

__all__ = ["TileType", "Position", "Edge", "Tile", "manhattan"]


#: Grid coordinate, ``(row, column)``.
Position = Tuple[int, int]


class TileType(enum.Enum):
    """Role of a tile in the logical fabric."""

    DATA = "data"
    ANCILLA = "ancilla"
    DISABLED = "disabled"


class Edge(enum.Enum):
    """The four boundaries of a tile.

    Following Figure 2, the **horizontal** boundaries (NORTH/SOUTH) of a data
    patch expose the **Z** edge in the default orientation and the vertical
    boundaries (EAST/WEST) expose the **X** edge.  An edge-rotation gate swaps
    the two (Section 3.1).
    """

    NORTH = (-1, 0)
    SOUTH = (1, 0)
    EAST = (0, 1)
    WEST = (0, -1)

    @property
    def offset(self) -> Position:
        return self.value

    @property
    def is_horizontal_boundary(self) -> bool:
        """True for NORTH/SOUTH (the boundaries that are horizontal lines)."""
        return self in (Edge.NORTH, Edge.SOUTH)

    def neighbor(self, position: Position) -> Position:
        row, col = position
        d_row, d_col = self.value
        return (row + d_row, col + d_col)

    @staticmethod
    def between(origin: Position, destination: Position) -> "Edge":
        """Edge of ``origin`` that faces ``destination`` (must be adjacent)."""
        delta = (destination[0] - origin[0], destination[1] - origin[1])
        for edge in Edge:
            if edge.value == delta:
                return edge
        raise ValueError(f"{origin} and {destination} are not adjacent")


@dataclass(frozen=True)
class Tile:
    """A single tile of the fabric."""

    position: Position
    tile_type: TileType
    #: Program qubit index for DATA tiles, ``None`` otherwise.
    data_index: int = None  # type: ignore[assignment]

    @property
    def is_data(self) -> bool:
        return self.tile_type is TileType.DATA

    @property
    def is_ancilla(self) -> bool:
        return self.tile_type is TileType.ANCILLA

    @property
    def is_disabled(self) -> bool:
        return self.tile_type is TileType.DISABLED


def manhattan(a: Position, b: Position) -> int:
    """Manhattan distance between two grid positions."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])
