"""Grid compression: trading ancilla availability for space (Section 5.3).

The paper's hardware/software co-design study incrementally compresses the
STAR grid: data qubits are chosen at random and their 2x2 block is reduced
towards a 2x1 block "while still ensuring the grid remains connected"
(Figure 15).  Compression between 0% (3 ancilla per data) and 100% (ideally 1
ancilla per data) is then swept in Figure 14.

Reproduction note (documented in DESIGN.md): our simulator routes CNOTs over
*ancilla-only* paths, so we additionally require that the ancilla subgraph
remains connected and that every data qubit keeps at least one ancilla
neighbour — otherwise some CNOTs could never execute and the simulation would
deadlock.  A requested removal that would violate either invariant is skipped,
so very high requested compressions may achieve a slightly higher
ancilla-per-data ratio than the ideal 1.0; the achieved ratio is reported in
:class:`CompressionReport` and printed by the Figure 14 harness.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List, Set, Tuple

import numpy as np

from .layout import GridLayout
from .tile import Position

__all__ = ["CompressionReport", "ancilla_subgraph_connected",
           "block_ancillas", "compress_layout"]


@dataclass
class CompressionReport:
    """Outcome of a :func:`compress_layout` call."""

    requested_fraction: float
    #: Data qubits selected for compression.
    selected_qubits: Tuple[int, ...]
    #: Ancilla tiles actually removed.
    removed_positions: Tuple[Position, ...]
    #: Removals that were skipped to preserve connectivity.
    skipped_positions: Tuple[Position, ...]
    ancilla_per_data_before: float
    ancilla_per_data_after: float

    @property
    def achieved_fraction(self) -> float:
        """Fraction of the ideal ancilla reduction that was actually realised.

        0% compression keeps 3 ancilla per data, ideal 100% keeps 1; the
        achieved fraction interpolates on the ancilla-per-data axis.
        """
        span = self.ancilla_per_data_before - 1.0
        if span <= 0:
            return 0.0
        achieved = self.ancilla_per_data_before - self.ancilla_per_data_after
        return max(0.0, min(1.0, achieved / span))


def ancilla_subgraph_connected(layout: GridLayout) -> bool:
    """True when the ancilla tiles form a single connected component.

    Ancilla connectivity is what routing actually needs: every lattice-surgery
    path is a contiguous chain of ancilla tiles (Section 3.1).
    """
    ancillas = layout.ancilla_positions()
    if len(ancillas) <= 1:
        return True
    ancilla_set = set(ancillas)
    seen: Set[Position] = {ancillas[0]}
    queue = deque([ancillas[0]])
    while queue:
        current = queue.popleft()
        for neighbor in layout.neighbors(current):
            if neighbor in ancilla_set and neighbor not in seen:
                seen.add(neighbor)
                queue.append(neighbor)
    return len(seen) == len(ancilla_set)


def block_ancillas(layout: GridLayout, qubit: int) -> List[Position]:
    """The (up to three) STAR-block ancillas owned by ``qubit``.

    For a data qubit at ``(r, c)`` these are the east ``(r, c+1)``, south
    ``(r+1, c)`` and south-east ``(r+1, c+1)`` tiles, i.e. the rest of its
    2x2 block (Figure 1c).  Only tiles that are currently ancillas are
    returned.
    """
    row, col = layout.data_position(qubit)
    candidates = [(row, col + 1), (row + 1, col), (row + 1, col + 1)]
    return [pos for pos in candidates if layout.is_ancilla(pos)]


def _removal_allowed(layout: GridLayout, position: Position) -> bool:
    """Check the two invariants for removing ``position`` from ``layout``."""
    layout.disable(position)
    try:
        if not layout.every_data_qubit_has_ancilla_neighbor():
            return False
        if not ancilla_subgraph_connected(layout):
            return False
        return True
    finally:
        layout.enable_ancilla(position)


def compress_layout(layout: GridLayout, fraction: float,
                    seed: int = 0,
                    ancillas_to_remove_per_block: int = 2) -> Tuple[GridLayout,
                                                                    CompressionReport]:
    """Compress ``fraction`` of the data-qubit blocks of a STAR layout.

    Parameters
    ----------
    layout:
        The uncompressed layout (typically ``star_layout(n, StarVariant.STAR)``).
        The input is not modified; a compressed copy is returned.
    fraction:
        Fraction of data qubits whose block is compressed, in ``[0, 1]``.
    seed:
        Seed for the random choice of which data qubits to compress (the paper
        chooses "a data qubit at random", Section 5.3).
    ancillas_to_remove_per_block:
        2 turns a 2x2 block into a 2x1 block (the paper's sweep); 1 produces
        the intermediate compact-STAR-like 3-tile block.

    Returns
    -------
    (compressed_layout, report)
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    if ancillas_to_remove_per_block not in (1, 2):
        raise ValueError("ancillas_to_remove_per_block must be 1 or 2")

    compressed = layout.copy()
    before_ratio = compressed.ancilla_per_data

    rng = np.random.default_rng(seed)
    qubits = list(range(layout.num_data_qubits))
    rng.shuffle(qubits)
    num_selected = int(round(fraction * len(qubits)))
    selected = tuple(sorted(qubits[:num_selected]))

    removed: List[Position] = []
    skipped: List[Position] = []
    for qubit in selected:
        # Prefer removing the south-east (diagonal) ancilla first: it is the
        # least useful for injection (not edge-adjacent to the data qubit),
        # then the south ancilla, keeping the east ancilla as the surviving
        # 2x1 partner.
        row, col = compressed.data_position(qubit)
        preference = [(row + 1, col + 1), (row + 1, col), (row, col + 1)]
        candidates = [pos for pos in preference if compressed.is_ancilla(pos)]
        removals_done = 0
        for position in candidates:
            if removals_done >= ancillas_to_remove_per_block:
                break
            if _removal_allowed(compressed, position):
                compressed.disable(position)
                removed.append(position)
                removals_done += 1
            else:
                skipped.append(position)

    report = CompressionReport(
        requested_fraction=fraction,
        selected_qubits=selected,
        removed_positions=tuple(removed),
        skipped_positions=tuple(skipped),
        ancilla_per_data_before=before_ratio,
        ancilla_per_data_after=compressed.ancilla_per_data,
    )
    compressed.name = f"{layout.name}_c{int(round(fraction * 100))}"
    return compressed, report
