"""Experiment drivers, sweeps, and result formatting."""

from .experiments import (
    ExecutionSummary,
    best_rescq_over_periods,
    default_schedulers,
    latency_histograms,
    run_execution_comparison,
)
from .export import (
    result_from_dict,
    result_to_dict,
    results_from_json,
    results_to_json,
    rows_to_csv,
    traces_to_csv,
)
from .fidelity import LogicalErrorModel, figure3_series, max_rotations
from .report import (
    format_circuit_stats,
    format_comparison,
    format_histogram,
    format_normalised_summary,
    format_table,
)
from .sweep import (
    SweepRow,
    run_axis_sweep,
    sweep_compression,
    sweep_distance,
    sweep_error_rate,
    sweep_mst_period,
)

__all__ = [
    "ExecutionSummary",
    "run_execution_comparison",
    "best_rescq_over_periods",
    "latency_histograms",
    "default_schedulers",
    "LogicalErrorModel",
    "result_to_dict",
    "result_from_dict",
    "results_to_json",
    "results_from_json",
    "rows_to_csv",
    "traces_to_csv",
    "figure3_series",
    "max_rotations",
    "format_table",
    "format_circuit_stats",
    "format_comparison",
    "format_histogram",
    "format_normalised_summary",
    "SweepRow",
    "run_axis_sweep",
    "sweep_distance",
    "sweep_error_rate",
    "sweep_mst_period",
    "sweep_compression",
]
