"""Parameter sweeps behind the sensitivity figures (Section 5.2, 5.3).

Each sweep runs a set of schedulers on a set of benchmarks while varying one
parameter (code distance, physical error rate, MST period, or grid
compression), returning flat rows that the benchmark harnesses and examples
print as the series of Figures 11-14.

Sweeps are planned as one flat job list — every
(circuit, value, scheduler, seed) point — and executed in a single
:meth:`~repro.exec.engine.ExecutionEngine.run` call, so a parallel engine
fans the *entire* grid out at once instead of parallelising one comparison
cell at a time.  Row order is deterministic: circuits in input order, values
in input order, schedulers by name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..circuits import Circuit
from ..exec import ExecutionEngine, SimJob, plan_jobs
from ..fabric import StarVariant, compress_layout, star_layout
from ..sim import (SimulationConfig, aggregate_comparison, compare_schedulers,
                   default_layout)

__all__ = ["SweepRow", "sweep_distance", "sweep_error_rate",
           "sweep_mst_period", "sweep_compression"]


@dataclass(frozen=True)
class SweepRow:
    """One measured point of a sensitivity sweep."""

    benchmark: str
    scheduler: str
    parameter: str
    value: float
    mean_cycles: float
    min_cycles: float
    max_cycles: float
    idle_fraction: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "scheduler": self.scheduler,
            self.parameter: self.value,
            "mean_cycles": round(self.mean_cycles, 2),
            "min_cycles": self.min_cycles,
            "max_cycles": self.max_cycles,
            "idle_fraction": round(self.idle_fraction, 4),
        }


def _sweep(schedulers, circuits: Sequence[Circuit], parameter: str,
           values: Sequence[float], config_for, layout_for,
           seeds: int, engine: Optional[ExecutionEngine] = None
           ) -> List[SweepRow]:
    engine = engine or ExecutionEngine()
    # Plan the whole grid up front ...
    points: List[tuple] = []
    jobs: List[SimJob] = []
    for circuit in circuits:
        for value in values:
            config = config_for(value)
            layout = layout_for(circuit, value)
            point_jobs = plan_jobs(schedulers, circuit, config, layout, seeds)
            points.append((circuit, value, point_jobs))
            jobs.extend(point_jobs)
    # ... execute it in one engine call (order-preserving) ...
    results = engine.run(jobs)
    # ... and fold results back per point.
    rows: List[SweepRow] = []
    cursor = 0
    for circuit, value, point_jobs in points:
        chunk = results[cursor:cursor + len(point_jobs)]
        cursor += len(point_jobs)
        comparison = aggregate_comparison(point_jobs, chunk)
        for name, cell in comparison.items():
            rows.append(SweepRow(
                benchmark=circuit.name,
                scheduler=name,
                parameter=parameter,
                value=value,
                mean_cycles=cell.mean_cycles,
                min_cycles=cell.min_cycles,
                max_cycles=cell.max_cycles,
                idle_fraction=cell.mean_idle_fraction,
            ))
    return rows


def sweep_distance(schedulers, circuits: Sequence[Circuit],
                   distances: Sequence[int] = (5, 7, 9, 11, 13),
                   physical_error_rate: float = 1e-4,
                   mst_period: int = 25,
                   seeds: int = 3,
                   engine: Optional[ExecutionEngine] = None) -> List[SweepRow]:
    """Figure 11: sensitivity to the code distance at fixed p."""
    base = SimulationConfig(physical_error_rate=physical_error_rate,
                            mst_period=mst_period)
    return _sweep(
        schedulers, circuits, "distance", list(distances),
        config_for=lambda d: base.with_updates(distance=int(d)),
        layout_for=lambda circuit, _value: default_layout(circuit),
        seeds=seeds, engine=engine)


def sweep_error_rate(schedulers, circuits: Sequence[Circuit],
                     error_rates: Sequence[float] = (1e-3, 3e-4, 1e-4, 3e-5, 1e-5),
                     distance: int = 7,
                     mst_period: int = 25,
                     seeds: int = 3,
                     engine: Optional[ExecutionEngine] = None) -> List[SweepRow]:
    """Figure 12: sensitivity to the physical qubit error rate at fixed d."""
    base = SimulationConfig(distance=distance, mst_period=mst_period)
    return _sweep(
        schedulers, circuits, "physical_error_rate", list(error_rates),
        config_for=lambda p: base.with_updates(physical_error_rate=float(p)),
        layout_for=lambda circuit, _value: default_layout(circuit),
        seeds=seeds, engine=engine)


def sweep_mst_period(schedulers, circuits: Sequence[Circuit],
                     periods: Sequence[int] = (25, 50, 100, 200),
                     distance: int = 7,
                     physical_error_rate: float = 1e-4,
                     seeds: int = 3,
                     engine: Optional[ExecutionEngine] = None) -> List[SweepRow]:
    """Figure 13: RESCQ's sensitivity to the MST recomputation period k."""
    base = SimulationConfig(distance=distance,
                            physical_error_rate=physical_error_rate)
    return _sweep(
        schedulers, circuits, "mst_period", list(periods),
        config_for=lambda k: base.with_updates(mst_period=int(k)),
        layout_for=lambda circuit, _value: default_layout(circuit),
        seeds=seeds, engine=engine)


def sweep_compression(schedulers, circuits: Sequence[Circuit],
                      compressions: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
                      distance: int = 7,
                      physical_error_rate: float = 1e-4,
                      mst_period: int = 25,
                      seeds: int = 3,
                      engine: Optional[ExecutionEngine] = None) -> List[SweepRow]:
    """Figure 14: sensitivity to the ancilla availability (grid compression)."""
    base = SimulationConfig(distance=distance,
                            physical_error_rate=physical_error_rate,
                            mst_period=mst_period)

    def layout_for(circuit: Circuit, fraction: float):
        layout = star_layout(circuit.num_qubits, StarVariant.STAR)
        if fraction > 0:
            layout, _report = compress_layout(layout, fraction, seed=13)
        return layout

    return _sweep(
        schedulers, circuits, "compression", list(compressions),
        config_for=lambda _value: base,
        layout_for=layout_for,
        seeds=seeds, engine=engine)
