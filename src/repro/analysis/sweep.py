"""Parameter sweeps behind the sensitivity figures (Section 5.2, 5.3).

A sweep runs a set of schedulers on a set of benchmarks while varying one
registered :class:`~repro.api.axes.SweepAxis` (code distance, physical error
rate, MST period, or grid compression), returning flat :class:`SweepRow`
records that the benchmark harnesses and examples print as the series of
Figures 11-14.

Sweeps are planned as one flat job list — every
(circuit, value, scheduler, seed) point — and executed in a single
:meth:`~repro.exec.engine.ExecutionEngine.run` call, so a parallel engine
fans the *entire* grid out at once instead of parallelising one comparison
cell at a time.  Row order is deterministic: circuits in input order, values
in input order, schedulers by name.

.. deprecated::
    The per-axis ``sweep_*`` functions are shims kept for existing callers;
    use :func:`run_axis_sweep` (axis objects), or — for registered
    benchmarks — put the axis in an :class:`~repro.api.spec.ExperimentSpec`
    grid and call :func:`repro.api.run_experiment`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..circuits import Circuit
from ..exec import ExecutionEngine, SimJob, plan_jobs
from ..sim import SimulationConfig

__all__ = ["SweepRow", "run_axis_sweep", "sweep_distance", "sweep_error_rate",
           "sweep_mst_period", "sweep_compression"]


@dataclass(frozen=True)
class SweepRow:
    """One measured point of a sensitivity sweep."""

    benchmark: str
    scheduler: str
    parameter: str
    value: float
    mean_cycles: float
    min_cycles: float
    max_cycles: float
    idle_fraction: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "scheduler": self.scheduler,
            self.parameter: self.value,
            "mean_cycles": round(self.mean_cycles, 2),
            "min_cycles": self.min_cycles,
            "max_cycles": self.max_cycles,
            "idle_fraction": round(self.idle_fraction, 4),
        }


def run_axis_sweep(axis, schedulers, circuits: Sequence[Circuit],
                   values: Optional[Sequence[float]] = None,
                   base: Optional[SimulationConfig] = None,
                   seeds: int = 3,
                   engine: Optional[ExecutionEngine] = None) -> List[SweepRow]:
    """Sweep one :class:`~repro.api.axes.SweepAxis` over ``circuits``.

    ``axis`` decides which config field (or layout property) each value
    drives and how the layout is built per point; ``values`` defaults to the
    axis's paper values and ``base`` to the headline configuration.  This is
    the single engine behind the ``sweep_*`` shims, the benchmark harnesses
    and the ``rescq sweep`` subcommand.
    """
    from ..api.resultset import ResultSet
    if isinstance(axis, str):
        from ..api.axes import get_axis
        axis = get_axis(axis)
    engine = engine if engine is not None else ExecutionEngine()
    base = base or SimulationConfig()
    swept = list(values if values is not None else axis.default_values)
    # Plan the whole grid up front ...
    jobs: List[SimJob] = []
    for circuit in circuits:
        for value in swept:
            config = axis.config_for(base, value)
            layout = axis.layout_for(circuit, value)
            jobs.extend(plan_jobs(schedulers, circuit, config, layout, seeds,
                                  tags={axis.parameter: value}))
    # ... execute it in one engine call (order-preserving) and fold the
    # tagged results back into rows.
    results = engine.run(jobs)
    return ResultSet.from_jobs(jobs, results).sweep_rows(axis.parameter)


def _axis_shim(axis_name: str, shim_name: str, schedulers,
               circuits: Sequence[Circuit], values, base: SimulationConfig,
               seeds: int, engine: Optional[ExecutionEngine]) -> List[SweepRow]:
    from ..api.axes import get_axis
    warnings.warn(
        f"{shim_name} is deprecated; use repro.analysis.run_axis_sweep"
        f"(\"{axis_name}\", ...) or sweep {axis_name!r} in an "
        f"ExperimentSpec grid via repro.api.run_experiment",
        DeprecationWarning, stacklevel=3)
    return run_axis_sweep(get_axis(axis_name), schedulers, circuits,
                          values=values, base=base, seeds=seeds, engine=engine)


def sweep_distance(schedulers, circuits: Sequence[Circuit],
                   distances: Sequence[int] = (5, 7, 9, 11, 13),
                   physical_error_rate: float = 1e-4,
                   mst_period: int = 25,
                   seeds: int = 3,
                   engine: Optional[ExecutionEngine] = None) -> List[SweepRow]:
    """Figure 11: sensitivity to the code distance at fixed p. (Deprecated shim.)"""
    base = SimulationConfig(physical_error_rate=physical_error_rate,
                            mst_period=mst_period)
    return _axis_shim("distance", "sweep_distance", schedulers, circuits,
                      list(distances), base, seeds, engine)


def sweep_error_rate(schedulers, circuits: Sequence[Circuit],
                     error_rates: Sequence[float] = (1e-3, 3e-4, 1e-4, 3e-5, 1e-5),
                     distance: int = 7,
                     mst_period: int = 25,
                     seeds: int = 3,
                     engine: Optional[ExecutionEngine] = None) -> List[SweepRow]:
    """Figure 12: sensitivity to the physical qubit error rate at fixed d. (Deprecated shim.)"""
    base = SimulationConfig(distance=distance, mst_period=mst_period)
    return _axis_shim("error-rate", "sweep_error_rate", schedulers, circuits,
                      list(error_rates), base, seeds, engine)


def sweep_mst_period(schedulers, circuits: Sequence[Circuit],
                     periods: Sequence[int] = (25, 50, 100, 200),
                     distance: int = 7,
                     physical_error_rate: float = 1e-4,
                     seeds: int = 3,
                     engine: Optional[ExecutionEngine] = None) -> List[SweepRow]:
    """Figure 13: RESCQ's sensitivity to the MST recomputation period k. (Deprecated shim.)"""
    base = SimulationConfig(distance=distance,
                            physical_error_rate=physical_error_rate)
    return _axis_shim("mst-period", "sweep_mst_period", schedulers, circuits,
                      list(periods), base, seeds, engine)


def sweep_compression(schedulers, circuits: Sequence[Circuit],
                      compressions: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
                      distance: int = 7,
                      physical_error_rate: float = 1e-4,
                      mst_period: int = 25,
                      seeds: int = 3,
                      engine: Optional[ExecutionEngine] = None) -> List[SweepRow]:
    """Figure 14: sensitivity to the ancilla availability (grid compression). (Deprecated shim.)"""
    base = SimulationConfig(distance=distance,
                            physical_error_rate=physical_error_rate,
                            mst_period=mst_period)
    return _axis_shim("compression", "sweep_compression", schedulers, circuits,
                      list(compressions), base, seeds, engine)
