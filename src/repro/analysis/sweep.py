"""Parameter sweeps behind the sensitivity figures (Section 5.2, 5.3).

A sweep runs a set of schedulers on a set of benchmarks while varying one
registered :class:`~repro.api.axes.SweepAxis` (code distance, physical error
rate, MST period, or grid compression), returning flat :class:`SweepRow`
records that the benchmark harnesses and examples print as the series of
Figures 11-14.

Sweeps are planned as one flat job list — every
(circuit, value, scheduler, seed) point — and executed in a single
:meth:`~repro.exec.engine.ExecutionEngine.run` call, so a parallel engine
fans the *entire* grid out at once instead of parallelising one comparison
cell at a time.  Row order is deterministic: circuits in input order, values
in input order, schedulers by name.

The per-axis ``sweep_*`` functions went through a ``DeprecationWarning``
cycle and are now hard errors naming the replacement: use
:func:`run_axis_sweep` (axis objects), or — for registered benchmarks — put
the axis in an :class:`~repro.api.spec.ExperimentSpec` grid and call
:func:`repro.api.run_experiment`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..circuits import Circuit
from ..exec import ExecutionEngine, SimJob, plan_jobs
from ..sim import SimulationConfig

__all__ = ["SweepRow", "run_axis_sweep", "sweep_distance", "sweep_error_rate",
           "sweep_mst_period", "sweep_compression"]


@dataclass(frozen=True)
class SweepRow:
    """One measured point of a sensitivity sweep."""

    benchmark: str
    scheduler: str
    parameter: str
    value: float
    mean_cycles: float
    min_cycles: float
    max_cycles: float
    idle_fraction: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "scheduler": self.scheduler,
            self.parameter: self.value,
            "mean_cycles": round(self.mean_cycles, 2),
            "min_cycles": self.min_cycles,
            "max_cycles": self.max_cycles,
            "idle_fraction": round(self.idle_fraction, 4),
        }


def run_axis_sweep(axis, schedulers, circuits: Sequence[Circuit],
                   values: Optional[Sequence[float]] = None,
                   base: Optional[SimulationConfig] = None,
                   seeds: int = 3,
                   engine: Optional[ExecutionEngine] = None) -> List[SweepRow]:
    """Sweep one :class:`~repro.api.axes.SweepAxis` over ``circuits``.

    ``axis`` decides which config field (or layout property) each value
    drives and how the layout is built per point; ``values`` defaults to the
    axis's paper values and ``base`` to the headline configuration.  This is
    the single engine behind the ``sweep_*`` shims, the benchmark harnesses
    and the ``rescq sweep`` subcommand.
    """
    from ..api.resultset import ResultSet
    if isinstance(axis, str):
        from ..api.axes import get_axis
        axis = get_axis(axis)
    engine = engine if engine is not None else ExecutionEngine()
    base = base or SimulationConfig()
    swept = list(values if values is not None else axis.default_values)
    # Plan the whole grid up front ...
    jobs: List[SimJob] = []
    for circuit in circuits:
        for value in swept:
            config = axis.config_for(base, value)
            layout = axis.layout_for(circuit, value)
            jobs.extend(plan_jobs(schedulers, circuit, config, layout, seeds,
                                  tags={axis.parameter: value}))
    # ... execute it in one engine call (order-preserving) and fold the
    # tagged results back into rows.
    results = engine.run(jobs)
    return ResultSet.from_jobs(jobs, results).sweep_rows(axis.parameter)


def _removed(name: str, axis_name: str):
    raise RuntimeError(
        f"{name} was removed after its deprecation cycle; use "
        f"repro.analysis.run_axis_sweep({axis_name!r}, ...) or sweep "
        f"{axis_name!r} in an ExperimentSpec grid via "
        f"repro.api.run_experiment")


def sweep_distance(*args, **kwargs):
    """Removed (Figure 11 distance sweep).  Use :func:`run_axis_sweep`
    with the ``"distance"`` axis or an ExperimentSpec grid."""
    _removed("sweep_distance", "distance")


def sweep_error_rate(*args, **kwargs):
    """Removed (Figure 12 error-rate sweep).  Use :func:`run_axis_sweep`
    with the ``"error-rate"`` axis or an ExperimentSpec grid."""
    _removed("sweep_error_rate", "error-rate")


def sweep_mst_period(*args, **kwargs):
    """Removed (Figure 13 MST-period sweep).  Use :func:`run_axis_sweep`
    with the ``"mst-period"`` axis or an ExperimentSpec grid."""
    _removed("sweep_mst_period", "mst-period")


def sweep_compression(*args, **kwargs):
    """Removed (Figure 14 compression sweep).  Use :func:`run_axis_sweep`
    with the ``"compression"`` axis or an ExperimentSpec grid."""
    _removed("sweep_compression", "compression")
