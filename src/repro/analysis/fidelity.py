"""Program-fidelity capacity model (Figure 3).

Figure 3 is a qualitative plot of the maximum number of rotation gates that
can be executed for a target program fidelity under the two compilations:

* **Clifford+Rz** — every rotation costs one |m_theta> injection whose logical
  error rate tracks the base code's;
* **Clifford+T** — every rotation is synthesised into ~1e2 T gates
  (Ross-Selinger), each consuming a distilled |T> state, so both the error
  budget per rotation and the depth are two orders of magnitude larger.

The model below reproduces the crossing structure: for near-term logical error
rates the Clifford+Rz curves admit orders of magnitude more rotations at the
same target fidelity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

__all__ = ["LogicalErrorModel", "max_rotations", "figure3_series"]


@dataclass(frozen=True)
class LogicalErrorModel:
    """Logical error rate of the surface code: ``A * (p / p_th)^((d+1)/2)``."""

    physical_error_rate: float
    distance: int
    threshold: float = 1e-2
    prefactor: float = 0.1

    def logical_error_rate(self) -> float:
        exponent = (self.distance + 1) / 2
        return min(0.5, self.prefactor
                   * (self.physical_error_rate / self.threshold) ** exponent)


def max_rotations(target_fidelity: float, error_per_rotation: float) -> float:
    """Largest N with ``(1 - error_per_rotation)^N >= target_fidelity``."""
    if not 0.0 < target_fidelity < 1.0:
        raise ValueError("target_fidelity must be in (0, 1)")
    if error_per_rotation <= 0.0:
        return math.inf
    if error_per_rotation >= 1.0:
        return 0.0
    return math.log(target_fidelity) / math.log(1.0 - error_per_rotation)


def figure3_series(distances: Sequence[int] = (5, 7, 9),
                   physical_error_rate: float = 1e-3,
                   target_fidelities: Sequence[float] = (0.5, 0.66, 0.8, 0.9,
                                                         0.95, 0.99),
                   rotation_error_multiplier: float = 2.0,
                   t_per_rotation: int = 100) -> List[Dict[str, float]]:
    """Generate the Figure 3 data series.

    Returns one row per (distance, target fidelity) with the maximum rotation
    count for the Clifford+Rz compilation (solid lines in the paper) and the
    Clifford+T compilation (dashed lines).

    ``rotation_error_multiplier`` models the slightly higher logical error
    rate of an injected |m_theta> relative to a Clifford; ``t_per_rotation``
    is the synthesis blow-up of the Clifford+T route.
    """
    rows: List[Dict[str, float]] = []
    for distance in distances:
        ler = LogicalErrorModel(physical_error_rate, distance).logical_error_rate()
        rz_error = min(0.5, rotation_error_multiplier * ler)
        t_error = min(0.5, t_per_rotation * ler)
        for fidelity in target_fidelities:
            rows.append({
                "distance": distance,
                "target_fidelity": fidelity,
                "max_rotations_clifford_rz": max_rotations(fidelity, rz_error),
                "max_rotations_clifford_t": max_rotations(fidelity, t_error),
            })
    return rows
