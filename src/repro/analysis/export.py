"""Serialisation of simulation results (the artifact's "log files").

The original artifact writes per-run log files that its post-processing
scripts turn into plots.  This module provides the equivalent: JSON and CSV
export of :class:`~repro.sim.results.SimulationResult` objects so downstream
tooling (pandas, plotting notebooks) can consume reproduction runs directly.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ..sim.results import GateTrace, SimulationResult

__all__ = ["result_to_dict", "result_from_dict", "results_to_json",
           "results_from_json", "rows_to_csv", "traces_to_csv"]


def rows_to_csv(rows: Sequence[Mapping[str, object]],
                columns: Optional[Sequence[str]] = None) -> str:
    """Serialise dict rows as CSV.

    Columns default to the union of keys over all rows in first-appearance
    order, so heterogenous rows (e.g. different grid axes) merge into one
    table with blanks for missing cells.  This is the writer behind
    :meth:`repro.api.resultset.ResultSet.to_csv`.
    """
    if columns is None:
        seen: List[str] = []
        for row in rows:
            for key in row:
                if key not in seen:
                    seen.append(key)
        columns = seen
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(list(columns))
    for row in rows:
        writer.writerow([row.get(column, "") for column in columns])
    return buffer.getvalue()


def result_to_dict(result: SimulationResult,
                   include_profile: bool = False) -> Dict[str, object]:
    """Convert a result into plain JSON-serialisable data.

    The per-run profile (wall-time and phase counters) is observability, not
    simulation output: it is excluded unless ``include_profile`` is set, so
    serialised results stay byte-stable across machines and cache hits.
    """
    payload: Dict[str, object] = {
        "benchmark": result.benchmark,
        "scheduler": result.scheduler,
        "seed": result.seed,
        "total_cycles": result.total_cycles,
        "num_qubits": result.num_qubits,
        "config_summary": result.config_summary,
        "metadata": dict(result.metadata),
        "data_busy_cycles": {str(k): v for k, v in result.data_busy_cycles.items()},
    }
    if include_profile and result.profile:
        payload["profile"] = dict(result.profile)
    payload["traces"] = [{
            "gate_index": trace.gate_index,
            "kind": trace.kind,
            "qubits": list(trace.qubits),
            "scheduled_cycle": trace.scheduled_cycle,
            "start_cycle": trace.start_cycle,
            "end_cycle": trace.end_cycle,
            "injections": trace.injections,
            "preparation_attempts": trace.preparation_attempts,
            "edge_rotations": trace.edge_rotations,
        } for trace in result.traces]
    return payload


def result_from_dict(payload: Dict[str, object]) -> SimulationResult:
    """Inverse of :func:`result_to_dict`."""
    traces = [GateTrace(
        gate_index=item["gate_index"],
        kind=item["kind"],
        qubits=tuple(item["qubits"]),
        scheduled_cycle=item["scheduled_cycle"],
        start_cycle=item["start_cycle"],
        end_cycle=item["end_cycle"],
        injections=item.get("injections", 0),
        preparation_attempts=item.get("preparation_attempts", 0),
        edge_rotations=item.get("edge_rotations", 0),
    ) for item in payload.get("traces", [])]
    return SimulationResult(
        benchmark=payload["benchmark"],
        scheduler=payload["scheduler"],
        seed=payload["seed"],
        total_cycles=payload["total_cycles"],
        num_qubits=payload["num_qubits"],
        traces=traces,
        data_busy_cycles={int(k): v for k, v in
                          payload.get("data_busy_cycles", {}).items()},
        config_summary=payload.get("config_summary", ""),
        metadata=dict(payload.get("metadata", {})),
        profile=dict(payload.get("profile", {})),
    )


def results_to_json(results: Iterable[SimulationResult],
                    indent: Optional[int] = 2) -> str:
    """Serialise several results as one JSON document."""
    return json.dumps([result_to_dict(result) for result in results],
                      indent=indent)


def results_from_json(text: str) -> List[SimulationResult]:
    """Parse a document produced by :func:`results_to_json`."""
    payload = json.loads(text)
    if not isinstance(payload, list):
        raise ValueError("expected a JSON list of results")
    return [result_from_dict(item) for item in payload]


def traces_to_csv(result: SimulationResult) -> str:
    """Flatten a result's per-gate traces into CSV (one row per gate)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["benchmark", "scheduler", "seed", "gate_index", "kind",
                     "qubits", "scheduled_cycle", "start_cycle", "end_cycle",
                     "latency_after_schedule", "injections",
                     "preparation_attempts", "edge_rotations"])
    for trace in result.traces:
        writer.writerow([
            result.benchmark, result.scheduler, result.seed,
            trace.gate_index, trace.kind,
            " ".join(str(q) for q in trace.qubits),
            trace.scheduled_cycle, trace.start_cycle, trace.end_cycle,
            trace.latency_after_schedule, trace.injections,
            trace.preparation_attempts, trace.edge_rotations,
        ])
    return buffer.getvalue()
