"""End-to-end experiment drivers for the headline results (Figures 5 and 10).

These functions reproduce the paper's main evaluation loop: run every
benchmark under every scheduler, normalise execution times to a baseline and
report the geometric mean speed-up (Figure 10), and accumulate post-schedule
completion-latency histograms for CNOT and Rz gates (Figure 5).

Every driver plans its full (circuit x scheduler x seed) grid as one job
list and executes it through a single
:meth:`~repro.exec.engine.ExecutionEngine.run` call, so a parallel or cached
engine accelerates the whole experiment, not one benchmark at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..circuits import Circuit
from ..exec import ExecutionEngine, SimJob, plan_jobs
from ..scheduling import (DEFAULT_SCHEDULER_NAMES, SCHEDULER_REGISTRY,
                          RescqScheduler)
from ..sim import (
    SimulationConfig,
    aggregate_comparison,
    default_layout,
    geometric_mean,
)

__all__ = ["default_schedulers", "ExecutionSummary", "run_execution_comparison",
           "best_rescq_over_periods", "latency_histograms"]


def default_schedulers(mst_period: int = 25):
    """The three schedulers the paper compares: greedy, AutoBraid, RESCQ."""
    return [SCHEDULER_REGISTRY.create(name)
            for name in DEFAULT_SCHEDULER_NAMES]


@dataclass
class ExecutionSummary:
    """The Figure 10 table: per-benchmark normalised execution times."""

    baseline: str
    #: benchmark -> scheduler -> mean cycles
    cycles: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: benchmark -> scheduler -> (min, max) cycles (the error bars)
    spread: Dict[str, Dict[str, tuple]] = field(default_factory=dict)

    def normalised(self) -> Dict[str, Dict[str, float]]:
        """Execution time of every scheduler normalised to the baseline."""
        table: Dict[str, Dict[str, float]] = {}
        for benchmark, per_scheduler in self.cycles.items():
            reference = per_scheduler.get(self.baseline)
            if not reference:
                continue
            table[benchmark] = {name: value / reference
                                for name, value in per_scheduler.items()}
        return table

    def geomean_speedup(self, scheduler: str = "rescq",
                        over: Optional[str] = None) -> float:
        """Geometric-mean speed-up of ``scheduler`` over ``over`` (Figure 10)."""
        over = over or self.baseline
        ratios = []
        for per_scheduler in self.cycles.values():
            if scheduler in per_scheduler and over in per_scheduler:
                if per_scheduler[scheduler] > 0:
                    ratios.append(per_scheduler[over] / per_scheduler[scheduler])
        return geometric_mean(ratios)

    def schedulers(self) -> List[str]:
        names: List[str] = []
        for per_scheduler in self.cycles.values():
            for name in per_scheduler:
                if name not in names:
                    names.append(name)
        return names


def _run_grid(circuits: Sequence[Circuit], schedulers,
              config: SimulationConfig, seeds: int,
              engine: ExecutionEngine):
    """Plan circuits x schedulers x seeds, run once, yield per-circuit rows."""
    plans = []
    jobs: List[SimJob] = []
    for circuit in circuits:
        layout = default_layout(circuit)
        circuit_jobs = plan_jobs(schedulers, circuit, config, layout, seeds)
        plans.append((circuit, circuit_jobs))
        jobs.extend(circuit_jobs)
    results = engine.run(jobs)
    cursor = 0
    for circuit, circuit_jobs in plans:
        chunk = results[cursor:cursor + len(circuit_jobs)]
        cursor += len(circuit_jobs)
        yield circuit, aggregate_comparison(circuit_jobs, chunk)


def run_execution_comparison(circuits: Sequence[Circuit],
                             schedulers=None,
                             config: Optional[SimulationConfig] = None,
                             seeds: int = 3,
                             baseline: str = "autobraid",
                             engine: Optional[ExecutionEngine] = None
                             ) -> ExecutionSummary:
    """Run the Figure 10 experiment over ``circuits``.

    The paper normalises to the static baselines and reports a ~2x geometric
    mean improvement for RESCQ at d=7, p=1e-4.
    """
    schedulers = schedulers if schedulers is not None else default_schedulers()
    config = config or SimulationConfig()
    engine = engine or ExecutionEngine()
    summary = ExecutionSummary(baseline=baseline)
    for circuit, comparison in _run_grid(circuits, schedulers, config, seeds,
                                         engine):
        summary.cycles[circuit.name] = {
            name: cell.mean_cycles for name, cell in comparison.items()}
        summary.spread[circuit.name] = {
            name: (cell.min_cycles, cell.max_cycles)
            for name, cell in comparison.items()}
    return summary


def best_rescq_over_periods(circuits: Sequence[Circuit],
                            periods: Sequence[int] = (25, 50, 100, 200),
                            config: Optional[SimulationConfig] = None,
                            seeds: int = 2,
                            baseline: str = "autobraid",
                            engine: Optional[ExecutionEngine] = None
                            ) -> ExecutionSummary:
    """RESCQ* of Figure 10: the best RESCQ result over k in {25,50,100,200}."""
    config = config or SimulationConfig()
    engine = engine or ExecutionEngine()
    summary = ExecutionSummary(baseline=baseline)
    baseline_schedulers = [SCHEDULER_REGISTRY.create(name)
                           for name in ("greedy", "autobraid")]

    # Plan the baselines plus every (circuit, period) RESCQ cell as one grid;
    # jobs are appended in plan order so results slice back positionally.
    plans = []
    jobs: List[SimJob] = []
    for circuit in circuits:
        layout = default_layout(circuit)
        base_jobs = plan_jobs(baseline_schedulers, circuit, config, layout,
                              seeds)
        jobs.extend(base_jobs)
        period_jobs = []
        for period in periods:
            rescq_config = config.with_updates(mst_period=int(period))
            cell_jobs = plan_jobs([RescqScheduler()], circuit, rescq_config,
                                  layout, seeds)
            period_jobs.append(cell_jobs)
            jobs.extend(cell_jobs)
        plans.append((circuit, base_jobs, period_jobs))
    results = engine.run(jobs)
    cursor = 0

    def take(job_list):
        nonlocal cursor
        chunk = results[cursor:cursor + len(job_list)]
        cursor += len(job_list)
        return chunk

    for circuit, base_jobs, period_jobs in plans:
        comparison = aggregate_comparison(base_jobs, take(base_jobs))
        cycles = {name: cell.mean_cycles for name, cell in comparison.items()}
        spread = {name: (cell.min_cycles, cell.max_cycles)
                  for name, cell in comparison.items()}
        best_mean = None
        best_spread = (0.0, 0.0)
        for cell_jobs in period_jobs:
            rescq_rows = aggregate_comparison(cell_jobs, take(cell_jobs))
            cell = rescq_rows["rescq"]
            if best_mean is None or cell.mean_cycles < best_mean:
                best_mean = cell.mean_cycles
                best_spread = (cell.min_cycles, cell.max_cycles)
        cycles["rescq*"] = best_mean if best_mean is not None else 0.0
        spread["rescq*"] = best_spread
        summary.cycles[circuit.name] = cycles
        summary.spread[circuit.name] = spread
    return summary


def latency_histograms(circuits: Sequence[Circuit],
                       schedulers=None,
                       config: Optional[SimulationConfig] = None,
                       seeds: int = 2,
                       max_cycles: int = 30,
                       engine: Optional[ExecutionEngine] = None
                       ) -> Dict[str, Dict[str, Dict[int, int]]]:
    """Figure 5: per-scheduler histograms of post-schedule gate latency.

    Returns ``{scheduler: {"cnot": {cycles: count}, "rz": {cycles: count}}}``
    accumulated over all provided benchmarks.
    """
    schedulers = schedulers if schedulers is not None else default_schedulers()
    config = config or SimulationConfig()
    engine = engine or ExecutionEngine()
    histograms: Dict[str, Dict[str, Dict[int, int]]] = {}
    for scheduler in schedulers:
        histograms[scheduler.name] = {"cnot": {}, "rz": {}}
    for _circuit, comparison in _run_grid(circuits, schedulers, config, seeds,
                                          engine):
        for scheduler in schedulers:
            cell = comparison[scheduler.name]
            for result in cell.results:
                for kind in ("cnot", "rz"):
                    for bucket, count in result.latency_histogram(
                            kind, max_cycles=max_cycles).items():
                        store = histograms[scheduler.name][kind]
                        store[bucket] = store.get(bucket, 0) + count
    for per_scheduler in histograms.values():
        for kind in per_scheduler:
            per_scheduler[kind] = dict(sorted(per_scheduler[kind].items()))
    return histograms
