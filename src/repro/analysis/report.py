"""Plain-text rendering of experiment outputs (tables and series).

The paper's artifact emits SVG plots; this reproduction prints the same data
as aligned text tables so results are inspectable in CI logs and in the
EXPERIMENTS.md record.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_comparison", "format_circuit_stats",
           "format_histogram", "format_normalised_summary"]


def format_table(rows: Sequence[Mapping[str, object]],
                 columns: Optional[Sequence[str]] = None,
                 title: Optional[str] = None) -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return (title + "\n(empty)\n") if title else "(empty)\n"
    if columns is None:
        columns = list(rows[0].keys())
    rendered_rows = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(str(col)), *(len(row[i]) for row in rendered_rows))
              for i, col in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines) + "\n"


def format_comparison(cells: Mapping[str, object],
                      title: Optional[str] = None) -> str:
    """Render scheduler comparison cells as the canonical ``rescq run`` table.

    ``cells`` maps scheduler name to a
    :class:`~repro.sim.runner.ComparisonRow` (as returned by
    :meth:`~repro.api.resultset.ResultSet.comparison_rows`); the column set
    and rounding here define the byte-exact table both the legacy ``run``
    subcommand and spec-driven ``exp`` runs print.
    """
    rows = [{
        "scheduler": name,
        "mean_cycles": round(cell.mean_cycles, 1),
        "min": cell.min_cycles,
        "max": cell.max_cycles,
        "idle_fraction": round(cell.mean_idle_fraction, 3),
    } for name, cell in cells.items()]
    return format_table(rows, title=title)


def format_circuit_stats(circuits, title: Optional[str] = None) -> str:
    """Render Table 3-style characteristic rows, one per circuit.

    Accepts any iterable of :class:`~repro.circuits.circuit.Circuit`; used by
    ``rescq gen --stats`` and handy for auditing imported or generated
    workloads next to the published Table 3 columns.
    """
    rows = [{"name": circuit.name, **circuit.stats().as_row()}
            for circuit in circuits]
    return format_table(rows, title=title)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_histogram(histogram: Mapping[int, int], title: str = "",
                     width: int = 40) -> str:
    """Render a latency histogram as a horizontal text bar chart (Figure 5 style)."""
    lines = [title] if title else []
    if not histogram:
        lines.append("(empty)")
        return "\n".join(lines) + "\n"
    peak = max(histogram.values())
    total = sum(histogram.values())
    for bucket in sorted(histogram):
        count = histogram[bucket]
        bar = "#" * max(1, int(round(width * count / peak)))
        share = 100.0 * count / total
        lines.append(f"{bucket:>4} cycles | {bar} {count} ({share:.1f}%)")
    return "\n".join(lines) + "\n"


def format_normalised_summary(summary, title: str = "Normalised execution time"
                              ) -> str:
    """Render an :class:`~repro.analysis.experiments.ExecutionSummary` table."""
    schedulers = summary.schedulers()
    rows: List[Dict[str, object]] = []
    for benchmark, per_scheduler in summary.normalised().items():
        row: Dict[str, object] = {"benchmark": benchmark}
        for name in schedulers:
            if name in per_scheduler:
                row[name] = round(per_scheduler[name], 3)
        rows.append(row)
    table = format_table(rows, columns=["benchmark"] + schedulers, title=title)
    speedup_lines = []
    for name in schedulers:
        if name == summary.baseline:
            continue
        speedup = summary.geomean_speedup(scheduler=name, over=summary.baseline)
        if speedup:
            speedup_lines.append(
                f"geomean speedup of {name} over {summary.baseline}: "
                f"{speedup:.2f}x")
    return table + ("\n".join(speedup_lines) + "\n" if speedup_lines else "")
