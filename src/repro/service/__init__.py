"""repro.service: the sharded experiment service behind ``rescq serve``.

Layers, bottom up:

* :mod:`~repro.service.executor` — a work-stealing process pool with
  per-job timeouts, bounded retry on worker death, and graceful drain;
* :mod:`~repro.service.singleflight` — in-flight deduplication so an
  identical job submitted concurrently runs exactly once;
* :mod:`~repro.service.service` — cache + single-flight + executor behind
  one :class:`ExperimentService` object;
* :mod:`~repro.service.server` — the asyncio HTTP front end (NDJSON
  streaming, ``/healthz``, ``/stats``).
"""

from .executor import (JobFailedError, JobTimeoutError, ServiceExecutor,
                       WorkerCrashError)
from .server import ExperimentServer
from .service import ExperimentService, ResolvedJob, ServiceStats
from .singleflight import SingleFlight

__all__ = [
    "ExperimentServer",
    "ExperimentService",
    "JobFailedError",
    "JobTimeoutError",
    "ResolvedJob",
    "ServiceExecutor",
    "ServiceStats",
    "SingleFlight",
    "WorkerCrashError",
]
