"""repro.service: the sharded experiment service behind ``rescq serve``.

Layers, bottom up:

* :mod:`~repro.service.executor` — a work-stealing process pool with
  per-job timeouts, bounded retry on worker death, and graceful drain;
* :mod:`~repro.service.singleflight` — in-flight deduplication so an
  identical job submitted concurrently runs exactly once;
* :mod:`~repro.service.service` — cache + single-flight + executor behind
  one :class:`ExperimentService` object;
* :mod:`~repro.service.httpcore` — the shared HTTP/1.1 transport dialect
  (framing, limits, the stdlib asyncio client used by the cluster router);
* :mod:`~repro.service.server` — the asyncio HTTP front end (NDJSON
  streaming, ``/healthz``, ``/stats``, the ``/cache`` peer protocol).
"""

from .executor import (JobFailedError, JobTimeoutError, ServiceExecutor,
                       WorkerCrashError)
from .server import ExperimentServer
from .service import (AdmissionError, ExperimentService, ResolvedJob,
                      ServiceStats)
from .singleflight import SingleFlight

__all__ = [
    "AdmissionError",
    "ExperimentServer",
    "ExperimentService",
    "JobFailedError",
    "JobTimeoutError",
    "ResolvedJob",
    "ServiceExecutor",
    "ServiceStats",
    "SingleFlight",
    "WorkerCrashError",
]
