"""Shared HTTP/1.1 plumbing for the experiment server and the shard router.

Both :class:`~repro.service.server.ExperimentServer` and
:class:`~repro.cluster.router.ShardRouter` speak the same deliberately small
dialect: ``Connection: close`` framing (one request per connection, the end
of the response is the end of the stream), bounded request heads and bodies,
canonical-JSON payloads.  This module is the single home for that dialect —
the parsing/writing helpers, the status table, the size limits (one
``MAX_BODY`` constant guards every process in a cluster) and the minimal
asyncio client the router uses to talk to its shards.

Nothing here knows about experiments; it is transport only.
"""

from __future__ import annotations

import asyncio
from typing import AsyncIterator, Dict, Mapping, Optional, Tuple
from urllib.parse import urlsplit

from ..canonical import canonical_dumps

__all__ = [
    "HttpError",
    "MAX_BODY",
    "MAX_HEADERS",
    "MAX_REQUEST_LINE",
    "STATUS_TEXT",
    "parse_http_url",
    "read_request",
    "send_head",
    "send_json",
    "send_line",
    "http_request",
    "iter_ndjson",
    "open_http_stream",
]

#: Longest accepted request/header line, in bytes.
MAX_REQUEST_LINE = 8192
#: Maximum number of request headers.
MAX_HEADERS = 100
#: Maximum request body size, in bytes.  Shared by every HTTP front end in
#: the package (server and router reject oversized POSTs identically), so a
#: request the router accepts is never rejected by the shard it lands on.
MAX_BODY = 16 * 1024 * 1024

STATUS_TEXT = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """An HTTP-level rejection carrying its status and optional headers."""

    def __init__(self, status: int, message: str,
                 headers: Optional[Mapping[str, str]] = None) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = dict(headers or {})


# -- server-side parsing -------------------------------------------------------

async def read_request(reader: asyncio.StreamReader
                       ) -> Tuple[str, str, Dict[str, str], bytes]:
    """Read one full request: ``(method, path, headers, body)``.

    Raises :class:`HttpError` on malformed input and on heads/bodies that
    exceed the module limits; the body of an oversized ``Content-Length`` is
    never read into memory (413 fires on the declared length alone).
    """
    method, path, headers = await _read_head(reader)
    body = await _read_body(reader, headers)
    return method, path, headers, body


async def _read_head(reader: asyncio.StreamReader
                     ) -> Tuple[str, str, Dict[str, str]]:
    line = await reader.readline()
    if not line:
        raise HttpError(400, "empty request")
    if len(line) > MAX_REQUEST_LINE:
        raise HttpError(400, "request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line {line!r}")
    method, path, _version = parts
    headers: Dict[str, str] = {}
    for _ in range(MAX_HEADERS):
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            return method.upper(), path, headers
        if len(line) > MAX_REQUEST_LINE:
            raise HttpError(400, "header line too long")
        name, _sep, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    raise HttpError(400, "too many headers")


async def _read_body(reader: asyncio.StreamReader,
                     headers: Dict[str, str]) -> bytes:
    length_text = headers.get("content-length")
    if not length_text:
        return b""
    try:
        length = int(length_text)
    except ValueError:
        raise HttpError(400,
                        f"bad Content-Length {length_text!r}") from None
    if length < 0 or length > MAX_BODY:
        raise HttpError(413, f"body of {length} bytes exceeds the "
                             f"{MAX_BODY} byte limit")
    return await reader.readexactly(length)


# -- server-side writing -------------------------------------------------------

async def send_head(writer: asyncio.StreamWriter, status: int,
                    content_type: str,
                    content_length: Optional[int] = None,
                    headers: Optional[Mapping[str, str]] = None) -> None:
    lines = [f"HTTP/1.1 {status} {STATUS_TEXT.get(status, 'Unknown')}",
             f"Content-Type: {content_type}",
             "Connection: close"]
    if content_length is not None:
        lines.append(f"Content-Length: {content_length}")
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
    await writer.drain()


async def send_line(writer: asyncio.StreamWriter,
                    record: Mapping[str, object]) -> None:
    """Write one canonical-JSON NDJSON record."""
    writer.write((canonical_dumps(dict(record)) + "\n").encode("utf-8"))
    await writer.drain()


async def send_json(writer: asyncio.StreamWriter, status: int,
                    payload: Mapping[str, object],
                    headers: Optional[Mapping[str, str]] = None) -> None:
    body = (canonical_dumps(dict(payload)) + "\n").encode("utf-8")
    await send_head(writer, status, "application/json",
                    content_length=len(body), headers=headers)
    writer.write(body)
    await writer.drain()


# -- client side ---------------------------------------------------------------

def parse_http_url(url: str) -> Tuple[str, int, str]:
    """Split ``http://host:port[/base]`` into ``(host, port, base_path)``.

    Only plain ``http`` peers are supported (the cluster protocol is
    loopback/LAN plumbing, not a public edge).  Raises ``ValueError`` with
    an actionable message otherwise.
    """
    split = urlsplit(url)
    if split.scheme != "http":
        raise ValueError(
            f"shard/peer URLs must use http://, got {url!r}")
    if not split.hostname:
        raise ValueError(f"shard/peer URL {url!r} has no host")
    port = split.port if split.port is not None else 80
    base = split.path.rstrip("/")
    return split.hostname, port, base


async def open_http_stream(host: str, port: int, method: str, path: str,
                           body: Optional[bytes] = None,
                           connect_timeout: Optional[float] = 5.0,
                           head_timeout: Optional[float] = None,
                           ) -> Tuple[int, Dict[str, str],
                                      asyncio.StreamReader,
                                      asyncio.StreamWriter]:
    """Issue one request and return ``(status, headers, reader, writer)``.

    The response body is left unread on ``reader`` so callers can stream it
    (``Connection: close`` framing: read until EOF).  ``connect_timeout``
    bounds the TCP connect + request write; ``head_timeout`` bounds the wait
    for the response head (``None`` waits indefinitely, which is right for
    ``POST /experiments`` — the head only arrives once the spec is expanded).
    Raises ``OSError``/``asyncio.TimeoutError`` on connection-level failure.
    """
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), connect_timeout)
    try:
        head = [f"{method} {path} HTTP/1.1",
                f"Host: {host}:{port}",
                "Connection: close"]
        if body is not None:
            head.append("Content-Type: application/json")
            head.append(f"Content-Length: {len(body)}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        if body:
            writer.write(body)
        await asyncio.wait_for(writer.drain(), connect_timeout)
        status_line = await asyncio.wait_for(reader.readline(), head_timeout)
        parts = status_line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise OSError(f"malformed response head {status_line!r} "
                          f"from {host}:{port}")
        status = int(parts[1])
        headers: Dict[str, str] = {}
        for _ in range(MAX_HEADERS):
            line = await asyncio.wait_for(reader.readline(), head_timeout)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _sep, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return status, headers, reader, writer
    except BaseException:
        writer.close()
        raise


async def http_request(host: str, port: int, method: str, path: str,
                       body: Optional[bytes] = None,
                       timeout: Optional[float] = 5.0
                       ) -> Tuple[int, Dict[str, str], bytes]:
    """Buffered request/response (for small control-plane exchanges)."""
    status, headers, reader, writer = await open_http_stream(
        host, port, method, path, body=body, connect_timeout=timeout,
        head_timeout=timeout)
    try:
        data = await asyncio.wait_for(reader.read(), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass
    return status, headers, data


async def iter_ndjson(reader: asyncio.StreamReader
                      ) -> AsyncIterator[bytes]:
    """Yield raw NDJSON lines (newline included) until EOF."""
    while True:
        line = await reader.readline()
        if not line:
            return
        yield line
