"""The asyncio HTTP front end of ``rescq serve``.

A deliberately small HTTP/1.1 implementation on ``asyncio.start_server`` —
no framework, no new dependencies.  The transport dialect (framing, limits,
status table) lives in :mod:`repro.service.httpcore`, shared with the
cluster's :class:`~repro.cluster.router.ShardRouter`.  Routes:

``POST /experiments``
    Body: an :class:`~repro.api.spec.ExperimentSpec` JSON document or a
    :class:`~repro.api.envelope.SubmissionEnvelope`.  The response streams
    NDJSON: one canonical-JSON row per job **in plan order** as results
    materialise, then one trailing ``{"type": "summary", ...}`` record with
    the request's executed/cache/dedup counts.  Identical specs submitted
    twice produce byte-identical row streams (the summary line differs —
    the second run executes nothing).  An envelope ``indices`` field runs a
    sub-plan: only the jobs at those plan positions (the shard fan-out wire
    format).  When the service is over its admission high-water mark the
    submission is refused with ``429`` + ``Retry-After`` before any job is
    queued.
``GET /healthz``
    Liveness: ``{"status": "ok"}``.
``GET /stats``
    The service's cumulative counters, in-flight table size, executor queue
    depth, and admission mark.
``/cache/...``
    The cache **peer protocol**, available when the service has a cache
    backend (404 otherwise).  ``GET/HEAD /cache/<fingerprint>`` fetch/probe
    one entry; ``PUT /cache/<fingerprint>`` stores write-once (``201`` if
    this call created the entry, ``200`` if it already existed — the remote
    analogue of :meth:`~repro.exec.cache.CacheBackend.put`'s boolean);
    ``GET /cache`` lists entries; ``DELETE /cache`` clears;
    ``POST /cache/gc`` garbage-collects by age.  This is what the
    :class:`~repro.exec.cache.HttpCache` client speaks, letting N processes
    or cluster shards share this server's backend as one write-once tier.

Connections are ``Connection: close`` — each request gets a fresh
connection, which keeps the framing trivial and streams naturally (the end
of the response is the end of the stream).
"""

from __future__ import annotations

import asyncio
import json
import math
from typing import Dict, Optional

from ..api.envelope import EnvelopeError, SubmissionEnvelope, SubmissionReport
from ..api.resultset import ResultRow
from ..api.spec import SpecValidationError
from ..exec.cache import FINGERPRINT_PATTERN, _deserialise, _serialise
from .httpcore import (HttpError, read_request, send_head, send_json,
                       send_line)
from .service import AdmissionError, ExperimentService

__all__ = ["ExperimentServer"]


def _retry_after_header(exc: AdmissionError) -> Dict[str, str]:
    """Admission refusals carry a whole-second ``Retry-After`` (RFC 9110)."""
    return {"Retry-After": str(max(1, math.ceil(exc.retry_after)))}


class ExperimentServer:
    """Serve an :class:`ExperimentService` over HTTP."""

    def __init__(self, service: ExperimentService, host: str = "127.0.0.1",
                 port: int = 8765) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._handlers: set = set()

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections; updates ``self.port``.

        The worker pool is warmed before the socket opens so the first
        request never pays worker start-up latency.
        """
        loop = asyncio.get_event_loop()
        await loop.run_in_executor(None, self.service.executor.start)
        self._server = await asyncio.start_server(
            self._on_connection, host=self.host, port=self.port)
        sockets = self._server.sockets or ()
        for sock in sockets:
            self.port = sock.getsockname()[1]
            break

    async def stop(self, drain: bool = True) -> None:
        """Stop accepting, finish in-flight requests, drain the executor."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._handlers:
            await asyncio.gather(*list(self._handlers),
                                 return_exceptions=True)
        loop = asyncio.get_event_loop()
        await loop.run_in_executor(None, lambda: self.service.shutdown(drain))

    @property
    def in_flight_requests(self) -> int:
        return len(self._handlers)

    # -- connection handling ---------------------------------------------------

    def _on_connection(self, reader: asyncio.StreamReader,
                       writer: asyncio.StreamWriter) -> None:
        task = asyncio.ensure_future(self._handle(reader, writer))
        self._handlers.add(task)
        task.add_done_callback(self._handlers.discard)

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, _headers, body = await read_request(reader)
                await self._route(method, path, body, writer)
            except HttpError as exc:
                await send_json(writer, exc.status, {"error": exc.message},
                                headers=exc.headers)
            except (asyncio.IncompleteReadError, ConnectionError):
                pass
            except Exception as exc:  # noqa: BLE001 - last-resort handler
                try:
                    await send_json(
                        writer, 500, {"error": f"internal error: {exc}"})
                except (ConnectionError, RuntimeError):
                    pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    # -- routing ---------------------------------------------------------------

    async def _route(self, method: str, path: str, body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        path = path.split("?", 1)[0]
        if path == "/healthz":
            if method != "GET":
                raise HttpError(405, "use GET for /healthz")
            await send_json(writer, 200, {"status": "ok"})
        elif path == "/stats":
            if method != "GET":
                raise HttpError(405, "use GET for /stats")
            await send_json(writer, 200, self.service.snapshot())
        elif path in ("/experiments", "/"):
            if method != "POST":
                raise HttpError(
                    405, "submit an ExperimentSpec with POST /experiments")
            await self._handle_submission(body, writer)
        elif path == "/cache" or path.startswith("/cache/"):
            await self._route_cache(method, path, body, writer)
        else:
            raise HttpError(
                404, f"unknown path {path!r}; routes: POST /experiments, "
                     f"GET /healthz, GET /stats, /cache/...")

    # -- submission ------------------------------------------------------------

    async def _handle_submission(self, body: bytes,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"body is not valid JSON: {exc}") from None
        try:
            envelope = SubmissionEnvelope.from_payload(payload)
        except EnvelopeError as exc:
            raise HttpError(400, str(exc)) from None
        loop = asyncio.get_event_loop()
        try:
            # Validation + expansion builds circuits and layouts; keep the
            # event loop responsive (healthz during a huge expansion) by
            # planning in a thread.
            jobs = await loop.run_in_executor(
                None, lambda: envelope.spec.validate().expand())
        except SpecValidationError as exc:
            raise HttpError(400, str(exc)) from None
        if envelope.indices is not None:
            if envelope.indices[-1] >= len(jobs):
                raise HttpError(
                    400, f"indices entry {envelope.indices[-1]} is out of "
                         f"range for a plan of {len(jobs)} job(s)")
            jobs = [jobs[index] for index in envelope.indices]

        try:
            resolved = self.service.submit_plan(jobs)
        except AdmissionError as exc:
            raise HttpError(429, str(exc),
                            headers=_retry_after_header(exc)) from None
        await send_head(writer, 200, content_type="application/x-ndjson")
        errors = 0
        for item in resolved:
            try:
                result = await asyncio.wrap_future(item.future)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 - stream the failure
                record = {"type": "error", "fingerprint": item.fingerprint,
                          "message": str(exc)}
                await send_line(writer, record)
                errors += 1
                continue
            row = ResultRow(benchmark=item.job.benchmark,
                            scheduler=item.job.scheduler_name,
                            seed=item.job.seed,
                            params=dict(item.job.tags),
                            result=result).summary()
            if envelope.include_status:
                row["status"] = item.status().to_dict()
            await send_line(writer, row)
        counts = self.service.counts_for(resolved)
        report = SubmissionReport(name=envelope.spec.name,
                                  request_id=envelope.request_id,
                                  errors=errors,
                                  **counts)
        await send_line(writer, report.to_dict())

    # -- cache peer protocol ---------------------------------------------------

    def _cache_backend(self):
        backend = self.service.cache
        if backend is None:
            raise HttpError(404, "this server has no cache backend; start "
                                 "rescq serve with --cache to serve peers")
        return backend

    @staticmethod
    def _cache_fingerprint(path: str) -> str:
        fingerprint = path[len("/cache/"):]
        if not FINGERPRINT_PATTERN.match(fingerprint):
            raise HttpError(400, f"malformed cache fingerprint "
                                 f"{fingerprint!r} (want lowercase hex)")
        return fingerprint

    async def _route_cache(self, method: str, path: str, body: bytes,
                           writer: asyncio.StreamWriter) -> None:
        backend = self._cache_backend()
        loop = asyncio.get_event_loop()
        if path == "/cache":
            if method == "GET":
                listing = await loop.run_in_executor(
                    None, lambda: [
                        {"fingerprint": entry.fingerprint,
                         "size_bytes": entry.size_bytes,
                         "stored_at": entry.stored_at}
                        for entry in backend.entries()])
                await send_json(writer, 200, {"entries": listing})
            elif method == "DELETE":
                removed = await loop.run_in_executor(None, backend.clear)
                await send_json(writer, 200, {"removed": removed})
            else:
                raise HttpError(405, "use GET (list) or DELETE (clear) "
                                     "for /cache")
            return
        if path == "/cache/gc":
            if method != "POST":
                raise HttpError(405, "use POST for /cache/gc")
            try:
                payload = json.loads(body.decode("utf-8")) if body else {}
                older_than = float(payload.get("older_than", 0.0))
            except (UnicodeDecodeError, ValueError, AttributeError) as exc:
                raise HttpError(400, f"bad gc request: {exc}") from None
            removed = await loop.run_in_executor(
                None, lambda: backend.gc(older_than))
            await send_json(writer, 200, {"removed": removed})
            return
        if path == "/cache/verify":
            if method != "POST":
                raise HttpError(405, "use POST for /cache/verify")
            check = await loop.run_in_executor(None, backend.verify)
            await send_json(writer, 200,
                            {"entries": check.entries, "ok": check.ok,
                             "corrupt": list(check.corrupt)})
            return
        fingerprint = self._cache_fingerprint(path)
        if method in ("GET", "HEAD"):
            result = await loop.run_in_executor(
                None, lambda: backend.get(fingerprint))
            if result is None:
                raise HttpError(404, f"no cache entry {fingerprint}")
            if method == "HEAD":
                await send_head(writer, 200, "application/json",
                                content_length=0)
                return
            payload = (_serialise(result) + "\n").encode("utf-8")
            await send_head(writer, 200, "application/json",
                            content_length=len(payload))
            writer.write(payload)
            await writer.drain()
        elif method == "PUT":
            try:
                result = await loop.run_in_executor(
                    None, lambda: _deserialise(body.decode("utf-8")))
            except (UnicodeDecodeError, ValueError, KeyError,
                    TypeError) as exc:
                raise HttpError(
                    400, f"cache payload does not deserialise: {exc}"
                ) from None
            stored = await loop.run_in_executor(
                None, lambda: backend.put(fingerprint, result))
            await send_json(writer, 201 if stored else 200,
                            {"fingerprint": fingerprint, "stored": stored})
        else:
            raise HttpError(405, "use GET/HEAD/PUT for /cache/<fingerprint>")
