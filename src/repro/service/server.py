"""The asyncio HTTP front end of ``rescq serve``.

A deliberately small HTTP/1.1 implementation on ``asyncio.start_server`` —
no framework, no new dependencies.  Three routes:

``POST /experiments``
    Body: an :class:`~repro.api.spec.ExperimentSpec` JSON document or a
    :class:`~repro.api.envelope.SubmissionEnvelope`.  The response streams
    NDJSON: one canonical-JSON row per job **in plan order** as results
    materialise, then one trailing ``{"type": "summary", ...}`` record with
    the request's executed/cache/dedup counts.  Identical specs submitted
    twice produce byte-identical row streams (the summary line differs —
    the second run executes nothing).
``GET /healthz``
    Liveness: ``{"status": "ok"}``.
``GET /stats``
    The service's cumulative counters, in-flight table size and executor
    queue depth.

Connections are ``Connection: close`` — each request gets a fresh
connection, which keeps the framing trivial and streams naturally (the end
of the response is the end of the stream).
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple

from ..api.envelope import EnvelopeError, SubmissionEnvelope, SubmissionReport
from ..api.resultset import ResultRow
from ..api.spec import SpecValidationError
from ..canonical import canonical_dumps
from .service import ExperimentService

__all__ = ["ExperimentServer"]

_MAX_REQUEST_LINE = 8192
_MAX_HEADERS = 100
_MAX_BODY = 16 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class ExperimentServer:
    """Serve an :class:`ExperimentService` over HTTP."""

    def __init__(self, service: ExperimentService, host: str = "127.0.0.1",
                 port: int = 8765) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._handlers: set = set()

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections; updates ``self.port``.

        The worker pool is warmed before the socket opens so the first
        request never pays worker start-up latency.
        """
        loop = asyncio.get_event_loop()
        await loop.run_in_executor(None, self.service.executor.start)
        self._server = await asyncio.start_server(
            self._on_connection, host=self.host, port=self.port)
        sockets = self._server.sockets or ()
        for sock in sockets:
            self.port = sock.getsockname()[1]
            break

    async def stop(self, drain: bool = True) -> None:
        """Stop accepting, finish in-flight requests, drain the executor."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._handlers:
            await asyncio.gather(*list(self._handlers),
                                 return_exceptions=True)
        loop = asyncio.get_event_loop()
        await loop.run_in_executor(None, lambda: self.service.shutdown(drain))

    @property
    def in_flight_requests(self) -> int:
        return len(self._handlers)

    # -- connection handling ---------------------------------------------------

    def _on_connection(self, reader: asyncio.StreamReader,
                       writer: asyncio.StreamWriter) -> None:
        task = asyncio.ensure_future(self._handle(reader, writer))
        self._handlers.add(task)
        task.add_done_callback(self._handlers.discard)

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, headers = await self._read_head(reader)
                body = await self._read_body(reader, headers)
                await self._route(method, path, body, writer)
            except _HttpError as exc:
                await self._send_json(writer, exc.status,
                                      {"error": exc.message})
            except (asyncio.IncompleteReadError, ConnectionError):
                pass
            except Exception as exc:  # noqa: BLE001 - last-resort handler
                try:
                    await self._send_json(
                        writer, 500, {"error": f"internal error: {exc}"})
                except (ConnectionError, RuntimeError):
                    pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _read_head(self, reader: asyncio.StreamReader
                         ) -> Tuple[str, str, Dict[str, str]]:
        line = await reader.readline()
        if not line:
            raise _HttpError(400, "empty request")
        if len(line) > _MAX_REQUEST_LINE:
            raise _HttpError(400, "request line too long")
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line {line!r}")
        method, path, _version = parts
        headers: Dict[str, str] = {}
        for _ in range(_MAX_HEADERS):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                return method.upper(), path, headers
            if len(line) > _MAX_REQUEST_LINE:
                raise _HttpError(400, "header line too long")
            name, _sep, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        raise _HttpError(400, "too many headers")

    async def _read_body(self, reader: asyncio.StreamReader,
                         headers: Dict[str, str]) -> bytes:
        length_text = headers.get("content-length")
        if not length_text:
            return b""
        try:
            length = int(length_text)
        except ValueError:
            raise _HttpError(400,
                             f"bad Content-Length {length_text!r}") from None
        if length < 0 or length > _MAX_BODY:
            raise _HttpError(413, f"body of {length} bytes exceeds the "
                                  f"{_MAX_BODY} byte limit")
        return await reader.readexactly(length)

    # -- routing ---------------------------------------------------------------

    async def _route(self, method: str, path: str, body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        path = path.split("?", 1)[0]
        if path == "/healthz":
            if method != "GET":
                raise _HttpError(405, "use GET for /healthz")
            await self._send_json(writer, 200, {"status": "ok"})
        elif path == "/stats":
            if method != "GET":
                raise _HttpError(405, "use GET for /stats")
            await self._send_json(writer, 200, self.service.snapshot())
        elif path in ("/experiments", "/"):
            if method != "POST":
                raise _HttpError(
                    405, "submit an ExperimentSpec with POST /experiments")
            await self._handle_submission(body, writer)
        else:
            raise _HttpError(
                404, f"unknown path {path!r}; routes: POST /experiments, "
                     f"GET /healthz, GET /stats")

    # -- submission ------------------------------------------------------------

    async def _handle_submission(self, body: bytes,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(400, f"body is not valid JSON: {exc}") from None
        try:
            envelope = SubmissionEnvelope.from_payload(payload)
        except EnvelopeError as exc:
            raise _HttpError(400, str(exc)) from None
        loop = asyncio.get_event_loop()
        try:
            # Validation + expansion builds circuits and layouts; keep the
            # event loop responsive (healthz during a huge expansion) by
            # planning in a thread.
            jobs = await loop.run_in_executor(
                None, lambda: envelope.spec.validate().expand())
        except SpecValidationError as exc:
            raise _HttpError(400, str(exc)) from None

        resolved = self.service.submit_plan(jobs)
        await self._send_head(writer, 200,
                              content_type="application/x-ndjson")
        for item in resolved:
            try:
                result = await asyncio.wrap_future(item.future)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 - stream the failure
                record = {"type": "error", "fingerprint": item.fingerprint,
                          "message": str(exc)}
                await self._send_line(writer, record)
                return
            row = ResultRow(benchmark=item.job.benchmark,
                            scheduler=item.job.scheduler_name,
                            seed=item.job.seed,
                            params=dict(item.job.tags),
                            result=result).summary()
            if envelope.include_status:
                row["status"] = item.status().to_dict()
            await self._send_line(writer, row)
        counts = self.service.counts_for(resolved)
        report = SubmissionReport(name=envelope.spec.name,
                                  request_id=envelope.request_id,
                                  **counts)
        await self._send_line(writer, report.to_dict())

    # -- response writing ------------------------------------------------------

    async def _send_head(self, writer: asyncio.StreamWriter, status: int,
                         content_type: str,
                         content_length: Optional[int] = None) -> None:
        lines = [f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
                 f"Content-Type: {content_type}",
                 "Connection: close"]
        if content_length is not None:
            lines.append(f"Content-Length: {content_length}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        await writer.drain()

    async def _send_line(self, writer: asyncio.StreamWriter,
                         record: Dict[str, object]) -> None:
        writer.write((canonical_dumps(record) + "\n").encode("utf-8"))
        await writer.drain()

    async def _send_json(self, writer: asyncio.StreamWriter, status: int,
                         payload: Dict[str, object]) -> None:
        body = (canonical_dumps(payload) + "\n").encode("utf-8")
        await self._send_head(writer, status, "application/json",
                              content_length=len(body))
        writer.write(body)
        await writer.drain()
