"""ServiceExecutor: a work-stealing process pool built for a long-lived service.

:class:`~repro.exec.executors.ParallelExecutor` is a batch tool: it maps one
job list over a pool and tears the pool down.  A service needs more:

* **work stealing** — jobs go into one shared queue and idle workers pull
  the next job the moment they finish, so a slow simulation never strands
  queued work behind it;
* **per-job timeout** — a runaway simulation is killed (its worker is
  terminated and replaced) instead of wedging the service;
* **bounded retry on worker death** — a crashed worker (OOM kill, segfault
  in an extension) fails the job it was running with a retry budget, not
  the whole pool;
* **graceful drain** — shutdown stops intake, finishes in-flight work,
  then dismisses the workers.

Workers are created with the ``spawn`` start method.  A service forks
workers *while connections are open*; with ``fork`` every child would
inherit the accepted client sockets, so the server's close never sends
FIN and clients streaming an NDJSON response hang waiting for EOF.
``spawn`` children inherit nothing but the two queues they are handed,
and are immune to fork-from-a-thread lock inheritance as a bonus.

The executor still implements the :class:`~repro.exec.executors.Executor`
protocol (``run_jobs`` is order-preserving), so an
:class:`~repro.exec.engine.ExecutionEngine` can be backed by it directly.
Platforms that cannot spawn processes fall back to inline execution with a
warning, matching :class:`ParallelExecutor`.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import threading
import traceback
import warnings
from concurrent.futures import Future
from dataclasses import dataclass, field
from time import monotonic
from typing import Dict, List, Optional, Sequence

from ..exec.executors import Executor
from ..sim.results import SimulationResult

__all__ = ["ServiceExecutor", "JobFailedError", "JobTimeoutError",
           "WorkerCrashError"]


class JobFailedError(RuntimeError):
    """The job itself raised inside the worker (not retried)."""


class JobTimeoutError(RuntimeError):
    """The job exceeded the per-job timeout and its worker was killed."""


class WorkerCrashError(RuntimeError):
    """The worker process died while running the job, retry budget spent."""


def _worker_main(task_queue, result_queue, claim_conn, worker_id: int) -> None:
    """Worker loop: steal the next task, run it, report back.

    Claims go over a dedicated pipe rather than the result queue: a
    ``Connection.send`` is a synchronous write that completes before
    ``job.run()`` starts, so even a worker that dies instantly (segfault,
    OOM kill) has already told the parent which task it was holding.  The
    result queue's feeder thread gives no such guarantee.
    """
    while True:
        item = task_queue.get()
        if item is None:
            result_queue.put(("exit", worker_id, None, None))
            return
        task_id, job = item
        claim_conn.send(task_id)
        try:
            result = job.run()
        except BaseException as exc:  # noqa: BLE001 - report, don't die
            detail = (type(exc).__name__, str(exc), traceback.format_exc())
            result_queue.put(("error", worker_id, task_id, detail))
        else:
            result_queue.put(("done", worker_id, task_id, result))


@dataclass
class _Task:
    job: object
    future: "Future"
    attempts: int = 0
    started_at: Optional[float] = None
    worker_id: Optional[int] = None
    timed_out: bool = False
    detail: str = field(default="")


class ServiceExecutor(Executor):
    """Work-stealing process pool with timeouts, retries and graceful drain.

    Parameters
    ----------
    max_workers:
        Worker process count; defaults to ``os.cpu_count()``.
    job_timeout:
        Seconds a single job may run before its worker is terminated and the
        job fails with :class:`JobTimeoutError`.  ``None`` disables the
        watchdog.
    max_attempts:
        Total tries a job gets when its worker *dies* mid-run (crash, OOM
        kill, timeout-terminate of a different job sharing the worker is
        impossible — one job per worker at a time).  Exceptions raised *by*
        the job are never retried; they are deterministic.
    poll_interval:
        Collector wake-up period for timeout/liveness checks, in seconds.
    mp_context:
        Multiprocessing start method.  The default ``spawn`` keeps client
        socket fds out of the workers (see the module docstring).
    """

    def __init__(self, max_workers: Optional[int] = None,
                 job_timeout: Optional[float] = None,
                 max_attempts: int = 2,
                 poll_interval: float = 0.05,
                 mp_context: str = "spawn") -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if job_timeout is not None and job_timeout <= 0:
            raise ValueError("job_timeout must be positive")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_workers = max_workers or os.cpu_count() or 1
        self.job_timeout = job_timeout
        self.max_attempts = max_attempts
        self.poll_interval = poll_interval
        self._ctx = multiprocessing.get_context(mp_context)

        self._lock = threading.RLock()
        self._tasks: Dict[int, _Task] = {}
        self._workers: Dict[int, multiprocessing.Process] = {}
        self._claims: Dict[int, object] = {}  # worker_id -> Connection
        self._next_task_id = 0
        self._next_worker_id = 0
        self._started = False
        self._inline = False
        self._closed = False
        self._stop = threading.Event()
        self._task_queue = None
        self._result_queue = None
        self._collector: Optional[threading.Thread] = None
        self.executed = 0  # jobs that completed successfully
        # Backstop against a respawn storm: if the environment kills every
        # worker we start (e.g. it cannot import the main module), stop
        # respawning and fail pending work instead of burning CPU forever.
        self._respawn_budget = 4 * self.max_workers

    # -- lifecycle -------------------------------------------------------------

    def _spawn_worker_locked(self) -> None:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_worker_main,
            args=(self._task_queue, self._result_queue, send_conn, worker_id),
            daemon=True)
        process.start()
        send_conn.close()  # the child holds the write end now
        self._workers[worker_id] = process
        self._claims[worker_id] = recv_conn

    def start(self) -> None:
        """Start the worker pool eagerly (e.g. before accepting traffic).

        Idempotent; :meth:`submit` calls it lazily otherwise.
        """
        self._ensure_started()

    def _ensure_started(self) -> None:
        with self._lock:
            if self._started or self._inline:
                return
            try:
                self._task_queue = self._ctx.Queue()
                self._result_queue = self._ctx.Queue()
                for _ in range(self.max_workers):
                    self._spawn_worker_locked()
            except (OSError, PermissionError) as exc:
                warnings.warn(
                    f"ServiceExecutor could not start worker processes "
                    f"({exc}); falling back to inline execution (no "
                    f"timeouts, no crash isolation)", RuntimeWarning,
                    stacklevel=3)
                for process in self._workers.values():
                    try:
                        process.terminate()
                    except OSError:
                        pass
                self._workers.clear()
                for worker_id in list(self._claims):
                    self._close_claim(worker_id)
                self._inline = True
                return
            self._collector = threading.Thread(
                target=self._collect, name="rescq-service-collector",
                daemon=True)
            self._collector.start()
            self._started = True

    # -- submission ------------------------------------------------------------

    def submit(self, job) -> "Future":
        """Enqueue ``job`` (anything with a picklable ``run()``); return its future."""
        with self._lock:
            if self._closed:
                raise RuntimeError("ServiceExecutor is shut down")
        self._ensure_started()
        future: "Future" = Future()
        if self._inline:
            try:
                result = job.run()
            except BaseException as exc:  # noqa: BLE001
                future.set_exception(JobFailedError(str(exc)))
            else:
                self.executed += 1
                future.set_result(result)
            return future
        with self._lock:
            task_id = self._next_task_id
            self._next_task_id += 1
            self._tasks[task_id] = _Task(job=job, future=future)
        self._task_queue.put((task_id, job))
        return future

    def run_jobs(self, jobs: Sequence) -> List[SimulationResult]:
        """Execute every job and return results in job order (Executor API)."""
        futures = [self.submit(job) for job in jobs]
        return [future.result() for future in futures]

    @property
    def queue_depth(self) -> int:
        """Jobs submitted but not yet finished (queued + running)."""
        with self._lock:
            return len(self._tasks)

    @property
    def worker_count(self) -> int:
        with self._lock:
            return len(self._workers)

    # -- collector -------------------------------------------------------------

    def _collect(self) -> None:
        while not self._stop.is_set():
            self._drain_claims()
            self._drain_results()
            self._check_timeouts()
            self._check_workers()

    def _drain_claims(self) -> None:
        """Record which worker is holding which task (synchronous pipes)."""
        with self._lock:
            claims = list(self._claims.items())
        for worker_id, conn in claims:
            try:
                while conn.poll():
                    task_id = conn.recv()
                    with self._lock:
                        task = self._tasks.get(task_id)
                        if task is not None:
                            task.worker_id = worker_id
                            task.started_at = monotonic()
            except (EOFError, OSError):
                continue

    def _close_claim(self, worker_id: int) -> None:
        with self._lock:
            conn = self._claims.pop(worker_id, None)
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass

    def _drain_results(self) -> None:
        try:
            message = self._result_queue.get(timeout=self.poll_interval)
        except (queue.Empty, OSError, EOFError):
            return
        while True:
            self._handle_message(message)
            try:
                message = self._result_queue.get_nowait()
            except (queue.Empty, OSError, EOFError):
                return

    def _handle_message(self, message) -> None:
        kind, worker_id, task_id, payload = message
        if kind == "exit":
            with self._lock:
                self._workers.pop(worker_id, None)
            self._close_claim(worker_id)
            return
        with self._lock:
            task = self._tasks.get(task_id)
        if task is None:
            return
        with self._lock:
            self._tasks.pop(task_id, None)
        if kind == "done":
            self.executed += 1
            task.future.set_result(payload)
        elif kind == "error":
            name, text, trace = payload
            task.future.set_exception(JobFailedError(
                f"job raised {name}: {text}\n{trace}"))

    def _check_timeouts(self) -> None:
        if self.job_timeout is None:
            return
        now = monotonic()
        with self._lock:
            expired = [task for task in self._tasks.values()
                       if task.started_at is not None and not task.timed_out
                       and now - task.started_at > self.job_timeout]
            for task in expired:
                task.timed_out = True
                worker = self._workers.get(task.worker_id)
                if worker is not None:
                    worker.terminate()

    def _check_workers(self) -> None:
        with self._lock:
            dead = [(worker_id, process)
                    for worker_id, process in self._workers.items()
                    if not process.is_alive()]
            for worker_id, _process in dead:
                self._workers.pop(worker_id, None)
        if not dead:
            return
        # A killed worker may have flushed its final message just before
        # dying; account for it (and any claim it sent) before declaring its
        # task lost.
        self._drain_claims()
        self._drain_results()
        for worker_id, _process in dead:
            self._close_claim(worker_id)
            with self._lock:
                orphans = [task_id for task_id, task in self._tasks.items()
                           if task.worker_id == worker_id
                           and task.started_at is not None]
            for task_id in orphans:
                self._requeue_or_fail(task_id)
            with self._lock:
                if (not self._closed and not self._stop.is_set()
                        and self._respawn_budget > 0):
                    self._respawn_budget -= 1
                    self._spawn_worker_locked()
        with self._lock:
            if self._workers or self._respawn_budget > 0:
                return
            stranded = list(self._tasks.items())
            self._tasks.clear()
        for _task_id, task in stranded:
            task.future.set_exception(WorkerCrashError(
                "worker pool collapsed: every worker died and the respawn "
                "budget is spent"))

    def _requeue_or_fail(self, task_id: int) -> None:
        with self._lock:
            task = self._tasks.get(task_id)
            if task is None:
                return
            if task.timed_out:
                self._tasks.pop(task_id, None)
                fail: Optional[BaseException] = JobTimeoutError(
                    f"job exceeded the {self.job_timeout}s per-job timeout "
                    f"and its worker was terminated")
            else:
                task.attempts += 1
                if task.attempts < self.max_attempts:
                    task.worker_id = None
                    task.started_at = None
                    fail = None
                else:
                    self._tasks.pop(task_id, None)
                    fail = WorkerCrashError(
                        f"worker process died while running the job "
                        f"({task.attempts} attempt(s), budget "
                        f"{self.max_attempts})")
        if fail is not None:
            task.future.set_exception(fail)
        else:
            self._task_queue.put((task_id, task.job))

    # -- shutdown --------------------------------------------------------------

    def shutdown(self, drain: bool = True, timeout: Optional[float] = None
                 ) -> None:
        """Stop the pool.

        With ``drain=True`` (the default) intake closes, every in-flight and
        queued job finishes, and the workers exit cleanly.  With
        ``drain=False`` pending futures are cancelled and workers are
        terminated immediately.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            started = self._started
        if not started:
            return
        if drain:
            deadline = None if timeout is None else monotonic() + timeout
            while True:
                with self._lock:
                    pending = len(self._tasks)
                if not pending:
                    break
                if deadline is not None and monotonic() > deadline:
                    break
                self._stop.wait(self.poll_interval)
        else:
            with self._lock:
                abandoned = list(self._tasks.values())
                self._tasks.clear()
            for task in abandoned:
                task.future.cancel()
        with self._lock:
            workers = list(self._workers.values())
        for _ in workers:
            try:
                self._task_queue.put(None)
            except (OSError, ValueError):
                pass
        for process in workers:
            process.join(timeout=1.0)
        self._stop.set()
        if self._collector is not None:
            self._collector.join(timeout=2.0)
        with self._lock:
            for process in self._workers.values():
                if process.is_alive():
                    process.terminate()
            self._workers.clear()
        for worker_id in list(self._claims):
            self._close_claim(worker_id)
        for mp_queue in (self._task_queue, self._result_queue):
            if mp_queue is not None:
                mp_queue.close()
                mp_queue.cancel_join_thread()

    def describe(self) -> str:
        mode = "inline" if self._inline else str(self.max_workers)
        return f"service[{mode}]"

    def __enter__(self) -> "ServiceExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(drain=True)
