"""ExperimentService: cache + single-flight + executor, behind one object.

This is the HTTP-free heart of ``rescq serve``: it takes an expanded
:class:`~repro.exec.jobs.SimJob` plan and resolves every job to a future
through three layers —

1. **single-flight** — an identical job already running (submitted by this
   or any concurrent request) is joined, not re-executed;
2. **cache** — a finished identical job is returned straight from the
   :class:`~repro.exec.cache.CacheBackend`;
3. **executor** — everything else is fanned out over the work-stealing
   :class:`~repro.service.executor.ServiceExecutor` and stored back into
   the cache on completion.

The result: submitting the same :class:`~repro.api.spec.ExperimentSpec` N
times — sequentially or concurrently — executes each unique simulation
point exactly once.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..api.envelope import JobStatus
from ..exec.cache import CacheBackend
from .executor import ServiceExecutor
from .singleflight import SingleFlight

__all__ = ["AdmissionError", "ExperimentService", "ResolvedJob",
           "ServiceStats"]


class AdmissionError(RuntimeError):
    """The service is over its pending-jobs high-water mark; try again later.

    Carries ``retry_after`` (seconds) so HTTP front ends can answer
    ``429 Too Many Requests`` with a ``Retry-After`` header instead of
    queueing the request unboundedly.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


@dataclass
class ServiceStats:
    """Cumulative accounting over the service's lifetime."""

    requests: int = 0
    jobs: int = 0
    executed: int = 0
    cache_hits: int = 0
    deduped: int = 0
    errors: int = 0
    rejected: int = 0  # requests refused by admission control (HTTP 429)

    def describe(self) -> str:
        return (f"requests={self.requests} jobs={self.jobs} "
                f"executed={self.executed} cache_hits={self.cache_hits} "
                f"deduped={self.deduped} errors={self.errors} "
                f"rejected={self.rejected}")


@dataclass(frozen=True)
class ResolvedJob:
    """One planned job, its resolution source, and the future of its result."""

    job: object  # SimJob
    fingerprint: str
    source: str  # one of JobStatus.SOURCES
    future: "Future"

    def status(self) -> JobStatus:
        return JobStatus(
            fingerprint=self.fingerprint,
            benchmark=self.job.benchmark,
            scheduler=self.job.scheduler_name,
            seed=self.job.seed,
            params=dict(self.job.tags),
            source=self.source,
        )


class ExperimentService:
    """Deduplicating, cache-backed job resolution for the experiment server."""

    def __init__(self, executor: Optional[ServiceExecutor] = None,
                 cache: Optional[CacheBackend] = None,
                 max_pending: Optional[int] = None,
                 retry_after: float = 1.0) -> None:
        if max_pending is not None and max_pending < 0:
            raise ValueError("max_pending must be >= 0")
        if retry_after <= 0:
            raise ValueError("retry_after must be positive")
        self.executor = executor or ServiceExecutor()
        self.cache = cache
        #: Admission-control high-water mark on the pending-jobs gauge
        #: (``executor.queue_depth``: submitted-but-unfinished jobs).  A
        #: request arriving while the gauge is at or above the mark is
        #: rejected with :class:`AdmissionError` instead of queued; ``None``
        #: disables admission control.  One admitted plan may overshoot the
        #: mark — the bound is on *queueing*, not on plan size.
        self.max_pending = max_pending
        self.retry_after = retry_after
        self.singleflight = SingleFlight()
        self.stats = ServiceStats()
        self._stats_lock = threading.Lock()

    # -- resolution ------------------------------------------------------------

    def resolve(self, job) -> ResolvedJob:
        """Resolve one job through single-flight, cache, then the executor.

        Thread-safe; never blocks on the simulation itself (the returned
        future materialises the result).
        """
        key = job.fingerprint()
        leader, flight = self.singleflight.begin(key)
        if not leader:
            with self._stats_lock:
                self.stats.deduped += 1
            return ResolvedJob(job=job, fingerprint=key, source="deduped",
                               future=flight)
        if self.cache is not None:
            cached = self.cache.get(key)
            if cached is not None:
                with self._stats_lock:
                    self.stats.cache_hits += 1
                self.singleflight.finish(key, cached)
                return ResolvedJob(job=job, fingerprint=key, source="cache",
                                   future=flight)
        with self._stats_lock:
            self.stats.executed += 1
        execution = self.executor.submit(job)
        execution.add_done_callback(
            lambda done, key=key: self._publish(key, done))
        return ResolvedJob(job=job, fingerprint=key, source="executed",
                           future=flight)

    def _publish(self, key: str, done: "Future") -> None:
        """Store the leader's result (write-once) and release the flight."""
        exc = done.exception()
        if exc is not None:
            with self._stats_lock:
                self.stats.errors += 1
            self.singleflight.fail(key, exc)
            return
        result = done.result()
        if self.cache is not None:
            try:
                self.cache.put(key, result)
            except Exception:  # noqa: BLE001 - cache faults must not lose results
                pass
        self.singleflight.finish(key, result)

    @property
    def pending_jobs(self) -> int:
        """The admission-control gauge: submitted-but-unfinished jobs."""
        return self.executor.queue_depth

    def admit(self, jobs: Sequence) -> None:
        """Raise :class:`AdmissionError` if the pending gauge is at the mark.

        Deduplicated and cached jobs never reach the executor, so a burst of
        *identical* submissions sails through admission (the gauge only
        counts unique in-flight simulations); it is a flood of *distinct*
        work that trips the mark.
        """
        if self.max_pending is None:
            return
        pending = self.pending_jobs
        if pending >= self.max_pending:
            with self._stats_lock:
                self.stats.rejected += 1
            raise AdmissionError(
                f"{pending} pending job(s) at/above the max_pending="
                f"{self.max_pending} high-water mark; retry after "
                f"{self.retry_after:g}s", retry_after=self.retry_after)

    def submit_plan(self, jobs: Sequence) -> List[ResolvedJob]:
        """Resolve a whole job plan, preserving plan order.

        Raises :class:`AdmissionError` (without resolving anything) when the
        pending-jobs gauge is at the high-water mark.
        """
        with self._stats_lock:
            self.stats.requests += 1
        self.admit(jobs)
        with self._stats_lock:
            self.stats.jobs += len(jobs)
        return [self.resolve(job) for job in jobs]

    # -- observability ---------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Point-in-time stats for the ``/stats`` endpoint."""
        with self._stats_lock:
            stats = {
                "requests": self.stats.requests,
                "jobs": self.stats.jobs,
                "executed": self.stats.executed,
                "cache_hits": self.stats.cache_hits,
                "deduped": self.stats.deduped,
                "errors": self.stats.errors,
                "rejected": self.stats.rejected,
            }
        stats["in_flight"] = len(self.singleflight)
        stats["queue_depth"] = self.executor.queue_depth
        stats["max_pending"] = self.max_pending
        if self.cache is not None:
            stats["cache"] = {
                "hits": self.cache.stats.hits,
                "misses": self.cache.stats.misses,
                "stores": self.cache.stats.stores,
                "connect_errors": getattr(self.cache.stats,
                                          "connect_errors", 0),
                "corrupt_payloads": getattr(self.cache.stats,
                                            "corrupt_payloads", 0),
                "read_retries": getattr(self.cache.stats,
                                        "read_retries", 0),
            }
        return stats

    def counts_for(self, resolved: Sequence[ResolvedJob]
                   ) -> Dict[str, int]:
        """Per-request summary counts (the trailing NDJSON summary record)."""
        counts = {"jobs": len(resolved), "executed": 0, "cache_hits": 0,
                  "deduped": 0}
        for item in resolved:
            if item.source == "executed":
                counts["executed"] += 1
            elif item.source == "cache":
                counts["cache_hits"] += 1
            else:
                counts["deduped"] += 1
        return counts

    # -- lifecycle -------------------------------------------------------------

    def shutdown(self, drain: bool = True) -> None:
        """Drain the executor and release the cache."""
        self.executor.shutdown(drain=drain)
        if self.cache is not None:
            self.cache.close()

    def describe(self) -> str:
        text = f"[service] {self.stats.describe()}"
        if self.cache is not None:
            text += f" {self.cache.stats.describe()}"
        return text
