"""Single-flight deduplication: one execution per in-flight fingerprint.

The cache deduplicates *finished* work; the single-flight table
deduplicates work that is still running.  When two requests submit jobs
with the same fingerprint concurrently, the first becomes the **leader**
(it executes the job and publishes the result) and every later request
becomes a **follower** (it waits on the leader's future).  Combined with a
write-once cache this gives the service its exactly-once guarantee: for any
fingerprint, at most one simulation runs no matter how many concurrent
submissions ask for it.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import Dict, Tuple

__all__ = ["SingleFlight"]


class SingleFlight:
    """A thread-safe ``fingerprint -> in-flight Future`` table."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: Dict[str, "Future"] = {}

    def begin(self, key: str) -> Tuple[bool, "Future"]:
        """Join the flight for ``key``.

        Returns ``(True, future)`` if the caller is the leader — it must
        eventually call :meth:`finish` or :meth:`fail` with the same key —
        or ``(False, future)`` if another flight is already in progress and
        the caller should just wait on the shared future.
        """
        with self._lock:
            future = self._inflight.get(key)
            if future is not None:
                return False, future
            future = Future()
            self._inflight[key] = future
            return True, future

    def finish(self, key: str, result) -> None:
        """Publish the leader's result and retire the flight."""
        with self._lock:
            future = self._inflight.pop(key)
        future.set_result(result)

    def fail(self, key: str, exc: BaseException) -> None:
        """Propagate the leader's failure to every follower and retire."""
        with self._lock:
            future = self._inflight.pop(key)
        future.set_exception(exc)

    def __len__(self) -> int:
        with self._lock:
            return len(self._inflight)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._inflight
