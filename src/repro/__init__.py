"""repro — a from-scratch reproduction of RESCQ (ASPLOS 2025).

RESCQ is a realtime scheduler for surface-code architectures that natively
prepare continuous-angle rotation states |m_theta>.  This package provides the
whole stack the paper's evaluation rests on:

* :mod:`repro.circuits` — Clifford+Rz circuit IR, dependency DAG, text I/O;
* :mod:`repro.workloads` — the Table 3 benchmark generators;
* :mod:`repro.fabric` — STAR tile layouts and grid compression;
* :mod:`repro.lattice` — lattice-surgery costs, edge orientation, routing;
* :mod:`repro.rus` — |m_theta> preparation/injection statistics and the
  Clifford+T comparison;
* :mod:`repro.scheduling` — RESCQ plus the greedy and AutoBraid baselines;
* :mod:`repro.sim` — the seeded cycle-level symbolic-execution simulator;
* :mod:`repro.exec` — the job-based execution engine: every sweep/comparison
  is planned as explicit :class:`~repro.exec.SimJob` records and run through
  pluggable executors (serial, multi-process) with an optional on-disk
  result cache keyed by content fingerprint;
* :mod:`repro.analysis` — sweeps and experiment drivers for every figure and
  table of the paper.

Quickstart::

    from repro import (RescqScheduler, AutoBraidScheduler, SimulationConfig,
                       compare_schedulers)
    from repro.workloads import qft_circuit

    circuit = qft_circuit(8)
    rows = compare_schedulers([AutoBraidScheduler(), RescqScheduler()], circuit,
                              config=SimulationConfig(), seeds=3)
    print({name: row.mean_cycles for name, row in rows.items()})

To fan the same comparison out over worker processes with an on-disk memo of
finished points::

    from repro.exec import ExecutionEngine, ParallelExecutor, ResultCache

    engine = ExecutionEngine(executor=ParallelExecutor(max_workers=8),
                             cache=ResultCache(".rescq-cache"))
    rows = compare_schedulers(..., engine=engine)
"""

from .circuits import Circuit, Gate, GateType
from .fabric import GridLayout, StarVariant, compress_layout, star_layout
from .rus import InjectionModel, InjectionStrategy, PreparationModel
from .scheduling import AutoBraidScheduler, GreedyScheduler, RescqScheduler
from .sim import (
    SimulationConfig,
    SimulationResult,
    compare_schedulers,
    default_layout,
    geometric_mean,
    run_schedule,
)
from .exec import (
    ExecutionEngine,
    ParallelExecutor,
    ResultCache,
    SerialExecutor,
    SimJob,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Circuit",
    "Gate",
    "GateType",
    "GridLayout",
    "StarVariant",
    "star_layout",
    "compress_layout",
    "PreparationModel",
    "InjectionModel",
    "InjectionStrategy",
    "RescqScheduler",
    "GreedyScheduler",
    "AutoBraidScheduler",
    "SimulationConfig",
    "SimulationResult",
    "run_schedule",
    "compare_schedulers",
    "default_layout",
    "geometric_mean",
    "SimJob",
    "ExecutionEngine",
    "SerialExecutor",
    "ParallelExecutor",
    "ResultCache",
]
