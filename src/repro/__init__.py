"""repro — a from-scratch reproduction of RESCQ (ASPLOS 2025).

RESCQ is a realtime scheduler for surface-code architectures that natively
prepare continuous-angle rotation states |m_theta>.  This package provides the
whole stack the paper's evaluation rests on:

* :mod:`repro.circuits` — Clifford+Rz circuit IR, dependency DAG, text I/O;
* :mod:`repro.workloads` — the Table 3 benchmark generators;
* :mod:`repro.fabric` — STAR tile layouts and grid compression;
* :mod:`repro.lattice` — lattice-surgery costs, edge orientation, routing;
* :mod:`repro.rus` — |m_theta> preparation/injection statistics (with
  vectorised, stream-equivalent batch sampling) and the Clifford+T
  comparison;
* :mod:`repro.kernel` — the shared simulation kernel: clock + event queue,
  fabric occupancy state, gate lifecycle, profiler, and the two drive loops
  (event-driven and layer-synchronous) policies plug into;
* :mod:`repro.scheduling` — the policies: RESCQ plus the greedy and
  AutoBraid baselines;
* :mod:`repro.sim` — the seeded cycle-level symbolic-execution simulator;
* :mod:`repro.exec` — the job-based execution engine: every sweep/comparison
  is planned as explicit :class:`~repro.exec.SimJob` records and run through
  pluggable executors (serial, multi-process) with an optional on-disk
  result cache keyed by content fingerprint;
* :mod:`repro.analysis` — sweeps and experiment drivers for every figure and
  table of the paper.

* :mod:`repro.api` — the declarative layer: named registries for schedulers,
  benchmarks, layouts and sweep axes; :class:`~repro.api.ExperimentSpec`
  (a JSON-round-trippable experiment description); and
  :class:`~repro.api.ResultSet`, the filterable result container.

Quickstart::

    from repro.api import ExperimentSpec, run_experiment

    spec = ExperimentSpec(benchmarks=("qft_n18",),
                          schedulers=("autobraid", "rescq"), seeds=3)
    results = run_experiment(spec)
    print({row["scheduler"]: row["mean_cycles"]
           for row in results.aggregate("scheduler")})

To fan the same experiment out over worker processes with an on-disk memo of
finished points::

    from repro.api import build_engine

    engine = build_engine(jobs=8, cache=".rescq-cache")
    results = run_experiment(spec, engine)
"""

from .circuits import Circuit, Gate, GateType
from .fabric import GridLayout, StarVariant, compress_layout, star_layout
from .rus import InjectionModel, InjectionStrategy, PreparationModel
from .scheduling import AutoBraidScheduler, GreedyScheduler, RescqScheduler
from .sim import (
    SimulationConfig,
    SimulationResult,
    compare_schedulers,
    default_layout,
    geometric_mean,
    run_schedule,
)
from .exec import (
    ExecutionEngine,
    ParallelExecutor,
    ResultCache,
    SerialExecutor,
    SimJob,
)
from .api import (
    ExperimentSpec,
    Registry,
    ResultSet,
    build_engine,
    run_experiment,
)

try:
    from importlib.metadata import PackageNotFoundError as _PkgNotFound
    from importlib.metadata import version as _pkg_version
    try:
        __version__ = _pkg_version("rescq-repro")
    except _PkgNotFound:
        __version__ = "1.1.0"
except ImportError:  # pragma: no cover - importlib.metadata is 3.8+
    __version__ = "1.1.0"

__all__ = [
    "__version__",
    "ExperimentSpec",
    "Registry",
    "ResultSet",
    "build_engine",
    "run_experiment",
    "Circuit",
    "Gate",
    "GateType",
    "GridLayout",
    "StarVariant",
    "star_layout",
    "compress_layout",
    "PreparationModel",
    "InjectionModel",
    "InjectionStrategy",
    "RescqScheduler",
    "GreedyScheduler",
    "AutoBraidScheduler",
    "SimulationConfig",
    "SimulationResult",
    "run_schedule",
    "compare_schedulers",
    "default_layout",
    "geometric_mean",
    "SimJob",
    "ExecutionEngine",
    "SerialExecutor",
    "ParallelExecutor",
    "ResultCache",
]
