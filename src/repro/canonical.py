"""Canonical JSON: the byte-stable serialisation behind cache keys and artifacts.

Caching across hosts — and auditing the artifacts a run leaves behind —
requires that the *same* logical value always serialises to the *same*
bytes.  Plain ``json.dumps`` almost gives that, but leaves three holes this
module closes:

* **key order** — dict insertion order leaks into the output; canonical JSON
  always sorts keys;
* **non-finite floats** — ``NaN``/``Infinity`` are emitted as bare tokens
  that are not JSON at all, compare unequal to themselves, and poison any
  content hash; canonical JSON rejects them with a path-qualified error;
* **negative zero** — ``-0.0`` and ``0.0`` are equal in Python but serialise
  differently; canonical JSON normalises to ``0.0``.

Finite floats rely on ``repr``'s shortest-round-trip algorithm (stable on
every CPython >= 3.1, on every platform), so a fingerprint computed on one
host matches the fingerprint computed on another.  This is the first slice
of the ROADMAP's canonical, auditable run artifacts: ``ExperimentSpec`` and
``ResultSet`` serialisation, job fingerprints and both cache backends all
write through :func:`canonical_dumps`.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Optional

__all__ = ["CanonicalizationError", "canonical_dumps", "content_hash"]


class CanonicalizationError(ValueError):
    """A value cannot be canonically serialised (e.g. contains NaN)."""


def _scrub(value, path: str):
    """Validate and normalise ``value`` for canonical serialisation.

    Returns a structure in which every float is finite (with ``-0.0``
    normalised to ``0.0``) and every mapping key is a string; raises
    :class:`CanonicalizationError` naming the offending path otherwise.
    """
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        if not math.isfinite(value):
            raise CanonicalizationError(
                f"non-finite float {value!r} at {path}; canonical JSON "
                f"rejects NaN/Infinity — filter or replace the value before "
                f"serialising")
        return 0.0 if value == 0.0 else value
    if isinstance(value, dict):
        scrubbed = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise CanonicalizationError(
                    f"non-string key {key!r} at {path}; canonical JSON "
                    f"object keys must be strings")
            scrubbed[key] = _scrub(item, f"{path}.{key}")
        return scrubbed
    if isinstance(value, (list, tuple)):
        return [_scrub(item, f"{path}[{index}]")
                for index, item in enumerate(value)]
    raise CanonicalizationError(
        f"value {value!r} of type {type(value).__name__} at {path} is not "
        f"JSON-serialisable; convert it to plain data first")


def canonical_dumps(value, indent: Optional[int] = None) -> str:
    """Serialise ``value`` as canonical JSON.

    Keys sorted, NaN/Infinity rejected (with the path to the offending
    value), ``-0.0`` normalised, ASCII-only output, compact separators when
    ``indent`` is ``None``.  Two equal values always produce identical
    bytes — the property every cache fingerprint and artifact hash relies
    on.
    """
    scrubbed = _scrub(value, "$")
    separators = (",", ": ") if indent is not None else (",", ":")
    return json.dumps(scrubbed, sort_keys=True, allow_nan=False,
                      indent=indent, separators=separators)


def content_hash(value) -> str:
    """SHA-256 hex digest of ``value``'s canonical JSON serialisation."""
    text = canonical_dumps(value)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
