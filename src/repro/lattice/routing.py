"""Routing primitives over the ancilla fabric.

Both the static baselines and RESCQ need to turn "CNOT between qubits C and T"
into a concrete plan: which ancilla tile attaches to the control's Z edge,
which attaches to the target's X edge, which contiguous ancilla path connects
the two, and whether edge rotations are needed first (Section 3.1, Figure 4).
The *policies* differ in how they pick among candidate plans; the mechanics of
enumerating and validating plans are shared and live here.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..fabric import Edge, GridLayout, Position
from .operations import DEFAULT_COSTS, LatticeSurgeryCosts
from .orientation import OrientationTracker

__all__ = ["RoutePlan", "bfs_ancilla_path", "enumerate_cnot_plans",
           "find_shortest_cnot_plan"]


@dataclass(frozen=True)
class RoutePlan:
    """A concrete way to execute one CNOT.

    Attributes
    ----------
    control / target:
        Program qubit indices.
    path:
        Contiguous ancilla tiles used for the merge, ordered from the tile
        attached to the control to the tile attached to the target (a single
        tile may serve both roles).
    control_rotation / target_rotation:
        Whether an edge-rotation gate is required on the respective qubit
        before the merge can happen.
    rotation_ancilla_control / rotation_ancilla_target:
        The ancilla tile used by the corresponding edge rotation (``None``
        when no rotation is needed).
    """

    control: int
    target: int
    path: Tuple[Position, ...]
    control_rotation: bool = False
    target_rotation: bool = False
    rotation_ancilla_control: Optional[Position] = None
    rotation_ancilla_target: Optional[Position] = None

    @property
    def ancillas_used(self) -> Tuple[Position, ...]:
        """Every ancilla tile the plan touches (path plus rotation helpers)."""
        extra = [pos for pos in (self.rotation_ancilla_control,
                                 self.rotation_ancilla_target)
                 if pos is not None and pos not in self.path]
        return self.path + tuple(extra)

    @property
    def num_rotations(self) -> int:
        return int(self.control_rotation) + int(self.target_rotation)

    def duration(self, costs: LatticeSurgeryCosts = DEFAULT_COSTS,
                 sequential_rotations: Optional[bool] = None) -> int:
        """Total cycles the plan occupies the data qubits.

        Edge rotations on control and target can proceed in parallel when they
        use *different* ancilla tiles; when they share the single available
        ancilla they serialise, which is how the 3+3+2 = 8-cycle CNOTs of
        Figure 5 arise.
        """
        if sequential_rotations is None:
            sequential_rotations = (
                self.control_rotation and self.target_rotation
                and self.rotation_ancilla_control == self.rotation_ancilla_target)
        rotation_cycles = 0
        if self.control_rotation and self.target_rotation:
            if sequential_rotations:
                rotation_cycles = 2 * costs.edge_rotation_cycles
            else:
                rotation_cycles = costs.edge_rotation_cycles
        elif self.control_rotation or self.target_rotation:
            rotation_cycles = costs.edge_rotation_cycles
        return rotation_cycles + costs.cnot_cycles


def bfs_ancilla_path(layout: GridLayout, start: Position, goal: Position,
                     blocked: Optional[Set[Position]] = None) -> Optional[List[Position]]:
    """Shortest path of free ancilla tiles from ``start`` to ``goal`` inclusive.

    ``blocked`` tiles cannot be used (busy ancillas).  Returns ``None`` when no
    path exists.  ``start`` and ``goal`` must themselves be ancilla tiles not
    in ``blocked``.
    """
    blocked = blocked or set()
    if not layout.is_ancilla(start) or not layout.is_ancilla(goal):
        return None
    if start in blocked or goal in blocked:
        return None
    if start == goal:
        return [start]
    parents: Dict[Position, Position] = {start: start}
    queue = deque([start])
    while queue:
        current = queue.popleft()
        for neighbor in layout.neighbors(current):
            if neighbor in parents or neighbor in blocked:
                continue
            if not layout.is_ancilla(neighbor):
                continue
            parents[neighbor] = current
            if neighbor == goal:
                path = [goal]
                while path[-1] != start:
                    path.append(parents[path[-1]])
                path.reverse()
                return path
            queue.append(neighbor)
    return None


def _attachment_candidates(layout: GridLayout, orientation: OrientationTracker,
                           qubit: int, pauli: str) -> List[Tuple[Position, bool]]:
    """Ancilla neighbours that could attach to ``qubit``'s ``pauli`` edge.

    Returns ``(ancilla_position, needs_rotation)`` pairs: a neighbour on a
    boundary already exposing ``pauli`` needs no rotation; a neighbour on the
    other boundary can still be used after one edge-rotation gate.
    """
    position = layout.data_position(qubit)
    candidates: List[Tuple[Position, bool]] = []
    for edge in Edge:
        neighbor = edge.neighbor(position)
        if not layout.is_ancilla(neighbor):
            continue
        needs_rotation = not orientation.exposes(qubit, edge, pauli)
        candidates.append((neighbor, needs_rotation))
    # Prefer rotation-free attachments.
    candidates.sort(key=lambda item: item[1])
    return candidates


def enumerate_cnot_plans(layout: GridLayout, orientation: OrientationTracker,
                         control: int, target: int,
                         blocked: Optional[Set[Position]] = None,
                         path_finder: Optional[Callable[[Position, Position],
                                                        Optional[List[Position]]]] = None
                         ) -> List[RoutePlan]:
    """Enumerate candidate CNOT plans for every attachment pair.

    This realises the "16 paths" of Algorithm 1: up to 4 ancilla neighbours of
    the control times up to 4 of the target.  ``path_finder`` defaults to a
    blocked-aware BFS; schedulers can substitute an MST path query.
    """
    blocked = blocked or set()
    if path_finder is None:
        def path_finder(a: Position, b: Position) -> Optional[List[Position]]:
            return bfs_ancilla_path(layout, a, b, blocked)

    plans: List[RoutePlan] = []
    control_candidates = _attachment_candidates(layout, orientation, control, "Z")
    target_candidates = _attachment_candidates(layout, orientation, target, "X")
    for control_attach, control_rotation in control_candidates:
        if control_attach in blocked:
            continue
        for target_attach, target_rotation in target_candidates:
            if target_attach in blocked:
                continue
            path = path_finder(control_attach, target_attach)
            if path is None:
                continue
            rotation_anc_c = control_attach if control_rotation else None
            rotation_anc_t = target_attach if target_rotation else None
            plans.append(RoutePlan(
                control=control,
                target=target,
                path=tuple(path),
                control_rotation=control_rotation,
                target_rotation=target_rotation,
                rotation_ancilla_control=rotation_anc_c,
                rotation_ancilla_target=rotation_anc_t,
            ))
    return plans


def find_shortest_cnot_plan(layout: GridLayout, orientation: OrientationTracker,
                            control: int, target: int,
                            blocked: Optional[Set[Position]] = None,
                            costs: LatticeSurgeryCosts = DEFAULT_COSTS
                            ) -> Optional[RoutePlan]:
    """Greedy plan selection: fewest cycles, then shortest path (baseline [18])."""
    plans = enumerate_cnot_plans(layout, orientation, control, target, blocked)
    if not plans:
        return None
    return min(plans, key=lambda plan: (plan.duration(costs), len(plan.path)))
