"""Routing primitives over the ancilla fabric.

Both the static baselines and RESCQ need to turn "CNOT between qubits C and T"
into a concrete plan: which ancilla tile attaches to the control's Z edge,
which attaches to the target's X edge, which contiguous ancilla path connects
the two, and whether edge rotations are needed first (Section 3.1, Figure 4).
The *policies* differ in how they pick among candidate plans; the mechanics of
enumerating and validating plans are shared and live here.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from functools import cached_property
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..fabric import Edge, GridLayout, Position
from .backends import RoutingBackend, get_backend
from .operations import DEFAULT_COSTS, LatticeSurgeryCosts
from .orientation import OrientationTracker

__all__ = ["RoutePlan", "RoutingIndex", "bfs_ancilla_path",
           "enumerate_cnot_plans", "find_shortest_cnot_plan"]


@dataclass(frozen=True)
class RoutePlan:
    """A concrete way to execute one CNOT.

    Attributes
    ----------
    control / target:
        Program qubit indices.
    path:
        Contiguous ancilla tiles used for the merge, ordered from the tile
        attached to the control to the tile attached to the target (a single
        tile may serve both roles).
    control_rotation / target_rotation:
        Whether an edge-rotation gate is required on the respective qubit
        before the merge can happen.
    rotation_ancilla_control / rotation_ancilla_target:
        The ancilla tile used by the corresponding edge rotation (``None``
        when no rotation is needed).
    """

    control: int
    target: int
    path: Tuple[Position, ...]
    control_rotation: bool = False
    target_rotation: bool = False
    rotation_ancilla_control: Optional[Position] = None
    rotation_ancilla_target: Optional[Position] = None

    @cached_property
    def ancillas_used(self) -> Tuple[Position, ...]:
        """Every ancilla tile the plan touches (path plus rotation helpers).

        Cached: schedulers poll this every pass while the plan waits for its
        tiles, and the tuple is a pure function of the frozen fields.
        """
        extra = [pos for pos in (self.rotation_ancilla_control,
                                 self.rotation_ancilla_target)
                 if pos is not None and pos not in self.path]
        return self.path + tuple(extra)

    @property
    def num_rotations(self) -> int:
        return int(self.control_rotation) + int(self.target_rotation)

    def duration(self, costs: LatticeSurgeryCosts = DEFAULT_COSTS,
                 sequential_rotations: Optional[bool] = None) -> int:
        """Total cycles the plan occupies the data qubits.

        Edge rotations on control and target can proceed in parallel when they
        use *different* ancilla tiles; when they share the single available
        ancilla they serialise, which is how the 3+3+2 = 8-cycle CNOTs of
        Figure 5 arise.
        """
        if sequential_rotations is None:
            sequential_rotations = (
                self.control_rotation and self.target_rotation
                and self.rotation_ancilla_control == self.rotation_ancilla_target)
        rotation_cycles = 0
        if self.control_rotation and self.target_rotation:
            if sequential_rotations:
                rotation_cycles = 2 * costs.edge_rotation_cycles
            else:
                rotation_cycles = costs.edge_rotation_cycles
        elif self.control_rotation or self.target_rotation:
            rotation_cycles = costs.edge_rotation_cycles
        return rotation_cycles + costs.cnot_cycles


def bfs_ancilla_path(layout: GridLayout, start: Position, goal: Position,
                     blocked: Optional[Set[Position]] = None) -> Optional[List[Position]]:
    """Shortest path of free ancilla tiles from ``start`` to ``goal`` inclusive.

    ``blocked`` tiles cannot be used (busy ancillas).  Returns ``None`` when no
    path exists.  ``start`` and ``goal`` must themselves be ancilla tiles not
    in ``blocked``.
    """
    blocked = blocked or set()
    if not layout.is_ancilla(start) or not layout.is_ancilla(goal):
        return None
    if start in blocked or goal in blocked:
        return None
    if start == goal:
        return [start]
    parents: Dict[Position, Position] = {start: start}
    queue = deque([start])
    while queue:
        current = queue.popleft()
        for neighbor in layout.neighbors(current):
            if neighbor in parents or neighbor in blocked:
                continue
            if not layout.is_ancilla(neighbor):
                continue
            parents[neighbor] = current
            if neighbor == goal:
                path = [goal]
                while path[-1] != start:
                    path.append(parents[path[-1]])
                path.reverse()
                return path
            queue.append(neighbor)
    return None


def _attachment_candidates(layout: GridLayout, orientation: OrientationTracker,
                           qubit: int, pauli: str) -> List[Tuple[Position, bool]]:
    """Ancilla neighbours that could attach to ``qubit``'s ``pauli`` edge.

    Returns ``(ancilla_position, needs_rotation)`` pairs: a neighbour on a
    boundary already exposing ``pauli`` needs no rotation; a neighbour on the
    other boundary can still be used after one edge-rotation gate.
    """
    position = layout.data_position(qubit)
    candidates: List[Tuple[Position, bool]] = []
    for edge in Edge:
        neighbor = edge.neighbor(position)
        if not layout.is_ancilla(neighbor):
            continue
        needs_rotation = not orientation.exposes(qubit, edge, pauli)
        candidates.append((neighbor, needs_rotation))
    # Prefer rotation-free attachments.
    candidates.sort(key=lambda item: item[1])
    return candidates


def _plans_from_candidates(control: int, target: int,
                           control_candidates: Sequence[Tuple[Position, bool]],
                           target_candidates: Sequence[Tuple[Position, bool]],
                           blocked: Set[Position],
                           path_finder: Callable[[Position, Position],
                                                 Optional[List[Position]]]
                           ) -> List[RoutePlan]:
    """Build the plan list for every routable attachment pair.

    The one plan-construction loop shared by the cached
    (:class:`RoutingIndex`) and uncached (:func:`enumerate_cnot_plans`)
    enumeration paths — keep them from drifting apart.
    """
    plans: List[RoutePlan] = []
    for control_attach, control_rotation in control_candidates:
        if control_attach in blocked:
            continue
        for target_attach, target_rotation in target_candidates:
            if target_attach in blocked:
                continue
            path = path_finder(control_attach, target_attach)
            if path is None:
                continue
            plans.append(RoutePlan(
                control=control,
                target=target,
                path=tuple(path),
                control_rotation=control_rotation,
                target_rotation=target_rotation,
                rotation_ancilla_control=(control_attach
                                          if control_rotation else None),
                rotation_ancilla_target=(target_attach
                                         if target_rotation else None),
            ))
    return plans


def enumerate_cnot_plans(layout: GridLayout, orientation: OrientationTracker,
                         control: int, target: int,
                         blocked: Optional[Set[Position]] = None,
                         path_finder: Optional[Callable[[Position, Position],
                                                        Optional[List[Position]]]] = None
                         ) -> List[RoutePlan]:
    """Enumerate candidate CNOT plans for every attachment pair.

    This realises the "16 paths" of Algorithm 1: up to 4 ancilla neighbours of
    the control times up to 4 of the target.  ``path_finder`` defaults to a
    blocked-aware BFS; schedulers can substitute an MST path query.
    """
    blocked = blocked or set()
    if path_finder is None:
        def path_finder(a: Position, b: Position) -> Optional[List[Position]]:
            return bfs_ancilla_path(layout, a, b, blocked)

    return _plans_from_candidates(
        control, target,
        _attachment_candidates(layout, orientation, control, "Z"),
        _attachment_candidates(layout, orientation, target, "X"),
        blocked, path_finder)


class RoutingIndex:
    """Incremental routing over one layout: precomputed adjacency, memoised
    plan enumeration, delta invalidation.

    The index answers the same queries as :func:`bfs_ancilla_path` and
    :func:`enumerate_cnot_plans` but caches everything that is a pure function
    of the (static) layout and the qubits' edge orientations:

    * **attachment candidates** keyed on ``(qubit, pauli, flipped)``;
    * **BFS ancilla paths** keyed on ``(start, goal)`` (unblocked queries);
    * **full plan enumerations** keyed on
      ``(control, target, flipped_c, flipped_t)``.

    Layout mutations (grid compression's disable/enable) are picked up
    through :meth:`GridLayout.changes_since`: a *disable* prunes exactly the
    cached paths, plans and attachments that touch the removed tile — every
    surviving path is still a shortest path, because removing a tile can only
    remove paths — while an *enable* (which can create strictly better
    routes) or a truncated change log invalidates the whole index.

    Queries that carry a transient ``blocked`` set or an external
    ``path_finder`` (RESCQ's MST tree paths) are answered without touching
    the plan cache, but still reuse the cached attachment candidates.

    Shortest-path queries are delegated to a pluggable
    :class:`~repro.lattice.backends.RoutingBackend` (``python`` reference
    BFS, batched numpy ``vector`` BFS, or the optional compiled ``numba``
    kernel) — all byte-identical, selected via
    ``SimulationConfig(routing_backend=...)``.

    One index per (layout, backend) is typically shared via
    :meth:`for_layout`, so repeated runs (seed sweeps) reuse each other's
    routing work while equivalence tests can hold separate caches per
    backend.
    """

    def __init__(self, layout: GridLayout,
                 backend: "str | RoutingBackend" = "python") -> None:
        self.layout = layout
        self.backend: RoutingBackend = (get_backend(backend)
                                        if isinstance(backend, str)
                                        else backend)
        self._version = layout.version
        #: (start, goal) -> shortest ancilla path (or None when unreachable).
        self._paths: Dict[Tuple[Position, Position],
                          Optional[List[Position]]] = {}
        #: (qubit, pauli, flipped) -> [(ancilla, needs_rotation), ...]
        self._attachments: Dict[Tuple[int, str, bool],
                                List[Tuple[Position, bool]]] = {}
        #: (control, target, flipped_c, flipped_t) -> cached plan list.
        self._plans: Dict[Tuple[int, int, bool, bool], List[RoutePlan]] = {}
        self.queries = 0
        self.plan_cache_hits = 0

    @classmethod
    def for_layout(cls, layout: GridLayout,
                   backend: str = "python") -> "RoutingIndex":
        """The shared per-backend index attached to ``layout``."""
        indices = getattr(layout, "_routing_indices", None)
        if indices is None or any(index.layout is not layout
                                  for index in indices.values()):
            indices = {}
            layout._routing_indices = indices
        index = indices.get(backend)
        if index is None:
            index = cls(layout, backend=backend)
            indices[backend] = index
        return index

    # -- invalidation ----------------------------------------------------------

    def _invalidate_all(self) -> None:
        self._paths.clear()
        self._attachments.clear()
        self._plans.clear()

    def _sync(self) -> None:
        if self.layout.version == self._version:
            return
        changes = self.layout.changes_since(self._version)
        self._version = self.layout.version
        # Backend parent trees span the whole fabric, so any mutation (even a
        # delta-prunable disable) invalidates them; surviving cached paths in
        # self._paths are still served without re-querying the backend.
        self.backend.invalidate()
        if changes is None or any(enabled for _, _, enabled in changes):
            self._invalidate_all()
            return
        removed = {position for _, position, _ in changes}
        self._paths = {key: path for key, path in self._paths.items()
                       if path is None or not removed.intersection(path)}
        self._attachments = {
            key: candidates for key, candidates in self._attachments.items()
            if not any(pos in removed for pos, _ in candidates)}
        self._plans = {
            key: plans for key, plans in self._plans.items()
            if not any(removed.intersection(plan.ancillas_used)
                       for plan in plans)}

    # -- cached primitives ------------------------------------------------------

    def path(self, start: Position, goal: Position) -> Optional[List[Position]]:
        """Shortest unblocked ancilla path (memoised; treat as read-only)."""
        self._sync()
        key = (start, goal)
        try:
            return self._paths[key]
        except KeyError:
            path = self.backend.shortest_path(self.layout, start, goal)
            self._paths[key] = path
            return path

    def attachments(self, orientation: OrientationTracker, qubit: int,
                    pauli: str) -> List[Tuple[Position, bool]]:
        """Cached :func:`_attachment_candidates` (treat as read-only)."""
        self._sync()
        key = (qubit, pauli, orientation.is_flipped(qubit))
        try:
            return self._attachments[key]
        except KeyError:
            candidates = _attachment_candidates(self.layout, orientation,
                                                qubit, pauli)
            self._attachments[key] = candidates
            return candidates

    # -- plan enumeration -------------------------------------------------------

    def _build_plans(self, orientation: OrientationTracker, control: int,
                     target: int, blocked: Set[Position],
                     path_finder) -> List[RoutePlan]:
        return _plans_from_candidates(
            control, target,
            self.attachments(orientation, control, "Z"),
            self.attachments(orientation, target, "X"),
            blocked, path_finder)

    def enumerate_plans(self, orientation: OrientationTracker, control: int,
                        target: int,
                        blocked: Optional[Set[Position]] = None,
                        path_finder: Optional[Callable[[Position, Position],
                                                       Optional[List[Position]]]] = None
                        ) -> List[RoutePlan]:
        """Candidate CNOT plans, identical to :func:`enumerate_cnot_plans`.

        The returned list is cached for unblocked default-routing queries:
        treat it (and the plans inside) as read-only.
        """
        self._sync()
        self.queries += 1
        if path_finder is not None:
            return self._build_plans(orientation, control, target,
                                     blocked or set(), path_finder)
        if blocked:
            def blocked_finder(a: Position, b: Position):
                return self.backend.shortest_path(self.layout, a, b, blocked)
            return self._build_plans(orientation, control, target, blocked,
                                     blocked_finder)
        key = (control, target, orientation.is_flipped(control),
               orientation.is_flipped(target))
        try:
            plans = self._plans[key]
            self.plan_cache_hits += 1
            return plans
        except KeyError:
            plans = self._build_plans(orientation, control, target, set(),
                                      self.path)
            self._plans[key] = plans
            return plans


def find_shortest_cnot_plan(layout: GridLayout, orientation: OrientationTracker,
                            control: int, target: int,
                            blocked: Optional[Set[Position]] = None,
                            costs: LatticeSurgeryCosts = DEFAULT_COSTS
                            ) -> Optional[RoutePlan]:
    """Greedy plan selection: fewest cycles, then shortest path (baseline [18])."""
    plans = enumerate_cnot_plans(layout, orientation, control, target, blocked)
    if not plans:
        return None
    return min(plans, key=lambda plan: (plan.duration(costs), len(plan.path)))
