"""Pluggable shortest-path backends for the routing index.

Every backend answers the same query — the shortest path of free ancilla
tiles between two ancillas, byte-identical to the reference implementation —
but with different machinery:

* ``python`` — the reference: the original object-graph FIFO BFS
  (:func:`~repro.lattice.routing.bfs_ancilla_path`).  Always available,
  always correct; the other backends are validated against it.
* ``vector`` — batched level-synchronous BFS over the
  :class:`~repro.fabric.flat.FlatGrid` int32 neighbour table.  One numpy
  pass expands a whole frontier; full parent trees are memoised per source
  (and per layout revision) so repeated goals cost one array walk.
* ``numba`` — the same flat-array BFS compiled with ``numba.njit``
  (optional dependency, ``pip install repro[numba]``).  Import-guarded:
  selecting it without numba installed raises with an install hint.

Exactness argument (why the vector BFS is byte-identical): the reference
BFS pops nodes FIFO — i.e. in discovery order — and scans neighbours in
``Edge`` declaration order, so a node's parent is the first (discovery
order x Edge order) neighbour that reaches it.  The vector expansion
flattens ``neighbor_table[frontier]`` row-major, which is exactly that
order, and keeps the *first* occurrence of each newly discovered node
(``np.unique`` + first-index sort), so every parent assignment matches.
Parents are never reassigned, so the full parent tree computed without
early termination reconstructs the same path an early-terminating search
would have returned.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

import numpy as np

from ..fabric import GridLayout, Position
from ..fabric.flat import FlatGrid

__all__ = ["RoutingBackend", "PythonBackend", "VectorBackend", "NumbaBackend",
           "ROUTING_BACKEND_NAMES", "get_backend", "numba_available"]

ROUTING_BACKEND_NAMES = ("python", "vector", "numba")


def numba_available() -> bool:
    """True when the optional numba dependency can be imported."""
    try:
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


class RoutingBackend:
    """Strategy object answering shortest-ancilla-path queries for one layout.

    A backend instance is owned by one :class:`~repro.lattice.routing.RoutingIndex`
    and may memoise per-layout-revision state; :meth:`invalidate` is called
    whenever the layout version moves.
    """

    name = "abstract"

    def shortest_path(self, layout: GridLayout, start: Position,
                      goal: Position,
                      blocked: Optional[Set[Position]] = None
                      ) -> Optional[List[Position]]:
        raise NotImplementedError

    def invalidate(self) -> None:
        """Drop memoised state (the layout mutated)."""


class PythonBackend(RoutingBackend):
    """The pure-python reference BFS."""

    name = "python"

    def shortest_path(self, layout: GridLayout, start: Position,
                      goal: Position,
                      blocked: Optional[Set[Position]] = None
                      ) -> Optional[List[Position]]:
        from .routing import bfs_ancilla_path
        return bfs_ancilla_path(layout, start, goal, blocked)


class VectorBackend(RoutingBackend):
    """Batched numpy BFS over the flat neighbour table."""

    name = "vector"

    def __init__(self) -> None:
        #: source flat index -> full parent array for the current revision.
        self._parent_trees: Dict[int, np.ndarray] = {}
        self._tree_version: Optional[int] = None

    def invalidate(self) -> None:
        self._parent_trees.clear()
        self._tree_version = None

    # -- the BFS kernel --------------------------------------------------------

    def _compute_parents(self, flat: FlatGrid, source: int,
                         blocked_mask: Optional[np.ndarray],
                         goal: int) -> np.ndarray:
        """Parent array of the BFS from ``source`` (-1 = unreached).

        ``goal >= 0`` allows early termination once the goal is claimed
        (used for one-shot blocked queries; memoised trees pass ``-1`` so
        the tree serves every future goal).
        """
        parents = np.full(flat.size, -1, dtype=np.int32)
        parents[source] = source
        frontier = np.array([source], dtype=np.int32)
        neighbor_table = flat.route_neighbors
        # Scratch for the first-claim scatter below; every candidate cell is
        # rewritten each round, so stale entries are never read.
        winner = np.empty(flat.size, dtype=np.int32)
        while frontier.size:
            candidates = neighbor_table[frontier].ravel()
            claimants = np.repeat(frontier, 4)
            keep = candidates >= 0
            candidates = candidates[keep]
            claimants = claimants[keep]
            if blocked_mask is not None:
                keep = ~blocked_mask[candidates]
                candidates = candidates[keep]
                claimants = claimants[keep]
            keep = parents[candidates] < 0
            candidates = candidates[keep]
            claimants = claimants[keep]
            if candidates.size == 0:
                break
            # First occurrence wins, in discovery (claimant x Edge) order.
            # Double-scatter instead of np.unique (which sorts): writing the
            # claims reversed makes the earliest claim the last write, then
            # comparing each claim's slot against its own index keeps exactly
            # the first occurrence of every cell, in original order.
            order = np.arange(candidates.size, dtype=np.int32)
            winner[candidates[::-1]] = order[::-1]
            first = winner[candidates] == order
            candidates = candidates[first]
            parents[candidates] = claimants[first]
            if goal >= 0 and parents[goal] >= 0:
                break
            frontier = candidates
        return parents

    def _parents_for(self, flat: FlatGrid, source: int) -> np.ndarray:
        if self._tree_version != flat.version:
            self.invalidate()
            self._tree_version = flat.version
        parents = self._parent_trees.get(source)
        if parents is None:
            parents = self._compute_parents(flat, source, None, -1)
            self._parent_trees[source] = parents
        return parents

    # -- the query -------------------------------------------------------------

    def shortest_path(self, layout: GridLayout, start: Position,
                      goal: Position,
                      blocked: Optional[Set[Position]] = None
                      ) -> Optional[List[Position]]:
        flat = FlatGrid.for_layout(layout)
        start_flat = flat.flat_index(start)
        goal_flat = flat.flat_index(goal)
        if (start_flat < 0 or goal_flat < 0
                or not flat.ancilla_mask[start_flat]
                or not flat.ancilla_mask[goal_flat]):
            return None
        if blocked and (start in blocked or goal in blocked):
            return None
        if start_flat == goal_flat:
            return [start]
        if blocked:
            parents = self._compute_parents(flat, start_flat,
                                            flat.blocked_mask(blocked),
                                            goal_flat)
        else:
            parents = self._parents_for(flat, start_flat)
        if parents[goal_flat] < 0:
            return None
        positions = flat._positions
        path = [positions[goal_flat]]
        current = goal_flat
        while current != start_flat:
            current = int(parents[current])
            path.append(positions[current])
        path.reverse()
        return path


class NumbaBackend(VectorBackend):
    """The flat-array BFS compiled with ``numba.njit``.

    The compiled kernel is a scalar FIFO BFS over the same int32 neighbour
    table — the first-claim parent rule is the loop order itself, so its
    parent arrays are identical to both reference implementations.
    """

    name = "numba"

    def __init__(self) -> None:
        super().__init__()
        if not numba_available():
            raise RuntimeError(
                "routing_backend='numba' requires the optional numba "
                "dependency; install it with `pip install repro[numba]` "
                "or select the 'vector' backend")
        self._kernel = _build_numba_kernel()

    def _compute_parents(self, flat: FlatGrid, source: int,
                         blocked_mask: Optional[np.ndarray],
                         goal: int) -> np.ndarray:
        if blocked_mask is None:
            blocked_mask = np.zeros(0, dtype=np.bool_)
        return self._kernel(flat.route_neighbors, np.int32(source),
                            blocked_mask, np.int32(goal))


def _build_numba_kernel():
    """Compile the BFS kernel (deferred so import works without numba)."""
    from numba import njit

    @njit(cache=True)
    def bfs_parents(neighbor_table, source, blocked_mask, goal):
        size = neighbor_table.shape[0]
        parents = np.full(size, -1, dtype=np.int32)
        parents[source] = source
        queue = np.empty(size, dtype=np.int32)
        queue[0] = source
        head, tail = 0, 1
        use_blocked = blocked_mask.size > 0
        while head < tail:
            current = queue[head]
            head += 1
            for axis in range(4):
                neighbor = neighbor_table[current, axis]
                if neighbor < 0 or parents[neighbor] >= 0:
                    continue
                if use_blocked and blocked_mask[neighbor]:
                    continue
                parents[neighbor] = current
                if neighbor == goal:
                    return parents
                queue[tail] = neighbor
                tail += 1
        return parents

    return bfs_parents


_BACKEND_CLASSES = {
    "python": PythonBackend,
    "vector": VectorBackend,
    "numba": NumbaBackend,
}


def get_backend(name: str) -> RoutingBackend:
    """Instantiate the named routing backend (raises on unknown names)."""
    try:
        backend_cls = _BACKEND_CLASSES[name]
    except KeyError:
        raise ValueError(
            f"unknown routing backend {name!r}; "
            f"expected one of {ROUTING_BACKEND_NAMES}") from None
    return backend_cls()


#: Type alias documented for policy path_finder parameters.
PathFinder = Callable[[Position, Position], Optional[List[Position]]]
