"""Tracking which Pauli boundary each data patch currently exposes.

In the default orientation a data patch exposes its **Z** edge on the
horizontal boundaries (NORTH/SOUTH) and its **X** edge on the vertical
boundaries (EAST/WEST) — Figure 2.  An edge-rotation gate (3 cycles) swaps
the two, which the scheduler inserts when a CNOT or injection needs an edge
that currently faces the wrong way (Figure 4).
"""

from __future__ import annotations

from typing import Dict, List

from ..fabric import Edge, GridLayout, Position

__all__ = ["OrientationTracker"]


class OrientationTracker:
    """Runtime record of each data qubit's boundary orientation."""

    def __init__(self, num_qubits: int) -> None:
        self.num_qubits = num_qubits
        self._flipped: Dict[int, bool] = {qubit: False for qubit in range(num_qubits)}

    def is_flipped(self, qubit: int) -> bool:
        """True when the qubit's Z edge currently faces EAST/WEST."""
        return self._flipped[qubit]

    def rotate(self, qubit: int) -> None:
        """Apply an edge rotation: swap which boundaries expose Z and X."""
        self._flipped[qubit] = not self._flipped[qubit]

    def reset(self, qubit: int) -> None:
        self._flipped[qubit] = False

    # -- queries -------------------------------------------------------------------

    def edge_pauli(self, qubit: int, edge: Edge) -> str:
        """Pauli ('Z' or 'X') exposed by ``qubit`` on boundary ``edge``."""
        horizontal_is_z = not self._flipped[qubit]
        if edge.is_horizontal_boundary:
            return "Z" if horizontal_is_z else "X"
        return "X" if horizontal_is_z else "Z"

    def exposes(self, qubit: int, edge: Edge, pauli: str) -> bool:
        """True when boundary ``edge`` of ``qubit`` exposes ``pauli``."""
        return self.edge_pauli(qubit, edge) == pauli

    def edges_exposing(self, qubit: int, pauli: str) -> List[Edge]:
        """The two boundaries of ``qubit`` that expose ``pauli``."""
        return [edge for edge in Edge if self.exposes(qubit, edge, pauli)]

    def neighbors_on_pauli_edge(self, layout: GridLayout, qubit: int,
                                pauli: str) -> List[Position]:
        """Ancilla tiles adjacent to the boundaries of ``qubit`` exposing ``pauli``."""
        position = layout.data_position(qubit)
        result = []
        for edge in self.edges_exposing(qubit, pauli):
            neighbor = edge.neighbor(position)
            if layout.is_ancilla(neighbor):
                result.append(neighbor)
        return result
