"""Lattice-surgery operation cost model (Sections 2 and 3, Table 1).

All durations are expressed in *lattice-surgery cycles*; one cycle is ``d``
rounds of syndrome measurement (about 1 microsecond per round for
superconducting hardware, so a cycle is ~``d`` us — the unit conversions used
when discussing classical control overhead live in
:mod:`repro.scheduling.mst`).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LatticeSurgeryCosts", "DEFAULT_COSTS"]


@dataclass(frozen=True)
class LatticeSurgeryCosts:
    """Cycle costs of the logical operations the schedulers issue.

    Attributes
    ----------
    cnot_cycles:
        A lattice-surgery CNOT is a ZZ merge followed by an XX merge/split
        (Figure 2): 2 cycles regardless of distance, as long as the ancilla
        channel is contiguous.
    edge_rotation_cycles:
        Rotating a patch to expose the other Pauli boundary takes 3 cycles and
        one free neighbouring ancilla (Section 3.1, Figure 4).
    hadamard_cycles:
        A logical Hadamard is realised by a patch deformation/rotation of the
        same cost as an edge rotation.
    zz_injection_cycles / cnot_injection_cycles:
        Consuming a prepared |m_theta> via the ZZ or CNOT strategy (Table 1).
    measurement_cycles:
        Destructive logical measurement in the X or Z basis (absorbed into the
        following operation in this model, hence 0).
    """

    cnot_cycles: int = 2
    edge_rotation_cycles: int = 3
    hadamard_cycles: int = 3
    zz_injection_cycles: int = 1
    cnot_injection_cycles: int = 2
    measurement_cycles: int = 0

    def injection_cycles(self, strategy_name: str) -> int:
        """Injection cost by strategy name ('zz' or 'cnot')."""
        if strategy_name == "zz":
            return self.zz_injection_cycles
        if strategy_name == "cnot":
            return self.cnot_injection_cycles
        raise ValueError(f"unknown injection strategy {strategy_name!r}")


#: The costs used throughout the paper's evaluation.
DEFAULT_COSTS = LatticeSurgeryCosts()
