"""Lattice-surgery operation costs, edge orientation and routing primitives."""

from .backends import (
    ROUTING_BACKEND_NAMES,
    RoutingBackend,
    get_backend,
    numba_available,
)
from .operations import DEFAULT_COSTS, LatticeSurgeryCosts
from .orientation import OrientationTracker
from .routing import (
    RoutePlan,
    RoutingIndex,
    bfs_ancilla_path,
    enumerate_cnot_plans,
    find_shortest_cnot_plan,
)

__all__ = [
    "LatticeSurgeryCosts",
    "DEFAULT_COSTS",
    "OrientationTracker",
    "ROUTING_BACKEND_NAMES",
    "RoutingBackend",
    "RoutePlan",
    "RoutingIndex",
    "bfs_ancilla_path",
    "enumerate_cnot_plans",
    "find_shortest_cnot_plan",
    "get_backend",
    "numba_available",
]
