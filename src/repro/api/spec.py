"""ExperimentSpec: a declarative, serializable description of an experiment.

A spec names *what* to run — benchmarks x schedulers x a
:class:`~repro.sim.config.SimulationConfig` parameter grid x seeds x layout —
and nothing about *how*: execution strategy (serial/parallel/cached) stays
with the :class:`~repro.exec.engine.ExecutionEngine`.  Specs round-trip
through plain dicts and JSON, so an experiment is a file you commit, diff and
re-run rather than a bespoke script::

    {
      "name": "fig10-headline",
      "benchmarks": ["VQE_n13"],
      "schedulers": ["greedy", "autobraid", "rescq"],
      "config": {"distance": 7, "physical_error_rate": 1e-4, "mst_period": 25},
      "seeds": 3
    }

``grid`` maps config fields (or ``"compression"``) to value lists; the spec
expands to the cartesian product benchmarks x grid points x schedulers x
seeds as a flat :class:`~repro.exec.jobs.SimJob` plan, each job tagged with
its grid-point values so the resulting
:class:`~repro.api.resultset.ResultSet` can group and pivot on them.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple, Union

from ..canonical import canonical_dumps
from ..scheduling import DEFAULT_SCHEDULER_NAMES
from ..sim.config import SimulationConfig

__all__ = ["ExperimentSpec", "SpecValidationError"]


class SpecValidationError(ValueError):
    """An :class:`ExperimentSpec` does not describe a runnable experiment."""


#: SimulationConfig fields a spec may set in ``config`` or sweep in ``grid``
#: (the enum/cost-table fields are excluded: they are not plain JSON values).
_CONFIG_FIELDS = tuple(
    f.name for f in dataclasses.fields(SimulationConfig)
    if f.name not in ("injection_strategy", "baseline_injection_strategy",
                      "costs"))

#: Grid keys that drive the layout instead of the config.
_LAYOUT_KEYS = ("compression",)


def _canonical_benchmark(name: str) -> str:
    """Normalise ``scenario:...`` references to their canonical spelling.

    ``scenario:clifford_t:depth=8,n=6`` and ``scenario:clifford_t:n=6,depth=8``
    build byte-identical circuits; canonicalising at spec construction makes
    them share one result label and one cache fingerprint.  Anything that
    fails to parse (including non-scenario names) is kept verbatim so
    :meth:`ExperimentSpec.validate` reports it with the resolver's message.
    """
    if not (isinstance(name, str) and name.startswith("scenario:")):
        return name
    try:
        from ..workloads.scenarios import parse_scenario_name, scenario_name
        family, params = parse_scenario_name(name)
        return scenario_name(family.name, **params)
    except Exception:
        return name


def _as_value_tuple(values) -> Tuple:
    if isinstance(values, (str, bytes)) or not isinstance(
            values, (list, tuple, range)):
        raise SpecValidationError(
            f"grid values must be a list of numbers, got {values!r}")
    return tuple(values)


@dataclass(frozen=True)
class ExperimentSpec:
    """Frozen description of benchmarks x schedulers x grid x seeds x layout.

    Attributes
    ----------
    benchmarks:
        Registered benchmark names (see ``rescq list``).
    schedulers:
        Registered scheduler names; defaults to the paper's three.
    name:
        Label used in titles and file names.
    config:
        Base :class:`SimulationConfig` overrides applied to every point,
        e.g. ``{"distance": 9}``.
    grid:
        Parameter -> list of values, swept as a cartesian product.  Keys are
        config fields (``distance``, ``physical_error_rate``, ``mst_period``,
        ...) or ``compression`` (layout co-design).
    seeds:
        Either a repetition count (seeds ``0..n-1``) or an explicit seed list.
    layout:
        Registered layout name (``star``, ``compact``, ``compressed``).
    compression:
        Baseline grid compression applied when ``compression`` is not swept.
    layout_seed:
        Seed for stochastic layout compression (the Figure 14 sweep uses 13).
    """

    benchmarks: Tuple[str, ...]
    schedulers: Tuple[str, ...] = DEFAULT_SCHEDULER_NAMES
    name: str = "experiment"
    config: Dict[str, object] = field(default_factory=dict)
    grid: Dict[str, Tuple] = field(default_factory=dict)
    seeds: Union[int, Tuple[int, ...]] = (0, 1, 2)
    layout: str = "star"
    compression: float = 0.0
    layout_seed: int = 0

    def __post_init__(self) -> None:
        # Normalise collection fields so equality (and hence JSON round-trip
        # equality) does not depend on list-vs-tuple spelling.
        if isinstance(self.benchmarks, str):
            raise SpecValidationError(
                "benchmarks must be a list of names, not a single string")
        # Canonicalise, then drop duplicates order-preservingly: two scenario
        # spellings may converge to one canonical name, and running (or
        # rendering) the same benchmark twice is never intended.
        names = [_canonical_benchmark(name) for name in self.benchmarks]
        try:
            names = list(dict.fromkeys(names))
        except TypeError:
            pass  # unhashable entries; validate() rejects them actionably
        object.__setattr__(self, "benchmarks", tuple(names))
        object.__setattr__(self, "schedulers", tuple(self.schedulers))
        object.__setattr__(self, "config", dict(self.config))
        object.__setattr__(
            self, "grid",
            {str(key): _as_value_tuple(values)
             for key, values in dict(self.grid).items()})
        if isinstance(self.seeds, bool) or not isinstance(
                self.seeds, (int, list, tuple, range)):
            raise SpecValidationError(
                f"seeds must be an integer count or a list of integers, "
                f"got {self.seeds!r}")
        if isinstance(self.seeds, int):
            object.__setattr__(self, "seeds", tuple(range(self.seeds)))
        else:
            object.__setattr__(self, "seeds", tuple(self.seeds))

    # -- validation ------------------------------------------------------------

    def validate(self) -> "ExperimentSpec":
        """Check every name resolves and every value is usable.

        Raises :class:`SpecValidationError` with an actionable message;
        returns ``self`` so calls chain (``spec.validate().expand()``).
        """
        from ..workloads.registry import resolve_benchmark
        from .registries import BENCHMARKS, LAYOUTS, SCHEDULERS
        if not self.benchmarks:
            raise SpecValidationError(
                "spec lists no benchmarks; add at least one of "
                f"{BENCHMARKS.names()}")
        if not self.schedulers:
            raise SpecValidationError(
                "spec lists no schedulers; add at least one of "
                f"{SCHEDULERS.names()}")
        for name in self.benchmarks:
            if not isinstance(name, str):
                raise SpecValidationError(
                    f"benchmark references must be strings (a registered "
                    f"name, a scenario:... name or a .qasm path), "
                    f"got {name!r}")
            # Registry names, scenario:... generator names and .qasm paths
            # all resolve here; resolution errors (unknown name, malformed
            # scenario parameters, unreadable/unparseable QASM) surface as
            # spec validation errors with the resolver's actionable message.
            try:
                resolve_benchmark(name)
            except (KeyError, ValueError) as exc:
                raise SpecValidationError(str(exc)) from None
        for kind, names, registry in (("scheduler", self.schedulers, SCHEDULERS),
                                      ("layout", (self.layout,), LAYOUTS)):
            for name in names:
                if name not in registry:
                    raise SpecValidationError(
                        f"unknown {kind} {name!r}; known {kind}s: "
                        f"{registry.names()}")
        for key in list(self.config) + list(self.grid):
            if key not in _CONFIG_FIELDS and key not in _LAYOUT_KEYS:
                raise SpecValidationError(
                    f"unknown parameter {key!r}; config/grid keys must be "
                    f"SimulationConfig fields {sorted(_CONFIG_FIELDS)} or "
                    f"layout keys {sorted(_LAYOUT_KEYS)}")
        for key, values in self.grid.items():
            if not values:
                raise SpecValidationError(
                    f"grid axis {key!r} has no values; give it a non-empty "
                    f"list or drop it")
            if key in self.config:
                raise SpecValidationError(
                    f"parameter {key!r} appears in both config and grid; "
                    f"fix it in config or sweep it in grid, not both")
            for value in values:
                if isinstance(value, bool) or not isinstance(value,
                                                             (int, float)):
                    raise SpecValidationError(
                        f"grid axis {key!r} has non-numeric value {value!r}; "
                        f"grid values must be numbers")
        if not self.seeds:
            raise SpecValidationError(
                "spec has no seeds; use an integer count or a list of seeds")
        for seed in self.seeds:
            if not isinstance(seed, int) or isinstance(seed, bool):
                raise SpecValidationError(
                    f"seeds must be integers, got {seed!r}")
        if isinstance(self.compression, bool) or not isinstance(
                self.compression, (int, float)):
            raise SpecValidationError(
                f"compression must be a number, got {self.compression!r}")
        if not 0.0 <= float(self.compression) <= 1.0:
            raise SpecValidationError(
                f"compression must be within [0, 1], got {self.compression}")
        if isinstance(self.layout_seed, bool) or not isinstance(
                self.layout_seed, int):
            raise SpecValidationError(
                f"layout_seed must be an integer, got {self.layout_seed!r}")
        config_compression = self.config.get("compression")
        if config_compression is not None and (
                isinstance(config_compression, bool)
                or not isinstance(config_compression, (int, float))):
            raise SpecValidationError(
                f"compression must be a number, got {config_compression!r}")
        try:
            self.base_config()
        except (TypeError, ValueError) as exc:
            raise SpecValidationError(
                f"config overrides {self.config!r} do not form a valid "
                f"SimulationConfig: {exc}") from None
        return self

    # -- serialisation ---------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form; ``from_dict`` inverts it exactly."""
        return {
            "name": self.name,
            "benchmarks": list(self.benchmarks),
            "schedulers": list(self.schedulers),
            "config": dict(self.config),
            "grid": {key: list(values) for key, values in self.grid.items()},
            "seeds": list(self.seeds),
            "layout": self.layout,
            "compression": self.compression,
            "layout_seed": self.layout_seed,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ExperimentSpec":
        """Build a spec from plain data (inverse of :meth:`to_dict`).

        Unknown keys are rejected with the list of accepted ones, so typos in
        spec files fail loudly instead of silently running the defaults.
        """
        if not isinstance(payload, Mapping):
            raise SpecValidationError(
                f"spec payload must be a JSON object, got {type(payload).__name__}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise SpecValidationError(
                f"unknown spec keys {unknown}; accepted keys: {sorted(known)}")
        if "benchmarks" not in payload:
            raise SpecValidationError("spec is missing the 'benchmarks' key")
        return cls(**dict(payload))

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Canonical JSON form: sorted keys, stable floats, NaN rejected.

        Two equal specs always serialise to identical bytes (and hence the
        same :meth:`content_hash`), which is what makes spec files diffable
        artifacts and cache keys stable across hosts.
        """
        return canonical_dumps(self.to_dict(), indent=indent)

    def content_hash(self) -> str:
        """SHA-256 over the spec's canonical JSON — its cross-host identity."""
        from ..canonical import content_hash
        return content_hash(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecValidationError(f"spec is not valid JSON: {exc}") from None
        return cls.from_dict(payload)

    @classmethod
    def load(cls, path) -> "ExperimentSpec":
        """Read a spec from a JSON file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def save(self, path) -> None:
        """Write the spec to a JSON file (the committable artifact)."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")

    # -- expansion -------------------------------------------------------------

    def base_config(self) -> SimulationConfig:
        """The :class:`SimulationConfig` before grid overrides."""
        overrides = {key: value for key, value in self.config.items()
                     if key not in _LAYOUT_KEYS}
        return SimulationConfig(**overrides)

    def grid_points(self) -> List[Dict[str, object]]:
        """Cartesian product of the grid axes (one dict per point).

        Axes expand in insertion order, later axes fastest — the nesting
        order of the legacy nested-loop sweeps.  A grid-less spec yields one
        empty point.
        """
        if not self.grid:
            return [{}]
        keys = list(self.grid)
        return [dict(zip(keys, values))
                for values in itertools.product(*(self.grid[key]
                                                  for key in keys))]

    def config_for(self, point: Mapping[str, object]) -> SimulationConfig:
        """The simulation config at one grid point.

        Values of parameters that back a registered sweep axis are cast
        through the axis's value type, so JSON numbers (always floats) land
        on the exact configs — and hence cache fingerprints — the legacy
        integer-typed sweeps produce.
        """
        from .axes import AXIS_REGISTRY
        casts = {axis.parameter: axis.value_type
                 for _name, axis in AXIS_REGISTRY.items()}
        base = self.base_config()
        overrides = {}
        for key, value in point.items():
            if key in _LAYOUT_KEYS:
                continue
            cast = casts.get(key)
            overrides[key] = cast(value) if cast is not None else value
        return base.with_updates(**overrides) if overrides else base

    def compression_for(self, point: Mapping[str, object]) -> float:
        value = point.get("compression",
                          self.config.get("compression", self.compression))
        return float(value)

    def job_count(self) -> int:
        """Number of jobs :meth:`expand` will plan (without planning them)."""
        points = 1
        for values in self.grid.values():
            points *= len(values)
        return (len(self.benchmarks) * points * len(self.schedulers)
                * len(self.seeds))

    def expand(self) -> List["SimJob"]:
        """Expand the spec into its flat, ordered job plan.

        Jobs are emitted benchmark-major, then grid point, then scheduler
        (spec order), then seed — the order every executor preserves, so a
        :class:`~repro.api.resultset.ResultSet` built from (plan, results)
        slices back positionally.  Each job is tagged with its grid-point
        values.
        """
        from ..exec.jobs import plan_jobs
        from ..workloads.registry import resolve_benchmark
        from .registries import LAYOUTS, SCHEDULERS
        self.validate()
        schedulers = [SCHEDULERS.create(name) for name in self.schedulers]
        jobs: List["SimJob"] = []
        for benchmark in self.benchmarks:
            circuit = resolve_benchmark(benchmark).build()
            for point in self.grid_points():
                config = self.config_for(point)
                layout = LAYOUTS.create(
                    self.layout, circuit,
                    compression=self.compression_for(point),
                    seed=self.layout_seed)
                jobs.extend(plan_jobs(schedulers, circuit, config, layout,
                                      self.seeds, tags=point))
        return jobs

    def describe(self) -> str:
        grid = (" x ".join(f"{key}[{len(values)}]"
                           for key, values in self.grid.items())
                or "single point")
        return (f"{self.name}: {len(self.benchmarks)} benchmark(s) x "
                f"{grid} x {len(self.schedulers)} scheduler(s) x "
                f"{len(self.seeds)} seed(s) = {self.job_count()} jobs")
