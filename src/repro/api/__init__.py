"""repro.api — the declarative experiment layer.

This package turns "run an experiment" from a bespoke function call into a
serializable artifact plus a handful of pluggable registries:

* :mod:`repro.api.registry` — the generic named-registry utility
  (:class:`Registry`, ``@register`` decorators, duplicate-name errors);
* :mod:`repro.api.registries` — the concrete registries: schedulers,
  benchmarks, layouts, and sweep axes;
* :mod:`repro.api.axes` — :class:`SweepAxis`, the declarative description of
  one sensitivity-sweep parameter (Figures 11-14);
* :mod:`repro.api.spec` — :class:`ExperimentSpec`, a frozen declarative
  description of benchmarks x schedulers x a config grid x seeds x layout,
  with JSON round-trip and expansion to :class:`~repro.exec.SimJob` plans;
* :mod:`repro.api.resultset` — :class:`ResultSet`, the structured container
  every experiment returns (``filter`` / ``group_by`` / ``aggregate`` /
  ``to_csv`` / ``to_json``);
* :mod:`repro.api.facade` — :func:`run_experiment` and the engine builder
  shared by the CLI and the benchmark harnesses;
* :mod:`repro.api.backends` — :func:`available_backends`, the introspection
  surface over the pluggable routing/kernel backend families (name, kind,
  availability, install hint) behind ``rescq backends``;
* :mod:`repro.api.envelope` — the ``rescq serve`` wire format:
  :class:`SubmissionEnvelope` (a spec plus delivery options),
  :class:`JobStatus` and :class:`SubmissionReport`.

Quickstart::

    from repro.api import ExperimentSpec, run_experiment

    spec = ExperimentSpec(benchmarks=("qft_n18",),
                          schedulers=("autobraid", "rescq"),
                          seeds=3)
    results = run_experiment(spec)
    for row in results.aggregate("scheduler"):
        print(row)

    spec.to_json()                       # -> shareable JSON artifact
    ExperimentSpec.from_json(spec.to_json()) == spec   # True

Attribute access is lazy (PEP 562) so that low-level packages can import
:mod:`repro.api.registry` while they are still initialising without dragging
the whole experiment layer (and hence an import cycle) in behind it.
"""

from typing import TYPE_CHECKING

_EXPORTS = {
    "BackendInfo": "backends",
    "available_backends": "backends",
    "Registry": "registry",
    "RegistryError": "registry",
    "DuplicateEntryError": "registry",
    "UnknownEntryError": "registry",
    "SCHEDULERS": "registries",
    "BENCHMARKS": "registries",
    "LAYOUTS": "registries",
    "SWEEP_AXES": "registries",
    "SweepAxis": "axes",
    "ExperimentSpec": "spec",
    "SpecValidationError": "spec",
    "ResultRow": "resultset",
    "ResultSet": "resultset",
    "run_experiment": "facade",
    "build_engine": "facade",
    "render_experiment": "facade",
    "EnvelopeError": "envelope",
    "JobStatus": "envelope",
    "SubmissionEnvelope": "envelope",
    "SubmissionReport": "envelope",
}

__all__ = sorted(_EXPORTS)

if TYPE_CHECKING:  # pragma: no cover - static importers only
    from .axes import SweepAxis
    from .backends import BackendInfo, available_backends
    from .envelope import (EnvelopeError, JobStatus, SubmissionEnvelope,
                           SubmissionReport)
    from .facade import build_engine, render_experiment, run_experiment
    from .registries import BENCHMARKS, LAYOUTS, SCHEDULERS, SWEEP_AXES
    from .registry import (DuplicateEntryError, Registry, RegistryError,
                           UnknownEntryError)
    from .resultset import ResultRow, ResultSet
    from .spec import ExperimentSpec, SpecValidationError


def __getattr__(name):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib
    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
