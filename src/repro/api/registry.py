"""A generic named-entry registry with decorator registration.

Every pluggable family in the reproduction — schedulers, benchmarks, layouts,
sweep axes — is a mapping from a short stable name to a factory or spec.
:class:`Registry` is the one implementation behind all of them: entries are
registered once (duplicates are an error, so two plugins cannot silently
shadow each other), looked up by exact name with an actionable error listing
the known names, and enumerated in sorted order so every listing is
deterministic.

This module is intentionally dependency-free (stdlib only): low-level
packages such as :mod:`repro.scheduling` and :mod:`repro.workloads` import it
to register their entries without pulling in the rest of :mod:`repro.api`.
"""

from __future__ import annotations

from typing import Dict, Generic, Iterator, List, Optional, Tuple, TypeVar

__all__ = ["Registry", "RegistryError", "DuplicateEntryError",
           "UnknownEntryError"]

T = TypeVar("T")


class RegistryError(Exception):
    """Base class for registry failures."""


class DuplicateEntryError(RegistryError, ValueError):
    """A name was registered twice in the same registry."""


class UnknownEntryError(RegistryError, KeyError):
    """A name was looked up that no entry was registered under.

    Subclasses :class:`KeyError` so callers that guarded the pre-registry
    dict lookups (``except KeyError``) keep working.
    """

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.message = message

    def __str__(self) -> str:  # KeyError quotes its arg; we want the message.
        return self.message


class Registry(Generic[T]):
    """A named collection of entries of one kind.

    Parameters
    ----------
    kind:
        Human-readable singular noun for error messages, e.g. ``"scheduler"``.

    Usage::

        SCHEDULERS = Registry("scheduler")

        @SCHEDULERS.register("rescq")
        class RescqScheduler(Scheduler):
            ...

        SCHEDULERS.get("rescq")     # -> RescqScheduler
        SCHEDULERS.names()          # -> sorted names
        SCHEDULERS.create("rescq")  # -> RescqScheduler()
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, T] = {}

    # -- registration ----------------------------------------------------------

    def register(self, name: str, entry: Optional[T] = None):
        """Register ``entry`` under ``name``.

        With one argument acts as a decorator (``@registry.register("x")``);
        with two it registers directly and returns the entry.  Registering a
        name twice raises :class:`DuplicateEntryError`.
        """
        if not isinstance(name, str) or not name:
            raise RegistryError(
                f"{self.kind} registry names must be non-empty strings, "
                f"got {name!r}")
        if entry is not None:
            return self._add(name, entry)

        def decorator(obj: T) -> T:
            return self._add(name, obj)
        return decorator

    def _add(self, name: str, entry: T) -> T:
        if name in self._entries:
            raise DuplicateEntryError(
                f"duplicate {self.kind} name {name!r}: already registered as "
                f"{self._entries[name]!r}")
        self._entries[name] = entry
        return entry

    # -- lookup ----------------------------------------------------------------

    def get(self, name: str) -> T:
        """Return the entry registered under ``name``.

        Raises :class:`UnknownEntryError` (a :class:`KeyError`) naming the
        known entries when the name is missing.
        """
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownEntryError(
                f"unknown {self.kind} {name!r}; known: {self.names()}"
            ) from None

    def create(self, name: str, *args, **kwargs):
        """Call the entry registered under ``name`` (for factory registries)."""
        factory = self.get(name)
        return factory(*args, **kwargs)  # type: ignore[operator]

    def names(self) -> List[str]:
        """All registered names, sorted (deterministic listings)."""
        return sorted(self._entries)

    def items(self) -> List[Tuple[str, T]]:
        """(name, entry) pairs sorted by name."""
        return [(name, self._entries[name]) for name in self.names()]

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, entries={self.names()})"
