"""One introspection surface over every pluggable backend family.

The simulator has two backend axes, both selected through
:class:`~repro.sim.config.SimulationConfig` and both guaranteeing
byte-identical simulated results:

* **routing** (``routing_backend``) — the shortest-path machinery behind
  the routing index (:mod:`repro.lattice.backends`);
* **kernel** (``kernel_backend``) — the event engine driving the
  discrete-event loop (:mod:`repro.kernel.engines`).

:func:`available_backends` answers "what can I select here, and will it
work on this machine?" without making callers import the engine modules —
the CLI's ``rescq backends`` verb and the benchmark harnesses both render
from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

__all__ = ["BackendInfo", "available_backends"]

#: pip extra that provides the optional compiled backends.
_NUMBA_HINT = "pip install repro[numba]"

_DESCRIPTIONS = {
    ("routing", "python"): "reference per-tile BFS",
    ("routing", "vector"): "batched numpy BFS over the flat grid",
    ("routing", "numba"): "compiled BFS kernel",
    ("kernel", "python"): "reference per-event heap dispatch",
    ("kernel", "batched"): "cycle-bucketed boundary drain, batched dispatch",
    ("kernel", "numba"): "batched engine with a compiled drain segmentation",
}


@dataclass(frozen=True)
class BackendInfo:
    """One selectable backend: identity, availability and how to get it."""

    name: str
    #: Which config axis selects it: ``"routing"`` or ``"kernel"``.
    kind: str
    #: Importable right now on this interpreter.
    available: bool
    #: The :class:`~repro.sim.config.SimulationConfig` default for its kind.
    default: bool
    description: str
    #: How to make an unavailable backend available (``None`` when it is).
    install_hint: Optional[str] = None


def available_backends(kind: Optional[str] = None) -> List[BackendInfo]:
    """Describe every selectable backend, optionally filtered by ``kind``.

    Always lists unavailable backends too (with an ``install_hint``) so a
    caller can tell "unknown name" apart from "known but missing extra".
    """
    if kind not in (None, "routing", "kernel"):
        raise ValueError(
            f"kind must be 'routing', 'kernel' or None, got {kind!r}")
    from ..kernel.engines import KERNEL_BACKEND_NAMES, kernel_numba_available
    from ..lattice import ROUTING_BACKEND_NAMES, numba_available
    from ..sim.config import SimulationConfig

    defaults = {
        "routing": SimulationConfig.routing_backend,
        "kernel": SimulationConfig.kernel_backend,
    }
    families = {
        "routing": (ROUTING_BACKEND_NAMES, numba_available),
        "kernel": (KERNEL_BACKEND_NAMES, kernel_numba_available),
    }
    infos: List[BackendInfo] = []
    for family, (names, numba_ok) in families.items():
        if kind is not None and kind != family:
            continue
        for name in names:
            available = name != "numba" or numba_ok()
            infos.append(BackendInfo(
                name=name,
                kind=family,
                available=available,
                default=name == defaults[family],
                description=_DESCRIPTIONS[(family, name)],
                install_hint=None if available else _NUMBA_HINT,
            ))
    return infos
