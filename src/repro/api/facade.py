"""run_experiment and friends: the one door every experiment goes through.

``spec -> jobs -> engine -> ResultSet`` is the whole pipeline; the CLI
subcommands, the benchmark harnesses and user scripts differ only in how they
build the spec and the engine.
"""

from __future__ import annotations

from typing import List, Optional

from ..exec.cache import open_cache_backend
from ..exec.engine import ExecutionEngine
from ..exec.executors import ParallelExecutor, SerialExecutor
from .backends import BackendInfo, available_backends
from .resultset import ResultSet
from .spec import ExperimentSpec

__all__ = ["run_experiment", "build_engine", "render_experiment",
           "BackendInfo", "available_backends"]


def build_engine(jobs: int = 1, cache: Optional[str] = None,
                 ) -> ExecutionEngine:
    """Build an execution engine from the common (jobs, cache) knobs.

    ``jobs > 1`` fans simulation jobs out over that many worker processes
    (``0`` means one per CPU); ``cache`` memoises finished jobs on disk —
    a directory path for the file backend, or a ``*.sqlite`` path /
    ``sqlite:`` spec for the SQLite backend (see
    :func:`repro.exec.open_cache_backend`).  This is the builder behind the
    CLI's ``--jobs``/``--cache`` flags and the benchmark harnesses'
    ``RESCQ_JOBS``/``RESCQ_CACHE`` variables.
    """
    if jobs < 0:
        raise ValueError("jobs must be >= 0 (0 = one worker per CPU)")
    if jobs == 1:
        executor = SerialExecutor()
    else:
        executor = ParallelExecutor(max_workers=jobs if jobs > 0 else None)
    return ExecutionEngine(executor=executor,
                           cache=open_cache_backend(cache) if cache else None)


def run_experiment(spec: ExperimentSpec,
                   engine: Optional[ExecutionEngine] = None) -> ResultSet:
    """Validate, expand and execute ``spec``; return its :class:`ResultSet`.

    The job plan runs through a single
    :meth:`~repro.exec.engine.ExecutionEngine.run` call, so a parallel or
    cached engine accelerates the whole grid at once.  Output is identical
    for every engine (executors preserve job order; every job is
    independently seeded).
    """
    engine = engine if engine is not None else ExecutionEngine()
    jobs = spec.expand()
    results = engine.run(jobs)
    return ResultSet.from_jobs(jobs, results)


def render_experiment(spec: ExperimentSpec, results: ResultSet) -> str:
    """Render a result set the way the ``rescq`` CLI prints it.

    Grid-less specs print one comparison table per benchmark — byte-identical
    to the legacy ``rescq run`` table for the same point.  Specs with one
    grid axis print the matching sweep table; wider grids print the generic
    grid table.
    """
    from ..analysis.report import format_comparison, format_table
    blocks: List[str] = []
    parameters = [key for key in spec.grid]
    for benchmark in spec.benchmarks:
        subset = results.filter(benchmark=benchmark)
        if not parameters:
            config = spec.base_config()
            blocks.append(format_comparison(
                subset.comparison_rows(),
                title=f"{benchmark} ({config.describe()})"))
        elif len(parameters) == 1:
            from .axes import AXIS_REGISTRY
            # Title by axis name ("error-rate"), not config field
            # ("physical_error_rate"), matching the sweep subcommand.
            kind = next((axis.name for _name, axis in AXIS_REGISTRY.items()
                         if axis.parameter == parameters[0]), parameters[0])
            axis_rows = subset.sweep_rows(parameters[0])
            blocks.append(format_table(
                [row.as_dict() for row in axis_rows],
                title=f"{kind} sweep for {benchmark}"))
        else:
            blocks.append(format_table(
                subset.grid_rows(parameters),
                title=f"{spec.name}: {benchmark} grid"))
    return "\n".join(blocks)
