"""ResultSet: the structured container every experiment returns.

A :class:`ResultSet` wraps the flat list of
:class:`~repro.sim.results.SimulationResult` rows an
:class:`~repro.exec.engine.ExecutionEngine` run produced, with each row
carrying its experiment coordinates (benchmark, scheduler, seed, and any
grid-point parameters the planner tagged the job with).  It is the one
aggregation path in the reproduction: the legacy
:func:`~repro.sim.runner.aggregate_comparison` and the sweep folds are both
thin views over :meth:`ResultSet.comparison_rows` / :meth:`ResultSet.sweep_rows`,
so every caller slices, groups and averages results the same way.

Typical use::

    results = run_experiment(spec)
    results.filter(scheduler="rescq").mean_cycles()
    results.group_by("benchmark")
    results.aggregate("benchmark", "scheduler")   # -> list of summary dicts
    results.to_csv()                              # -> spreadsheet-ready text
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..sim.results import SimulationResult, aggregate_results
from ..sim.runner import ComparisonRow

__all__ = ["ResultRow", "ResultSet"]


@dataclass(frozen=True)
class ResultRow:
    """One simulation result plus the experiment coordinates that produced it."""

    benchmark: str
    scheduler: str
    seed: int
    #: Grid-point parameter values (empty for plain comparisons).
    params: Dict[str, object] = field(default_factory=dict)
    result: Optional[SimulationResult] = None

    @property
    def total_cycles(self) -> int:
        return self.result.total_cycles if self.result is not None else 0

    @property
    def idle_fraction(self) -> float:
        return self.result.idle_fraction() if self.result is not None else 0.0

    def value(self, key: str):
        """Look up a field or grid parameter by name (for filter/group keys)."""
        if key in ("benchmark", "scheduler", "seed"):
            return getattr(self, key)
        if key == "total_cycles":
            return self.total_cycles
        if key == "idle_fraction":
            return self.idle_fraction
        if key in self.params:
            return self.params[key]
        raise KeyError(
            f"unknown result field {key!r}; row fields are benchmark, "
            f"scheduler, seed, total_cycles, idle_fraction and grid "
            f"parameters {sorted(self.params)}")

    def summary(self) -> Dict[str, object]:
        """Flat JSON/CSV-ready view of the row."""
        row: Dict[str, object] = {
            "benchmark": self.benchmark,
            "scheduler": self.scheduler,
            "seed": self.seed,
        }
        row.update(self.params)
        row["total_cycles"] = self.total_cycles
        row["idle_fraction"] = self.idle_fraction
        return row


class ResultSet:
    """An ordered, filterable collection of :class:`ResultRow` records."""

    def __init__(self, rows: Iterable[ResultRow] = ()) -> None:
        self.rows: List[ResultRow] = list(rows)

    @classmethod
    def from_jobs(cls, jobs, results: Sequence[SimulationResult]
                  ) -> "ResultSet":
        """Fold positionally-aligned ``(jobs, results)`` into a result set.

        ``jobs`` are :class:`~repro.exec.jobs.SimJob` records; each job's
        ``tags`` become the row's grid parameters.
        """
        rows = [ResultRow(benchmark=job.benchmark,
                          scheduler=job.scheduler_name,
                          seed=job.seed,
                          params=dict(job.tags),
                          result=result)
                for job, result in zip(jobs, results)]
        return cls(rows)

    # -- basics ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[ResultRow]:
        return iter(self.rows)

    def __add__(self, other: "ResultSet") -> "ResultSet":
        return ResultSet(self.rows + other.rows)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ResultSet) and self.rows == other.rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultSet({len(self.rows)} rows)"

    @property
    def results(self) -> List[SimulationResult]:
        """The underlying simulation results, in row order."""
        return [row.result for row in self.rows if row.result is not None]

    def benchmarks(self) -> List[str]:
        """Benchmark names in first-appearance order."""
        seen: List[str] = []
        for row in self.rows:
            if row.benchmark not in seen:
                seen.append(row.benchmark)
        return seen

    def parameters(self) -> List[str]:
        """Grid parameter names in first-appearance order."""
        seen: List[str] = []
        for row in self.rows:
            for key in row.params:
                if key not in seen:
                    seen.append(key)
        return seen

    def mean_cycles(self) -> float:
        """Mean total cycles over every row (0.0 when empty)."""
        return (statistics.fmean(row.total_cycles for row in self.rows)
                if self.rows else 0.0)

    # -- relational operations -------------------------------------------------

    def filter(self, predicate: Optional[Callable[[ResultRow], bool]] = None,
               **equals) -> "ResultSet":
        """Rows matching ``predicate`` and/or field equality constraints.

        ``results.filter(scheduler="rescq", distance=7)`` keeps rows whose
        field or grid parameter equals the given value; a callable predicate
        composes with the equality constraints.
        """
        def keep(row: ResultRow) -> bool:
            if predicate is not None and not predicate(row):
                return False
            for key, expected in equals.items():
                try:
                    if row.value(key) != expected:
                        return False
                except KeyError:
                    return False
            return True
        return ResultSet(row for row in self.rows if keep(row))

    def group_by(self, *keys: str) -> Dict[Tuple, "ResultSet"]:
        """Partition rows by a key tuple, preserving first-appearance order."""
        if not keys:
            raise ValueError("group_by needs at least one key")
        groups: Dict[Tuple, ResultSet] = {}
        for row in self.rows:
            group_key = tuple(row.value(key) for key in keys)
            groups.setdefault(group_key, ResultSet()).rows.append(row)
        return groups

    def aggregate(self, *keys: str) -> List[Dict[str, object]]:
        """Mean/min/max cycles and mean idle fraction per group.

        Returns one dict per group (first-appearance order) with the group
        key fields followed by ``mean_cycles``, ``min_cycles``,
        ``max_cycles``, ``idle_fraction`` and ``runs``.
        """
        summaries: List[Dict[str, object]] = []
        for group_key, group in self.group_by(*keys).items():
            stats = aggregate_results(group.results)
            summary: Dict[str, object] = dict(zip(keys, group_key))
            summary["mean_cycles"] = stats["mean"]
            summary["min_cycles"] = stats["min"]
            summary["max_cycles"] = stats["max"]
            summary["idle_fraction"] = (
                statistics.fmean(row.idle_fraction for row in group.rows)
                if group.rows else 0.0)
            summary["runs"] = int(stats["runs"])
            summaries.append(summary)
        return summaries

    # -- canonical views -------------------------------------------------------

    def comparison_rows(self) -> Dict[str, ComparisonRow]:
        """The Figure 10 comparison cells, keyed and sorted by scheduler name.

        Semantics match the original ``aggregate_comparison`` exactly: each
        cell's per-seed results are sorted by seed and the row's benchmark is
        the last one seen for that scheduler, so this is byte-identical to
        the pre-ResultSet aggregation for every legacy caller.
        """
        per_scheduler: Dict[str, List[ResultRow]] = {}
        benchmarks: Dict[str, str] = {}
        for row in self.rows:
            per_scheduler.setdefault(row.scheduler, []).append(row)
            benchmarks[row.scheduler] = row.benchmark
        cells: Dict[str, ComparisonRow] = {}
        for name in sorted(per_scheduler):
            ordered = sorted(per_scheduler[name], key=lambda row: row.seed)
            results = [row.result for row in ordered if row.result is not None]
            stats = aggregate_results(results)
            idle = (statistics.fmean(row.idle_fraction for row in ordered)
                    if ordered else 0.0)
            cells[name] = ComparisonRow(
                benchmark=benchmarks[name],
                scheduler=name,
                mean_cycles=stats["mean"],
                min_cycles=stats["min"],
                max_cycles=stats["max"],
                mean_idle_fraction=idle,
                runs=int(stats["runs"]),
                results=results,
            )
        return cells

    def sweep_rows(self, parameter: str) -> List["SweepRow"]:
        """Fold a one-axis sweep into the Figure 11-14 ``SweepRow`` list.

        Points appear in first-appearance (benchmark, value) order with
        schedulers sorted by name within each point — the exact row order of
        the legacy ``sweep_*`` functions.
        """
        from ..analysis.sweep import SweepRow
        rows: List[SweepRow] = []
        for (benchmark, value), point in self.group_by("benchmark",
                                                       parameter).items():
            for name, cell in point.comparison_rows().items():
                rows.append(SweepRow(
                    benchmark=benchmark,
                    scheduler=name,
                    parameter=parameter,
                    value=value,
                    mean_cycles=cell.mean_cycles,
                    min_cycles=cell.min_cycles,
                    max_cycles=cell.max_cycles,
                    idle_fraction=cell.mean_idle_fraction,
                ))
        return rows

    def grid_rows(self, parameters: Optional[Sequence[str]] = None
                  ) -> List[Dict[str, object]]:
        """Aggregated table rows over an arbitrary parameter grid.

        One dict per (benchmark, grid point, scheduler) with the same
        rounding conventions as ``SweepRow.as_dict`` — the multi-axis
        generalisation the ``exp`` subcommand prints.
        """
        parameters = list(parameters if parameters is not None
                          else self.parameters())
        table: List[Dict[str, object]] = []
        for key, point in self.group_by("benchmark", *parameters).items():
            benchmark, values = key[0], key[1:]
            for name, cell in point.comparison_rows().items():
                row: Dict[str, object] = {"benchmark": benchmark,
                                          "scheduler": name}
                row.update(zip(parameters, values))
                row["mean_cycles"] = round(cell.mean_cycles, 2)
                row["min_cycles"] = cell.min_cycles
                row["max_cycles"] = cell.max_cycles
                row["idle_fraction"] = round(cell.mean_idle_fraction, 4)
                table.append(row)
        return table

    def profile_rows(self) -> List[Dict[str, object]]:
        """Aggregated kernel-profile counters per (benchmark, scheduler).

        Wall-time counters (``wall_*_s``) and per-phase cycle/event counters
        are summed over seeds; rows appear in first-appearance order.  Rows
        whose results carry no profile (the run's config did not set
        ``profile_enabled``, or the result came from a cache hit) are
        skipped.  Every ``wall_<phase>_s`` counter other than the inclusive
        ``wall_total_s`` also gets a ``share_<phase>`` column — the phase's
        fraction of total wall time — so a perf regression's culprit is
        readable straight off the table.
        """
        table: List[Dict[str, object]] = []
        for (benchmark, scheduler), group in self.group_by(
                "benchmark", "scheduler").items():
            totals: Dict[str, float] = {}
            profiled_runs = 0
            for row in group.rows:
                if row.result is None or not row.result.profile:
                    continue
                profiled_runs += 1
                for key, value in row.result.profile.items():
                    totals[key] = totals.get(key, 0.0) + value
            if not profiled_runs:
                continue
            summary: Dict[str, object] = {"benchmark": benchmark,
                                          "scheduler": scheduler,
                                          "runs": profiled_runs}
            total_wall = totals.get("wall_total_s", 0.0)
            for key in sorted(totals):
                value = totals[key]
                summary[key] = round(value, 6) if key.startswith("wall_") else value
                if (total_wall > 0.0 and key.startswith("wall_")
                        and key.endswith("_s") and key != "wall_total_s"):
                    phase = key[len("wall_"):-len("_s")]
                    summary[f"share_{phase}"] = round(value / total_wall, 4)
            table.append(summary)
        # Same column set and order everywhere (policies emit different
        # counters; a table renderer keyed on the first row must see them all).
        counter_keys = sorted({key for row in table for key in row
                               if key not in ("benchmark", "scheduler", "runs")})
        return [{"benchmark": row["benchmark"], "scheduler": row["scheduler"],
                 "runs": row["runs"],
                 **{key: row.get(key, 0.0) for key in counter_keys}}
                for row in table]

    # -- export ----------------------------------------------------------------

    def summary_rows(self) -> List[Dict[str, object]]:
        """One flat dict per row (seed-level, unaggregated)."""
        return [row.summary() for row in self.rows]

    def to_json(self, indent: Optional[int] = 2,
                include_traces: bool = False) -> str:
        """Serialise the set as canonical JSON (seed-level rows).

        Canonical means sorted keys, shortest-round-trip float repr and
        NaN/Infinity rejection, so two runs that measured the same points
        always export byte-identical documents — the property the service
        e2e test and cross-host cache keys rely on.  With
        ``include_traces=True`` every row also embeds the full per-gate
        trace dump of :func:`repro.analysis.export.result_to_dict`.
        """
        from ..canonical import canonical_dumps
        rows = self.summary_rows()
        if include_traces:
            from ..analysis.export import result_to_dict
            for row, record in zip(rows, self.rows):
                if record.result is not None:
                    row["result"] = result_to_dict(record.result)
        return canonical_dumps(rows, indent=indent)

    def to_csv(self) -> str:
        """Serialise the set as CSV (seed-level rows, union of columns)."""
        from ..analysis.export import rows_to_csv
        return rows_to_csv(self.summary_rows())
