"""The concrete registries behind the declarative experiment API.

One place that names every pluggable family:

* :data:`SCHEDULERS` — scheduler factories (defined next to the scheduler
  classes in :mod:`repro.scheduling`);
* :data:`BENCHMARKS` — Table 3 workloads plus user registrations (defined in
  :mod:`repro.workloads.registry`);
* :data:`LAYOUTS` — named layout builders ``(circuit, compression, seed) ->
  GridLayout``;
* :data:`SWEEP_AXES` — the sensitivity axes of Figures 11-14 (defined in
  :mod:`repro.api.axes`).

Everything here resolves *names* (strings that appear in spec files and on
the CLI) to *objects*; an :class:`~repro.api.spec.ExperimentSpec` is valid
exactly when all of its names resolve.
"""

from __future__ import annotations

from ..circuits import Circuit
from ..fabric import GridLayout, StarVariant, compress_layout, star_layout
from ..scheduling import DEFAULT_SCHEDULER_NAMES, SCHEDULER_REGISTRY
from ..workloads.registry import BENCHMARK_REGISTRY, resolve_benchmark
from .axes import AXIS_REGISTRY
from .registry import Registry

__all__ = ["SCHEDULERS", "BENCHMARKS", "LAYOUTS", "SWEEP_AXES",
           "DEFAULT_SCHEDULER_NAMES", "build_layout", "resolve_benchmark"]

SCHEDULERS: Registry = SCHEDULER_REGISTRY
BENCHMARKS: Registry = BENCHMARK_REGISTRY
SWEEP_AXES: Registry = AXIS_REGISTRY

#: Name -> layout builder ``(circuit, compression, seed) -> GridLayout``.
LAYOUTS: Registry = Registry("layout")


def _star_variant_builder(variant: StarVariant):
    def build(circuit: Circuit, compression: float = 0.0,
              seed: int = 0) -> GridLayout:
        layout = star_layout(circuit.num_qubits, variant)
        if compression > 0.0:
            layout, _report = compress_layout(layout, compression, seed=seed)
        return layout
    build.__name__ = f"{variant.value}_layout"
    build.__doc__ = (f"STAR {variant.value!r} grid for the circuit, "
                     f"optionally compressed (Section 5.3).")
    return build


for _variant in StarVariant:
    LAYOUTS.register(_variant.value, _star_variant_builder(_variant))


def build_layout(name: str, circuit: Circuit, compression: float = 0.0,
                 seed: int = 0) -> GridLayout:
    """Build a registered layout by name for ``circuit``."""
    return LAYOUTS.create(name, circuit, compression=compression, seed=seed)
