"""The service wire format: submission envelopes and job-status records.

``rescq serve`` accepts an :class:`~repro.api.spec.ExperimentSpec` over
HTTP.  The body may be the bare spec JSON (so committed spec files POST
directly: ``curl --data-binary @examples/headline.json ...``) or an
envelope that wraps the spec with delivery options::

    {
      "spec": { "name": "fig10-headline", "benchmarks": ["VQE_n13"], ... },
      "request_id": "ci-e2e-1",
      "include_status": true
    }

``include_status`` asks the server to attach a per-row :class:`JobStatus`
(fingerprint + resolution source) to the NDJSON stream.  It defaults to
off so that repeated submissions of the same spec produce byte-identical
row streams — the property the service e2e test pins.

``indices`` restricts the submission to a **sub-plan**: the server expands
the spec as usual (expansion is deterministic, so every process derives the
identical job plan from the same spec) and runs only the jobs at the given
plan positions.  This is the shard fan-out wire format of the
:class:`~repro.cluster.router.ShardRouter` — shipping ``(spec, indices)``
instead of serialised jobs keeps the protocol canonical and tiny — but it
works for any client that wants a slice of a plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from .spec import ExperimentSpec, SpecValidationError

__all__ = ["EnvelopeError", "JobStatus", "SubmissionEnvelope",
           "SubmissionReport"]


class EnvelopeError(ValueError):
    """A submission payload does not describe a runnable request."""


@dataclass(frozen=True)
class SubmissionEnvelope:
    """One experiment submission: the spec plus delivery options."""

    spec: ExperimentSpec
    request_id: Optional[str] = None
    include_status: bool = False
    #: Plan positions to run (``None`` = the whole plan).  Required to be
    #: strictly increasing so a sub-plan's row stream maps back onto plan
    #: positions unambiguously.
    indices: Optional[Tuple[int, ...]] = None

    _KEYS = ("spec", "request_id", "include_status", "indices")

    @classmethod
    def from_payload(cls, payload: Mapping) -> "SubmissionEnvelope":
        """Accept either a bare spec object or a full envelope."""
        if not isinstance(payload, Mapping):
            raise EnvelopeError(
                f"submission must be a JSON object (a spec or an envelope "
                f"with a 'spec' key), got {type(payload).__name__}")
        try:
            if "spec" not in payload:
                return cls(spec=ExperimentSpec.from_dict(payload))
            unknown = sorted(set(payload) - set(cls._KEYS))
            if unknown:
                raise EnvelopeError(
                    f"unknown envelope keys {unknown}; accepted keys: "
                    f"{sorted(cls._KEYS)}")
            request_id = payload.get("request_id")
            if request_id is not None and not isinstance(request_id, str):
                raise EnvelopeError(
                    f"request_id must be a string, got {request_id!r}")
            include_status = payload.get("include_status", False)
            if not isinstance(include_status, bool):
                raise EnvelopeError(
                    f"include_status must be a boolean, "
                    f"got {include_status!r}")
            indices = payload.get("indices")
            if indices is not None:
                indices = cls._check_indices(indices)
            return cls(spec=ExperimentSpec.from_dict(payload["spec"]),
                       request_id=request_id,
                       include_status=include_status,
                       indices=indices)
        except SpecValidationError as exc:
            raise EnvelopeError(str(exc)) from None

    @staticmethod
    def _check_indices(indices) -> Tuple[int, ...]:
        if not isinstance(indices, (list, tuple)):
            raise EnvelopeError(
                f"indices must be a list of plan positions, got {indices!r}")
        checked = []
        for index in indices:
            if isinstance(index, bool) or not isinstance(index, int) \
                    or index < 0:
                raise EnvelopeError(
                    f"indices entries must be non-negative integers, "
                    f"got {index!r}")
            if checked and index <= checked[-1]:
                raise EnvelopeError(
                    f"indices must be strictly increasing, got {index} "
                    f"after {checked[-1]}")
            checked.append(index)
        if not checked:
            raise EnvelopeError("indices is empty; omit it to run the "
                                "whole plan")
        return tuple(checked)

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"spec": self.spec.to_dict()}
        if self.request_id is not None:
            payload["request_id"] = self.request_id
        if self.include_status:
            payload["include_status"] = True
        if self.indices is not None:
            payload["indices"] = list(self.indices)
        return payload


@dataclass(frozen=True)
class JobStatus:
    """How one planned job was resolved by the service."""

    #: Resolution sources: executed fresh, served from the result cache, or
    #: joined onto an identical in-flight execution.
    SOURCES = ("executed", "cache", "deduped")

    fingerprint: str = ""
    benchmark: str = ""
    scheduler: str = ""
    seed: int = 0
    params: Dict[str, object] = field(default_factory=dict)
    source: str = "executed"

    def to_dict(self) -> Dict[str, object]:
        return {
            "fingerprint": self.fingerprint,
            "benchmark": self.benchmark,
            "scheduler": self.scheduler,
            "seed": self.seed,
            "params": dict(self.params),
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "JobStatus":
        return cls(
            fingerprint=str(payload.get("fingerprint", "")),
            benchmark=str(payload.get("benchmark", "")),
            scheduler=str(payload.get("scheduler", "")),
            seed=int(payload.get("seed", 0)),
            params=dict(payload.get("params", {})),
            source=str(payload.get("source", "executed")),
        )


@dataclass(frozen=True)
class SubmissionReport:
    """The trailing summary record of one NDJSON response stream."""

    name: str
    jobs: int
    executed: int
    cache_hits: int
    deduped: int
    request_id: Optional[str] = None
    #: Jobs that failed (router streams keep going past a failed shard and
    #: account for the loss here).  Serialised only when non-zero so healthy
    #: summaries keep their historical byte layout.
    errors: int = 0

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "type": "summary",
            "name": self.name,
            "jobs": self.jobs,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "deduped": self.deduped,
        }
        if self.request_id is not None:
            payload["request_id"] = self.request_id
        if self.errors:
            payload["errors"] = self.errors
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SubmissionReport":
        return cls(
            name=str(payload.get("name", "")),
            jobs=int(payload.get("jobs", 0)),
            executed=int(payload.get("executed", 0)),
            cache_hits=int(payload.get("cache_hits", 0)),
            deduped=int(payload.get("deduped", 0)),
            request_id=payload.get("request_id"),
            errors=int(payload.get("errors", 0)),
        )
