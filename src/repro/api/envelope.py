"""The service wire format: submission envelopes and job-status records.

``rescq serve`` accepts an :class:`~repro.api.spec.ExperimentSpec` over
HTTP.  The body may be the bare spec JSON (so committed spec files POST
directly: ``curl --data-binary @examples/headline.json ...``) or an
envelope that wraps the spec with delivery options::

    {
      "spec": { "name": "fig10-headline", "benchmarks": ["VQE_n13"], ... },
      "request_id": "ci-e2e-1",
      "include_status": true
    }

``include_status`` asks the server to attach a per-row :class:`JobStatus`
(fingerprint + resolution source) to the NDJSON stream.  It defaults to
off so that repeated submissions of the same spec produce byte-identical
row streams — the property the service e2e test pins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from .spec import ExperimentSpec, SpecValidationError

__all__ = ["EnvelopeError", "JobStatus", "SubmissionEnvelope",
           "SubmissionReport"]


class EnvelopeError(ValueError):
    """A submission payload does not describe a runnable request."""


@dataclass(frozen=True)
class SubmissionEnvelope:
    """One experiment submission: the spec plus delivery options."""

    spec: ExperimentSpec
    request_id: Optional[str] = None
    include_status: bool = False

    _KEYS = ("spec", "request_id", "include_status")

    @classmethod
    def from_payload(cls, payload: Mapping) -> "SubmissionEnvelope":
        """Accept either a bare spec object or a full envelope."""
        if not isinstance(payload, Mapping):
            raise EnvelopeError(
                f"submission must be a JSON object (a spec or an envelope "
                f"with a 'spec' key), got {type(payload).__name__}")
        try:
            if "spec" not in payload:
                return cls(spec=ExperimentSpec.from_dict(payload))
            unknown = sorted(set(payload) - set(cls._KEYS))
            if unknown:
                raise EnvelopeError(
                    f"unknown envelope keys {unknown}; accepted keys: "
                    f"{sorted(cls._KEYS)}")
            request_id = payload.get("request_id")
            if request_id is not None and not isinstance(request_id, str):
                raise EnvelopeError(
                    f"request_id must be a string, got {request_id!r}")
            include_status = payload.get("include_status", False)
            if not isinstance(include_status, bool):
                raise EnvelopeError(
                    f"include_status must be a boolean, "
                    f"got {include_status!r}")
            return cls(spec=ExperimentSpec.from_dict(payload["spec"]),
                       request_id=request_id,
                       include_status=include_status)
        except SpecValidationError as exc:
            raise EnvelopeError(str(exc)) from None

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"spec": self.spec.to_dict()}
        if self.request_id is not None:
            payload["request_id"] = self.request_id
        if self.include_status:
            payload["include_status"] = True
        return payload


@dataclass(frozen=True)
class JobStatus:
    """How one planned job was resolved by the service."""

    #: Resolution sources: executed fresh, served from the result cache, or
    #: joined onto an identical in-flight execution.
    SOURCES = ("executed", "cache", "deduped")

    fingerprint: str = ""
    benchmark: str = ""
    scheduler: str = ""
    seed: int = 0
    params: Dict[str, object] = field(default_factory=dict)
    source: str = "executed"

    def to_dict(self) -> Dict[str, object]:
        return {
            "fingerprint": self.fingerprint,
            "benchmark": self.benchmark,
            "scheduler": self.scheduler,
            "seed": self.seed,
            "params": dict(self.params),
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "JobStatus":
        return cls(
            fingerprint=str(payload.get("fingerprint", "")),
            benchmark=str(payload.get("benchmark", "")),
            scheduler=str(payload.get("scheduler", "")),
            seed=int(payload.get("seed", 0)),
            params=dict(payload.get("params", {})),
            source=str(payload.get("source", "executed")),
        )


@dataclass(frozen=True)
class SubmissionReport:
    """The trailing summary record of one NDJSON response stream."""

    name: str
    jobs: int
    executed: int
    cache_hits: int
    deduped: int
    request_id: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "type": "summary",
            "name": self.name,
            "jobs": self.jobs,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "deduped": self.deduped,
        }
        if self.request_id is not None:
            payload["request_id"] = self.request_id
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SubmissionReport":
        return cls(
            name=str(payload.get("name", "")),
            jobs=int(payload.get("jobs", 0)),
            executed=int(payload.get("executed", 0)),
            cache_hits=int(payload.get("cache_hits", 0)),
            deduped=int(payload.get("deduped", 0)),
            request_id=payload.get("request_id"),
        )
