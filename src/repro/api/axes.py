"""Sweep axes: the declarative form of the Section 5.2/5.3 sensitivity knobs.

A :class:`SweepAxis` captures everything one sensitivity sweep varies — which
:class:`~repro.sim.config.SimulationConfig` field (or layout property) it
drives, the values the paper evaluates, which schedulers the figure compares,
and how the layout is built per point.  The four paper axes (Figures 11-14)
are registered in :data:`AXIS_REGISTRY`; the CLI's ``sweep`` subcommand, the
legacy ``sweep_*`` shims and grid keys in :class:`~repro.api.spec.ExperimentSpec`
all resolve through it, so adding a new axis is one registration instead of a
new function plus CLI dispatch arm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

from ..circuits import Circuit
from ..fabric import GridLayout, StarVariant, compress_layout, star_layout
from ..scheduling import DEFAULT_SCHEDULER_NAMES
from ..sim.config import SimulationConfig
from .registry import Registry

__all__ = ["SweepAxis", "AXIS_REGISTRY", "get_axis"]


@dataclass(frozen=True)
class SweepAxis:
    """One sensitivity-sweep parameter.

    Attributes
    ----------
    name:
        CLI-facing axis name, e.g. ``"error-rate"``.
    parameter:
        The :class:`SimulationConfig` field the axis varies, or
        ``"compression"`` for the layout co-design axis.
    default_values:
        The values the corresponding paper figure sweeps.
    value_type:
        Values are cast through this before entering the config, so JSON
        numbers round-trip to the exact legacy behaviour (``int(d)`` etc.).
    default_schedulers:
        The schedulers the paper's figure compares on this axis.
    layout_seed:
        Seed for stochastic layout construction (grid compression); the
        compression sweep historically uses seed 13.
    figure:
        Paper figure the axis reproduces (documentation only).
    """

    name: str
    parameter: str
    default_values: Tuple[float, ...]
    value_type: Callable = float
    default_schedulers: Tuple[str, ...] = DEFAULT_SCHEDULER_NAMES
    layout_seed: int = 0
    figure: str = ""

    def config_for(self, base: SimulationConfig, value) -> SimulationConfig:
        """The simulation config at one swept point."""
        if self.parameter == "compression":
            return base
        return base.with_updates(**{self.parameter: self.value_type(value)})

    def layout_for(self, circuit: Circuit, value) -> GridLayout:
        """The layout at one swept point (STAR grid, compressed if swept)."""
        layout = star_layout(circuit.num_qubits, StarVariant.STAR)
        if self.parameter == "compression" and self.value_type(value) > 0:
            layout, _report = compress_layout(layout, self.value_type(value),
                                              seed=self.layout_seed)
        return layout

    def describe(self) -> str:
        values = ", ".join(str(v) for v in self.default_values)
        return f"{self.name} ({self.parameter}): [{values}]"


#: Name -> :class:`SweepAxis` for every registered sensitivity knob.
AXIS_REGISTRY: Registry = Registry("sweep axis")

AXIS_REGISTRY.register("distance", SweepAxis(
    name="distance", parameter="distance",
    default_values=(5, 7, 9, 11, 13), value_type=int,
    figure="Figure 11"))
AXIS_REGISTRY.register("error-rate", SweepAxis(
    name="error-rate", parameter="physical_error_rate",
    default_values=(1e-3, 3e-4, 1e-4, 3e-5, 1e-5), value_type=float,
    figure="Figure 12"))
AXIS_REGISTRY.register("mst-period", SweepAxis(
    name="mst-period", parameter="mst_period",
    default_values=(25, 50, 100, 200), value_type=int,
    default_schedulers=("rescq",),
    figure="Figure 13"))
AXIS_REGISTRY.register("compression", SweepAxis(
    name="compression", parameter="compression",
    default_values=(0.0, 0.25, 0.5, 0.75, 1.0), value_type=float,
    layout_seed=13,
    figure="Figure 14"))


def get_axis(name: str) -> SweepAxis:
    """Resolve an axis by CLI name *or* by config parameter name."""
    if name in AXIS_REGISTRY:
        return AXIS_REGISTRY.get(name)
    for _name, axis in AXIS_REGISTRY.items():
        if axis.parameter == name:
            return axis
    return AXIS_REGISTRY.get(name)  # raises with the known axis names
