"""Command-line interface: ``python -m repro`` / ``rescq``.

Subcommands
-----------

``list``
    Print the Table 3 benchmark registry (paper vs generated gate counts),
    sorted by benchmark name.
``backends``
    List the pluggable backend families — routing backends and kernel event
    engines — with availability and install hints for missing extras
    (rendered from :func:`repro.api.backends.available_backends`).
``run``
    Execute one benchmark under one or more schedulers and print cycles.
    The benchmark may be a registered name (``qft_n18``), a
    ``scenario:<family>:key=value,...`` generator name, or a path to an
    OpenQASM 2.0 file (``rescq run path/to/file.qasm``).
``gen``
    Build a seeded scenario circuit (``rescq gen --list`` shows the
    families) and emit it as OpenQASM or appendix-B.7 text, optionally with
    its Table 3-style characteristics.
``sweep``
    Run one of the registered sensitivity sweeps (``rescq sweep --help``
    lists the axes) on a benchmark.
``exp``
    Run a declarative experiment from a JSON
    :class:`~repro.api.spec.ExperimentSpec` file, e.g.
    ``rescq exp examples/headline.json``.
``prep``
    Print the Figure 16 preparation-statistics table.
``serve``
    Run the sharded experiment service: an HTTP endpoint that accepts
    :class:`~repro.api.spec.ExperimentSpec` JSON on ``POST /experiments``
    and streams results back as NDJSON, deduplicating identical jobs
    against a shared result cache and across concurrent requests.  With
    ``--max-pending`` the service refuses work over its pending-jobs
    high-water mark with ``429`` + ``Retry-After`` instead of queueing
    unboundedly; with ``--cache`` it also serves the ``/cache`` peer
    protocol so other processes can share its cache tier.
``route``
    Run the cluster shard router in front of N ``serve`` instances:
    rendezvous-hashes each planned job onto its owning shard, fans
    sub-plans out, and merges the NDJSON streams back into one plan-ordered
    response (see :mod:`repro.cluster`).  The router tracks live shard
    membership (``--health-interval``, ``--dead-after``) and re-routes
    jobs lost to a shard dying mid-stream (``--max-attempts``,
    ``--request-deadline``, ``--retry-seed``).
``cluster``
    Inspect a running router: ``cluster status URL`` prints the shard
    membership table (state, failure counters, last error per shard).
``cache``
    Inspect or maintain a result cache: ``stats``, ``gc --older-than AGE``
    and ``verify`` work uniformly over the directory, SQLite and
    ``http://`` peer backends.

Both ``serve`` and ``route`` print a machine-parsable readiness line on
stdout once their socket is bound::

    RESCQ_READY role=serve host=127.0.0.1 port=43017

ending in the actually-bound port, so scripts driving ``--port 0``
(ephemeral ports) read the port from that line instead of grepping logs.

``run`` and ``sweep`` are thin spec builders: each constructs the equivalent
:class:`~repro.api.spec.ExperimentSpec` and executes it through
:func:`~repro.api.facade.run_experiment`, so their tables are byte-identical
to running the same spec through ``exp``.  All three accept ``--jobs N`` (fan
simulation jobs out over N worker processes) and ``--cache DIR`` (memoise
finished jobs on disk); they print an ``[exec]`` accounting line after the
table, and the table itself is byte-identical for every ``--jobs`` value.
"""

from __future__ import annotations

import argparse
import sqlite3
import sys
from typing import List, Optional, Sequence

from .analysis.report import format_circuit_stats, format_table
from .api.axes import AXIS_REGISTRY
from .api.facade import build_engine, render_experiment, run_experiment
from .api.registries import DEFAULT_SCHEDULER_NAMES, SCHEDULERS
from .api.spec import ExperimentSpec, SpecValidationError
from .circuits import to_artifact_format, to_qasm
from .exec import ExecutionEngine
from .kernel.engines import KERNEL_BACKEND_NAMES
from .lattice import ROUTING_BACKEND_NAMES
from .rus import PreparationModel
from .workloads import (
    SCENARIO_FAMILIES,
    ScenarioError,
    scenario_name,
    table3_rows,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    # repro.__version__ is resolved from the installed package metadata (with
    # a source-tree fallback) at import time.
    from . import __version__
    parser = argparse.ArgumentParser(
        prog="rescq",
        description="RESCQ reproduction: realtime scheduling for continuous-"
                    "angle QEC architectures")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the Table 3 benchmarks")

    run_parser = sub.add_parser("run", help="run one benchmark")
    run_parser.add_argument("benchmark",
                            help="benchmark name (e.g. qft_n18), scenario "
                                 "name (scenario:<family>:key=value,...) or "
                                 "path to an OpenQASM 2.0 file (*.qasm)")
    run_parser.add_argument("--schedulers",
                            default=",".join(DEFAULT_SCHEDULER_NAMES),
                            help="comma-separated scheduler names "
                                 f"(registered: {', '.join(SCHEDULERS.names())})")
    run_parser.add_argument("--distance", type=int, default=7)
    run_parser.add_argument("--error-rate", type=float, default=1e-4)
    run_parser.add_argument("--mst-period", type=int, default=25)
    run_parser.add_argument("--compression", type=float, default=0.0)
    run_parser.add_argument("--seeds", type=int, default=3)
    run_parser.add_argument("--profile", action="store_true",
                            help="collect and print per-phase kernel "
                                 "counters (simulated cycles per phase, "
                                 "routing/MST wall time)")
    run_parser.add_argument("--profile-out", metavar="FILE.json", default=None,
                            help="write the aggregated kernel profile as a "
                                 "canonical-JSON record to FILE.json "
                                 "(implies --profile)")
    run_parser.add_argument("--routing-backend",
                            choices=ROUTING_BACKEND_NAMES, default=None,
                            help="shortest-path backend for the routing "
                                 "index (default: the config default, "
                                 "'vector'); all backends produce identical "
                                 "traces")
    run_parser.add_argument("--kernel-backend",
                            choices=KERNEL_BACKEND_NAMES, default=None,
                            help="event engine behind the simulation kernel "
                                 "(default: the config default, 'batched'); "
                                 "all engines produce identical traces")
    _add_engine_arguments(run_parser)

    sub.add_parser("backends",
                   help="list the pluggable routing/kernel backends and "
                        "their availability on this machine")

    sweep_parser = sub.add_parser("sweep", help="run a sensitivity sweep")
    sweep_parser.add_argument("kind", choices=AXIS_REGISTRY.names(),
                              help="registered sweep axis")
    sweep_parser.add_argument("benchmark", help="benchmark name, e.g. qft_n18")
    sweep_parser.add_argument("--seeds", type=int, default=2)
    _add_engine_arguments(sweep_parser)

    exp_parser = sub.add_parser(
        "exp", help="run a declarative experiment from a JSON spec file")
    exp_parser.add_argument("spec", help="path to an ExperimentSpec JSON file")
    exp_parser.add_argument("--csv", metavar="PATH", default=None,
                            help="also write seed-level results as CSV")
    exp_parser.add_argument("--json", metavar="PATH", default=None,
                            help="also write seed-level results as JSON")
    _add_engine_arguments(exp_parser)

    gen_parser = sub.add_parser(
        "gen", help="generate a seeded scenario circuit")
    gen_parser.add_argument("family", nargs="?", default=None,
                            help="scenario family name (see --list)")
    gen_parser.add_argument("--list", action="store_true", dest="list_families",
                            help="list the scenario families and their "
                                 "parameters")
    gen_parser.add_argument("--set", dest="params", action="append",
                            default=[], metavar="KEY=VALUE",
                            help="generator parameter override (repeatable), "
                                 "e.g. --set depth=24 --set t_density=0.3")
    gen_parser.add_argument("--seed", type=int, default=None,
                            help="shorthand for --set seed=N")
    gen_parser.add_argument("--format", choices=("qasm", "artifact"),
                            default="qasm",
                            help="output format: OpenQASM 2.0 (default) or "
                                 "the appendix B.7 artifact text")
    gen_parser.add_argument("--out", metavar="PATH", default=None,
                            help="write the circuit to PATH instead of stdout")
    gen_parser.add_argument("--stats", action="store_true",
                            help="also print the Table 3-style "
                                 "characteristics of the generated circuit")

    prep_parser = sub.add_parser("prep", help="Figure 16 preparation statistics")
    prep_parser.add_argument("--distances", default="5,7,9,11,13")
    prep_parser.add_argument("--error-rates", default="1e-3,1e-4,1e-5")

    serve_parser = sub.add_parser(
        "serve", help="run the HTTP experiment service")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8765,
                              help="TCP port (0 picks a free port)")
    serve_parser.add_argument("--jobs", type=int, default=None, metavar="N",
                              help="worker processes (default: CPU count)")
    serve_parser.add_argument("--cache", default=None, metavar="SPEC",
                              help="shared result cache: a directory, a "
                                   "*.sqlite/*.db file, an explicit "
                                   "dir:PATH / sqlite:PATH spec, an "
                                   "http://host:port cache peer, or a "
                                   "NEAR|FAR tier composition")
    serve_parser.add_argument("--job-timeout", type=float, default=None,
                              metavar="SECONDS",
                              help="kill a single simulation after this many "
                                   "seconds (default: no limit)")
    serve_parser.add_argument("--max-attempts", type=int, default=2,
                              help="tries a job gets when its worker process "
                                   "dies mid-run (default: 2)")
    serve_parser.add_argument("--max-pending", type=int, default=None,
                              metavar="N",
                              help="admission-control high-water mark: "
                                   "refuse new submissions with 429 while "
                                   "N or more jobs are pending (default: "
                                   "unbounded)")
    serve_parser.add_argument("--retry-after", type=float, default=1.0,
                              metavar="SECONDS",
                              help="Retry-After hint sent with 429 "
                                   "admission refusals (default: 1)")

    route_parser = sub.add_parser(
        "route", help="run the cluster shard router over serve instances")
    route_parser.add_argument("shards", nargs="+", metavar="URL",
                              help="backend serve base URLs, e.g. "
                                   "http://127.0.0.1:8765")
    route_parser.add_argument("--host", default="127.0.0.1")
    route_parser.add_argument("--port", type=int, default=8766,
                              help="TCP port (0 picks a free port)")
    route_parser.add_argument("--connect-timeout", type=float, default=5.0,
                              metavar="SECONDS",
                              help="per-shard connect budget before the "
                                   "router retries the next-ranked shard "
                                   "(default: 5)")
    route_parser.add_argument("--probe-timeout", type=float, default=2.0,
                              metavar="SECONDS",
                              help="per-shard /healthz and /stats probe "
                                   "budget (default: 2)")
    route_parser.add_argument("--health-interval", type=float, default=5.0,
                              metavar="SECONDS",
                              help="seconds between background health-probe "
                                   "rounds; 0 disables the probe loop "
                                   "(default: 5)")
    route_parser.add_argument("--dead-after", type=int, default=3,
                              metavar="N",
                              help="consecutive probe/connect failures "
                                   "before a shard is declared DEAD "
                                   "(default: 3)")
    route_parser.add_argument("--max-attempts", type=int, default=4,
                              metavar="N",
                              help="bounded retry attempts per failed "
                                   "placement or mid-stream recovery "
                                   "(default: 4)")
    route_parser.add_argument("--request-deadline", type=float, default=None,
                              metavar="SECONDS",
                              help="per-request wall budget; retries and "
                                   "Retry-After hints never extend past it "
                                   "(default: unbounded)")
    route_parser.add_argument("--retry-seed", type=int, default=None,
                              metavar="SEED",
                              help="seed the backoff-jitter RNG for "
                                   "reproducible retry timing (default: "
                                   "unseeded)")

    cluster_parser = sub.add_parser(
        "cluster", help="inspect a running cluster router")
    cluster_parser.add_argument("action", choices=("status",),
                                help="status: print the router's shard "
                                     "membership table")
    cluster_parser.add_argument("url", metavar="URL",
                                help="router base URL, e.g. "
                                     "http://127.0.0.1:8766")
    cluster_parser.add_argument("--timeout", type=float, default=10.0,
                                metavar="SECONDS",
                                help="HTTP budget for the status request "
                                     "(default: 10)")

    cache_parser = sub.add_parser(
        "cache", help="inspect or maintain a result cache")
    cache_parser.add_argument("action", choices=("stats", "gc", "verify"),
                              help="stats: entry/byte counts; gc: delete old "
                                   "entries; verify: integrity-check every "
                                   "entry (exit 1 if corrupt)")
    cache_parser.add_argument("path",
                              help="cache location: a directory, a "
                                   "*.sqlite/*.db file, an explicit "
                                   "dir:PATH / sqlite:PATH spec, or an "
                                   "http://host:port cache peer")
    cache_parser.add_argument("--older-than", default=None, metavar="AGE",
                              help="gc cutoff age, e.g. 45s, 30m, 12h or 7d "
                                   "(bare numbers are seconds)")
    return parser


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for simulation jobs "
                             "(default: 1, serial)")
    parser.add_argument("--cache", default=None, metavar="PATH",
                        help="on-disk result cache (a directory, a "
                             "*.sqlite/*.db file, or dir:PATH / "
                             "sqlite:PATH); repeated runs skip "
                             "already-measured points")


def _engine_from_args(args: argparse.Namespace) -> ExecutionEngine:
    if args.jobs < 1:
        raise SystemExit("--jobs must be >= 1")
    try:
        return build_engine(jobs=args.jobs, cache=args.cache)
    except (OSError, ValueError, sqlite3.Error) as exc:
        raise SystemExit(f"--cache {args.cache!r} is not usable: {exc}")


def _scheduler_names(names: str) -> List[str]:
    schedulers = []
    for name in names.split(","):
        name = name.strip().lower()
        if name not in SCHEDULERS:
            raise SystemExit(f"unknown scheduler {name!r}; "
                             f"choose from {SCHEDULERS.names()}")
        schedulers.append(name)
    return schedulers


def _run_spec(spec: ExperimentSpec, engine: ExecutionEngine):
    try:
        spec.validate()
    except SpecValidationError as exc:
        raise SystemExit(str(exc))
    return run_experiment(spec, engine)


def _command_list() -> int:
    rows = sorted(table3_rows(), key=lambda row: str(row["name"]))
    print(format_table(rows, title="Table 3 benchmarks"))
    return 0


def _command_backends() -> int:
    from .api.backends import available_backends
    rows = []
    for info in available_backends():
        rows.append({
            "kind": info.kind,
            "name": info.name + (" *" if info.default else ""),
            "available": "yes" if info.available else "no",
            "description": info.description
                           + (f" ({info.install_hint})"
                              if info.install_hint else ""),
        })
    print(format_table(rows, title="Pluggable backends (* = default)"))
    return 0


def _command_run(args: argparse.Namespace) -> int:
    config = {"distance": args.distance,
              "physical_error_rate": args.error_rate,
              "mst_period": args.mst_period}
    profile = bool(args.profile or args.profile_out)
    if profile:
        config["profile_enabled"] = True
    if args.routing_backend is not None:
        config["routing_backend"] = args.routing_backend
    if args.kernel_backend is not None:
        config["kernel_backend"] = args.kernel_backend
    spec = ExperimentSpec(
        name=args.benchmark,
        benchmarks=(args.benchmark,),
        schedulers=tuple(_scheduler_names(args.schedulers)),
        config=config,
        seeds=args.seeds,
        compression=args.compression,
    )
    engine = _engine_from_args(args)
    results = _run_spec(spec, engine)
    print(render_experiment(spec, results))
    if profile:
        rows = results.profile_rows()
        if rows:
            print()
            print(format_table(rows, title="kernel profile (summed over seeds)"))
        else:
            print("[profile] no profiled results (cache hits carry no "
                  "profile; rerun without --cache)")
        if args.profile_out:
            _write_profile_record(args.profile_out, spec, rows)
            print(f"[profile] wrote {args.profile_out}")
    print(engine.describe())
    return 0


def _write_profile_record(path: str, spec: ExperimentSpec, rows) -> None:
    """Archive the aggregated profile as a canonical-JSON record.

    Canonical serialisation (sorted keys, no NaN, normalised ``-0.0``) keeps
    the file byte-stable for a given run, so bench jobs can diff archived
    hot-path breakdowns next to ``BENCH_kernel.json``.
    """
    from .canonical import canonical_dumps
    record = {
        "kind": "kernel_profile",
        "benchmark": spec.name,
        "schedulers": list(spec.schedulers),
        "seeds": spec.seeds,
        "config": dict(spec.config),
        "profile_rows": list(rows),
    }
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(canonical_dumps(record, indent=2))
        handle.write("\n")


def _command_sweep(args: argparse.Namespace) -> int:
    axis = AXIS_REGISTRY.get(args.kind)
    spec = ExperimentSpec(
        name=args.benchmark,
        benchmarks=(args.benchmark,),
        schedulers=axis.default_schedulers,
        grid={axis.parameter: axis.default_values},
        seeds=args.seeds,
        layout_seed=axis.layout_seed,
    )
    engine = _engine_from_args(args)
    results = _run_spec(spec, engine)
    rows = results.sweep_rows(axis.parameter)
    print(format_table([row.as_dict() for row in rows],
                       title=f"{args.kind} sweep for {args.benchmark}"))
    print(engine.describe())
    return 0


def _command_exp(args: argparse.Namespace) -> int:
    try:
        spec = ExperimentSpec.load(args.spec)
    except OSError as exc:
        raise SystemExit(f"cannot read spec {args.spec!r}: {exc}")
    except SpecValidationError as exc:
        raise SystemExit(f"invalid spec {args.spec!r}: {exc}")
    engine = _engine_from_args(args)
    results = _run_spec(spec, engine)
    print(render_experiment(spec, results))
    print(engine.describe())
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as handle:
            handle.write(results.to_csv())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(results.to_json() + "\n")
    return 0


def _command_gen(args: argparse.Namespace) -> int:
    if args.list_families or args.family is None:
        if args.family is None and not args.list_families:
            raise SystemExit(
                "gen: name a scenario family or pass --list; families: "
                f"{SCENARIO_FAMILIES.names()}")
        rows = [{
            "family": name,
            "description": family.description,
            "parameters": " ".join(
                f"{p.name}={p.default}" for p in family.parameters),
        } for name, family in SCENARIO_FAMILIES.items()]
        print(format_table(rows, title="scenario generator families"))
        return 0
    if args.family not in SCENARIO_FAMILIES:
        raise SystemExit(f"gen: unknown scenario family {args.family!r}; "
                         f"families: {SCENARIO_FAMILIES.names()}")
    family = SCENARIO_FAMILIES.get(args.family)
    overrides = {}
    for item in args.params:
        key, equals, value_text = item.partition("=")
        if not equals or not key or not value_text:
            raise SystemExit(f"gen: malformed --set {item!r}; use KEY=VALUE")
        if key in overrides:
            raise SystemExit(f"gen: parameter {key!r} set twice")
        try:
            overrides[key] = family.parameter(key).parse(value_text,
                                                         family.name)
        except ScenarioError as exc:
            raise SystemExit(f"gen: {exc}")
    if args.seed is not None:
        if "seed" in overrides:
            raise SystemExit("gen: seed given both via --seed and --set "
                             "seed=...; use one")
        overrides["seed"] = args.seed
    try:
        name = scenario_name(args.family, **overrides)
        circuit = family.build(**overrides)
    except ScenarioError as exc:
        raise SystemExit(f"gen: {exc}")
    circuit.name = name
    if args.format == "qasm":
        text = to_qasm(circuit)
    else:
        text = to_artifact_format(circuit)
    if args.out:
        try:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(text)
        except OSError as exc:
            raise SystemExit(f"gen: cannot write {args.out!r}: {exc}")
        print(f"[gen] wrote {args.out} ({name})")
    else:
        print(text, end="")
    if args.stats:
        # To stderr so `rescq gen ... --stats > c.qasm` still emits a valid
        # circuit file on stdout.
        print(format_circuit_stats([circuit], title="generated circuit"),
              file=sys.stderr)
    return 0


def _command_prep(args: argparse.Namespace) -> int:
    distances = [int(token) for token in args.distances.split(",")]
    error_rates = [float(token) for token in args.error_rates.split(",")]
    rows = []
    for p in error_rates:
        for d in distances:
            model = PreparationModel(distance=d, physical_error_rate=p)
            rows.append({
                "p": p,
                "d": d,
                "expected_attempts": round(model.expected_attempts(), 3),
                "expected_cycles": round(model.expected_cycles(), 3),
            })
    print(format_table(rows, title="Figure 16: |m_theta> preparation statistics"))
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from .exec.cache import open_cache_backend
    from .service import ExperimentServer, ExperimentService, ServiceExecutor

    if args.jobs is not None and args.jobs < 1:
        raise SystemExit("--jobs must be >= 1")
    cache = None
    if args.cache:
        try:
            cache = open_cache_backend(args.cache)
        except (OSError, ValueError, sqlite3.Error) as exc:
            raise SystemExit(f"--cache {args.cache!r} is not usable: {exc}")
    try:
        executor = ServiceExecutor(max_workers=args.jobs,
                                   job_timeout=args.job_timeout,
                                   max_attempts=args.max_attempts)
        service = ExperimentService(executor=executor, cache=cache,
                                    max_pending=args.max_pending,
                                    retry_after=args.retry_after)
    except ValueError as exc:
        raise SystemExit(f"serve: {exc}")
    server = ExperimentServer(service, host=args.host, port=args.port)

    async def _serve() -> None:
        loop = asyncio.get_event_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        await server.start()
        print(f"[serve] listening on http://{server.host}:{server.port} "
              f"({executor.describe()}, cache={args.cache or 'off'}, "
              f"max_pending={args.max_pending or 'unbounded'})",
              flush=True)
        # Machine-parsable readiness line; port last so scripts can read it
        # with a bare `sed 's/.*port=//'`.
        print(f"RESCQ_READY role=serve host={server.host} "
              f"port={server.port}", flush=True)
        await stop.wait()
        print("[serve] draining...", flush=True)
        await server.stop(drain=True)
        print(f"[serve] stopped; {service.describe()}", flush=True)

    asyncio.run(_serve())
    return 0


def _command_route(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from .cluster import ShardRouter

    import random as random_module

    rng = (random_module.Random(args.retry_seed)
           if args.retry_seed is not None else None)
    try:
        router = ShardRouter(args.shards, host=args.host, port=args.port,
                             connect_timeout=args.connect_timeout,
                             probe_timeout=args.probe_timeout,
                             health_interval=args.health_interval,
                             dead_after=args.dead_after,
                             max_attempts=args.max_attempts,
                             request_deadline=args.request_deadline,
                             rng=rng)
    except ValueError as exc:
        raise SystemExit(f"route: {exc}")

    async def _route() -> None:
        loop = asyncio.get_event_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        await router.start()
        await router.probe_once()  # so the readiness line reports live counts
        print(f"[route] routing over {len(router.shards)} shard(s): "
              f"{', '.join(router.shards)}", flush=True)
        # ``port=`` stays last: the e2e scripts extract it with
        # ``sed 's/.*port=//'``.
        print(f"RESCQ_READY role=route host={router.host} "
              f"shards={router.membership.live_count}/"
              f"{len(router.membership)} "
              f"port={router.port}", flush=True)
        await stop.wait()
        print("[route] draining...", flush=True)
        await router.stop()
        stats = router.stats
        print(f"[route] stopped; requests={stats.requests} "
              f"jobs={stats.jobs} retried={stats.retried} "
              f"recovered={stats.recovered} gave_up={stats.gave_up} "
              f"rejected={stats.rejected} failed={stats.failed}", flush=True)

    asyncio.run(_route())
    return 0


def _command_cluster(args: argparse.Namespace) -> int:
    import http.client
    import json as json_module
    from urllib.parse import urlsplit

    from .cluster.membership import membership_rows

    split = urlsplit(args.url)
    if split.scheme != "http" or not split.hostname:
        raise SystemExit(f"cluster: router URL must look like "
                         f"http://host:port, got {args.url!r}")
    port = split.port if split.port is not None else 80
    path = split.path.rstrip("/") + "/shards"
    connection = http.client.HTTPConnection(split.hostname, port,
                                            timeout=args.timeout)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        data = response.read()
        if response.status != 200:
            raise SystemExit(f"cluster: {args.url} answered HTTP "
                             f"{response.status}: "
                             f"{data[:200].decode('utf-8', 'replace')}")
    except OSError as exc:
        raise SystemExit(f"cluster: cannot reach {args.url}: {exc}")
    finally:
        connection.close()
    try:
        snapshot = json_module.loads(data.decode("utf-8"))["membership"]
    except (ValueError, KeyError, UnicodeDecodeError) as exc:
        raise SystemExit(f"cluster: malformed /shards payload from "
                         f"{args.url}: {exc}")
    counts = snapshot.get("counts", {})
    total = sum(value for value in counts.values() if isinstance(value, int))
    print(f"[cluster] {args.url}: {counts.get('live', 0)}/{total} live "
          f"(suspect={counts.get('suspect', 0)} "
          f"dead={counts.get('dead', 0)} "
          f"draining={counts.get('draining', 0)}; "
          f"dead_after={snapshot.get('dead_after', '?')})")
    print(format_table(membership_rows(snapshot),
                       title="Shard membership"))
    return 0


def _parse_age(text: str) -> float:
    """Parse a gc age: bare seconds or a number with an s/m/h/d suffix."""
    scales = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}
    scale = 1.0
    number = text.strip()
    if number and number[-1].lower() in scales:
        scale = scales[number[-1].lower()]
        number = number[:-1]
    try:
        seconds = float(number) * scale
    except ValueError:
        raise SystemExit(f"cache gc: malformed age {text!r}; use e.g. "
                         f"45s, 30m, 12h or 7d")
    if seconds < 0:
        raise SystemExit(f"cache gc: age must be >= 0, got {text!r}")
    return seconds


def _command_cache(args: argparse.Namespace) -> int:
    import os.path

    from .exec.cache import open_cache_backend

    if not args.path.startswith("http://") and "|" not in args.path:
        location = args.path.partition(":")[2] if args.path.startswith(
            ("dir:", "sqlite:")) else args.path
        if not os.path.exists(location):
            raise SystemExit(f"cache: no cache at {args.path!r}")
    try:
        backend = open_cache_backend(args.path)
    except (OSError, ValueError, sqlite3.Error) as exc:
        raise SystemExit(f"cache: cannot open {args.path!r}: {exc}")
    try:
        if args.action == "stats":
            entries = list(backend.entries())
            total = sum(entry.size_bytes for entry in entries)
            print(f"[cache] {args.path}: {len(entries)} entries, "
                  f"{total} bytes")
            return 0
        if args.action == "gc":
            if args.older_than is None:
                raise SystemExit("cache gc: pass --older-than AGE "
                                 "(e.g. 45s, 30m, 12h, 7d)")
            removed = backend.gc(_parse_age(args.older_than))
            print(f"[cache] {args.path}: removed {removed} entries older "
                  f"than {args.older_than}")
            return 0
        check = backend.verify()
        print(f"[cache] {args.path}: {check.describe()}")
        for fingerprint in check.corrupt:
            print(f"[cache] corrupt: {fingerprint}")
        return 0 if check.is_healthy else 1
    finally:
        backend.close()


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "backends":
        return _command_backends()
    if args.command == "run":
        return _command_run(args)
    if args.command == "sweep":
        return _command_sweep(args)
    if args.command == "exp":
        return _command_exp(args)
    if args.command == "gen":
        return _command_gen(args)
    if args.command == "prep":
        return _command_prep(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "route":
        return _command_route(args)
    if args.command == "cluster":
        return _command_cluster(args)
    if args.command == "cache":
        return _command_cache(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
