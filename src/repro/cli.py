"""Command-line interface: ``python -m repro`` / ``rescq``.

Subcommands
-----------

``list``
    Print the Table 3 benchmark registry (paper vs generated gate counts).
``run``
    Execute one benchmark under one or more schedulers and print cycles.
``sweep``
    Run one of the sensitivity sweeps (distance, error-rate, mst-period,
    compression) on a benchmark.
``prep``
    Print the Figure 16 preparation-statistics table.

The ``run`` and ``sweep`` subcommands accept ``--jobs N`` (fan simulation
jobs out over N worker processes) and ``--cache DIR`` (memoise finished jobs
on disk so repeated invocations skip already-measured points).  Both print an
``[exec]`` accounting line after the table; the table itself is byte-identical
for every ``--jobs`` value.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .analysis import (
    format_table,
    run_execution_comparison,
    sweep_compression,
    sweep_distance,
    sweep_error_rate,
    sweep_mst_period,
)
from .analysis.report import format_normalised_summary
from .exec import ExecutionEngine, ParallelExecutor, ResultCache, SerialExecutor
from .rus import PreparationModel
from .scheduling import AutoBraidScheduler, GreedyScheduler, RescqScheduler
from .sim import SimulationConfig, compare_schedulers
from .workloads import get_benchmark, table3_rows

__all__ = ["main", "build_parser"]

_SCHEDULERS = {
    "greedy": GreedyScheduler,
    "autobraid": AutoBraidScheduler,
    "rescq": RescqScheduler,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rescq",
        description="RESCQ reproduction: realtime scheduling for continuous-"
                    "angle QEC architectures")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the Table 3 benchmarks")

    run_parser = sub.add_parser("run", help="run one benchmark")
    run_parser.add_argument("benchmark", help="benchmark name, e.g. qft_n18")
    run_parser.add_argument("--schedulers", default="greedy,autobraid,rescq",
                            help="comma-separated scheduler names")
    run_parser.add_argument("--distance", type=int, default=7)
    run_parser.add_argument("--error-rate", type=float, default=1e-4)
    run_parser.add_argument("--mst-period", type=int, default=25)
    run_parser.add_argument("--compression", type=float, default=0.0)
    run_parser.add_argument("--seeds", type=int, default=3)
    _add_engine_arguments(run_parser)

    sweep_parser = sub.add_parser("sweep", help="run a sensitivity sweep")
    sweep_parser.add_argument("kind", choices=["distance", "error-rate",
                                               "mst-period", "compression"])
    sweep_parser.add_argument("benchmark", help="benchmark name, e.g. qft_n18")
    sweep_parser.add_argument("--seeds", type=int, default=2)
    _add_engine_arguments(sweep_parser)

    prep_parser = sub.add_parser("prep", help="Figure 16 preparation statistics")
    prep_parser.add_argument("--distances", default="5,7,9,11,13")
    prep_parser.add_argument("--error-rates", default="1e-3,1e-4,1e-5")
    return parser


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for simulation jobs "
                             "(default: 1, serial)")
    parser.add_argument("--cache", default=None, metavar="DIR",
                        help="directory for the on-disk result cache; "
                             "repeated runs skip already-measured points")


def _engine_from_args(args: argparse.Namespace) -> ExecutionEngine:
    if args.jobs < 1:
        raise SystemExit("--jobs must be >= 1")
    executor = (ParallelExecutor(max_workers=args.jobs) if args.jobs > 1
                else SerialExecutor())
    cache = None
    if args.cache:
        try:
            cache = ResultCache(args.cache)
        except OSError as exc:
            raise SystemExit(f"--cache {args.cache!r} is not a usable "
                             f"directory: {exc}")
    return ExecutionEngine(executor=executor, cache=cache)


def _schedulers_from_names(names: str) -> List:
    schedulers = []
    for name in names.split(","):
        name = name.strip().lower()
        if name not in _SCHEDULERS:
            raise SystemExit(f"unknown scheduler {name!r}; "
                             f"choose from {sorted(_SCHEDULERS)}")
        schedulers.append(_SCHEDULERS[name]())
    return schedulers


def _command_list() -> int:
    print(format_table(table3_rows(), title="Table 3 benchmarks"))
    return 0


def _command_run(args: argparse.Namespace) -> int:
    spec = get_benchmark(args.benchmark)
    circuit = spec.build()
    config = SimulationConfig(distance=args.distance,
                              physical_error_rate=args.error_rate,
                              mst_period=args.mst_period)
    schedulers = _schedulers_from_names(args.schedulers)
    engine = _engine_from_args(args)
    rows = compare_schedulers(schedulers, circuit, config=config,
                              seeds=args.seeds, compression=args.compression,
                              engine=engine)
    table = [{
        "scheduler": name,
        "mean_cycles": round(cell.mean_cycles, 1),
        "min": cell.min_cycles,
        "max": cell.max_cycles,
        "idle_fraction": round(cell.mean_idle_fraction, 3),
    } for name, cell in rows.items()]
    print(format_table(table, title=f"{spec.name} ({config.describe()})"))
    print(engine.describe())
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    spec = get_benchmark(args.benchmark)
    circuit = spec.build()
    engine = _engine_from_args(args)
    schedulers = [GreedyScheduler(), AutoBraidScheduler(), RescqScheduler()]
    if args.kind == "distance":
        rows = sweep_distance(schedulers, [circuit], seeds=args.seeds,
                              engine=engine)
    elif args.kind == "error-rate":
        rows = sweep_error_rate(schedulers, [circuit], seeds=args.seeds,
                                engine=engine)
    elif args.kind == "mst-period":
        rows = sweep_mst_period([RescqScheduler()], [circuit],
                                seeds=args.seeds, engine=engine)
    else:
        rows = sweep_compression(schedulers, [circuit], seeds=args.seeds,
                                 engine=engine)
    print(format_table([row.as_dict() for row in rows],
                       title=f"{args.kind} sweep for {spec.name}"))
    print(engine.describe())
    return 0


def _command_prep(args: argparse.Namespace) -> int:
    distances = [int(token) for token in args.distances.split(",")]
    error_rates = [float(token) for token in args.error_rates.split(",")]
    rows = []
    for p in error_rates:
        for d in distances:
            model = PreparationModel(distance=d, physical_error_rate=p)
            rows.append({
                "p": p,
                "d": d,
                "expected_attempts": round(model.expected_attempts(), 3),
                "expected_cycles": round(model.expected_cycles(), 3),
            })
    print(format_table(rows, title="Figure 16: |m_theta> preparation statistics"))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    if args.command == "sweep":
        return _command_sweep(args)
    if args.command == "prep":
        return _command_prep(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
