"""Compatibility shim: :class:`ActivityTracker` moved to :mod:`repro.kernel`.

The sliding-window activity tracker is part of the shared fabric state now
(every policy that routes on activity reads it through
:class:`~repro.kernel.fabric_state.FabricState`); this module re-exports it
for existing imports.
"""

from ..kernel.activity import ActivityTracker

__all__ = ["ActivityTracker"]
