"""Static layer-synchronous baseline schedulers (Section 5.1).

The paper compares RESCQ against two statically scheduled baselines:

* **greedy** shortest-path selection [Javadi-Abhari et al., MICRO'17]; and
* **AutoBraid** [Hua et al., MICRO'21], which additionally tries to pick
  edge-disjoint paths for the CNOTs of a layer.

Both are augmented with the naive Rz protocol of the STAR proposal: exactly
one dedicated ancilla per data qubit prepares |m_theta>, preparation starts
only when the gate's layer is reached, and there is no eager preparation of
the correction state.  Crucially, both are *layer-synchronous*: the next layer
starts only after every gate of the current layer has finished, which is where
most of their cycle count goes once non-deterministic Rz gates are present
(Section 3.1).

Since the kernel extraction the layer loop and barrier live in
:meth:`repro.kernel.SimulationKernel.run_layer_synchronous`; this module
implements only the per-gate execution mechanics and the per-layer CNOT
path-selection policies (:meth:`StaticLayerScheduler._choose_plan`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..circuits import Circuit, Gate
from ..fabric import GridLayout, Position
from ..kernel import LayerSyncPolicy, SimulationKernel, profile_timer
from ..lattice import RoutePlan
from ..rus import InjectionStrategy
from ..sim.config import SimulationConfig
from ..sim.results import GateTrace, SimulationResult
from .base import Scheduler, gate_kind

__all__ = ["StaticLayerScheduler", "GreedyScheduler", "AutoBraidScheduler"]


class _StaticLayerPolicy(LayerSyncPolicy):
    """Per-gate execution mechanics of the layer-synchronous baselines.

    Plan *choice* is delegated back to the owning scheduler's
    :meth:`StaticLayerScheduler._choose_plan`, which is all that
    distinguishes greedy from AutoBraid.
    """

    def __init__(self, kernel: SimulationKernel,
                 scheduler: "StaticLayerScheduler") -> None:
        self.kernel = kernel
        self.scheduler = scheduler
        self.config = kernel.config
        self.costs = kernel.config.costs
        self.layout = kernel.layout
        self.rng = kernel.rng
        self.prep_model = kernel.config.preparation_model()
        self.fabric = kernel.fabric
        self.lifecycle = kernel.lifecycle
        self.routing = kernel.routing
        self.profile = kernel.profile
        self.orientation = kernel.fabric.orientation
        #: How many times each ancilla has been claimed within the open layer
        #: (AutoBraid uses this to spread paths out).
        self.claimed: Dict[Position, int] = {}
        #: qubit -> (prep ancilla, injection helper, injection cycles); the
        #: dedicated-block geometry is static, so it is resolved once.
        self._rz_geometry: Dict[int, Tuple[Position, Optional[Position], int]] = {}

    # -- kernel hooks ------------------------------------------------------------

    def begin_layer(self, layer_start: int) -> None:
        self.claimed = {}

    def execute_gate(self, gate_index: int, gate: Gate,
                     layer_start: int) -> int:
        kind = gate_kind(gate)
        if kind == "cnot":
            return self._execute_cnot(gate_index, gate, layer_start)
        if kind == "rz":
            return self._execute_rz(gate_index, gate, layer_start)
        if kind == "h":
            return self._execute_hadamard(gate_index, gate, layer_start)
        return layer_start  # pragma: no cover - free gates are stripped beforehand

    # -- gate executors ----------------------------------------------------------

    def _execute_cnot(self, gate_index: int, gate: Gate,
                      layer_start: int) -> int:
        control, target = gate.control, gate.target
        with profile_timer(self.profile, "routing"):
            plans = self.routing.enumerate_plans(self.orientation,
                                                 control, target)
        if not plans:
            raise RuntimeError(
                f"no ancilla path between qubits {control} and {target}; "
                "the layout's ancilla fabric is disconnected")
        plan = self.scheduler._choose_plan(plans, self.claimed, self.config)
        duration = plan.duration(self.costs)
        resources = plan.ancillas_used
        anc_free = self.fabric.anc_free
        start = max(layer_start, self.fabric.data_free[control],
                    self.fabric.data_free[target],
                    *(anc_free[pos] for pos in resources))
        end = start + duration
        for position in resources:
            self.fabric.occupy_ancilla(position, start, end)
            self.claimed[position] = self.claimed.get(position, 0) + 1
        self.fabric.occupy_data(control, start, end)
        self.fabric.occupy_data(target, start, end)
        if plan.control_rotation:
            self.orientation.rotate(control)
        if plan.target_rotation:
            self.orientation.rotate(target)
        if self.profile is not None:
            self.profile.add("sim_cnot_cycles", float(duration))
        self.lifecycle.traces.append(GateTrace(
            gate_index, "cnot", gate.qubits,
            scheduled_cycle=layer_start,
            start_cycle=start, end_cycle=end,
            edge_rotations=plan.num_rotations))
        return end

    def _dedicated_prep_ancilla(self, qubit: int) -> Position:
        """The single ancilla the STAR baseline uses for this qubit's |m_theta>.

        Figure 1d always prepares in one fixed ancilla of the atomic block;
        we use the first available block ancilla (east, then south, then
        south-east), falling back to any ancilla neighbour after compression.
        """
        row, col = self.layout.data_position(qubit)
        for candidate in ((row, col + 1), (row + 1, col), (row + 1, col + 1)):
            if self.layout.is_ancilla(candidate):
                return candidate
        neighbors = self.layout.ancilla_neighbors_of_qubit(qubit)
        if not neighbors:
            raise RuntimeError(f"data qubit {qubit} has no ancilla neighbour")
        return neighbors[0]

    def _rz_resources(self, qubit: int) -> Tuple[Position, Optional[Position], int]:
        """(prep ancilla, helper, injection cycles) for the qubit — memoised.

        A CNOT-style injection needs a second ancilla (Table 1); use another
        free neighbour when one exists, otherwise fall back to the 1-ancilla
        ZZ strategy (compressed blocks may simply not have a second tile).
        """
        cached = self._rz_geometry.get(qubit)
        if cached is not None:
            return cached
        prep_ancilla = self._dedicated_prep_ancilla(qubit)
        strategy = self.config.baseline_injection_strategy
        injection_cycles = self.costs.injection_cycles(strategy.value)
        helper: Optional[Position] = None
        if strategy is InjectionStrategy.CNOT:
            for candidate in self.layout.ancilla_neighbors_of_qubit(qubit):
                if candidate != prep_ancilla:
                    helper = candidate
                    break
            if helper is None:
                for candidate in self.layout.ancilla_neighbors(prep_ancilla):
                    if candidate != prep_ancilla:
                        helper = candidate
                        break
            if helper is None:
                injection_cycles = self.costs.zz_injection_cycles
        result = (prep_ancilla, helper, injection_cycles)
        self._rz_geometry[qubit] = result
        return result

    def _execute_rz(self, gate_index: int, gate: Gate,
                    layer_start: int) -> int:
        qubit = gate.qubits[0]
        prep_ancilla, helper, injection_cycles = self._rz_resources(qubit)
        fabric = self.fabric

        limit = self.scheduler.injection_limit(gate)
        clock = max(layer_start, fabric.data_free[qubit])
        prep_attempts = 0
        injections = 0
        first_start: Optional[int] = None
        for _attempt in range(limit):
            # Preparation on the dedicated ancilla, no early start (baseline).
            prep_start = max(clock, fabric.anc_free[prep_ancilla])
            prep_duration = self.prep_model.sample_cycles(self.rng)
            prep_attempts += 1
            prep_end = prep_start + prep_duration
            fabric.occupy_ancilla(prep_ancilla, prep_start, prep_end)
            if first_start is None:
                first_start = prep_start
            if self.profile is not None:
                self.profile.add("sim_prep_cycles", float(prep_duration))

            # Injection occupies the data qubit, the prep ancilla and the helper.
            injection_start = max(prep_end, fabric.data_free[qubit])
            if helper is not None:
                injection_start = max(injection_start, fabric.anc_free[helper])
            injection_end = injection_start + injection_cycles
            fabric.occupy_ancilla(prep_ancilla, injection_start, injection_end)
            if helper is not None:
                fabric.occupy_ancilla(helper, injection_start, injection_end)
            fabric.occupy_data(qubit, injection_start, injection_end)
            injections += 1
            if self.profile is not None:
                self.profile.add("sim_injection_cycles",
                                 float(injection_cycles))
            clock = injection_end
            if self.rng.random() < 0.5:
                break
            # Failure: the correction R(2^k theta) restarts the whole protocol.
        self.lifecycle.traces.append(GateTrace(
            gate_index, "rz", gate.qubits,
            scheduled_cycle=layer_start,
            start_cycle=first_start if first_start is not None else layer_start,
            end_cycle=clock,
            injections=injections,
            preparation_attempts=prep_attempts))
        return clock

    def _execute_hadamard(self, gate_index: int, gate: Gate,
                          layer_start: int) -> int:
        qubit = gate.qubits[0]
        neighbors = self.layout.ancilla_neighbors_of_qubit(qubit)
        if not neighbors:
            raise RuntimeError(f"data qubit {qubit} has no ancilla neighbour")
        anc_free = self.fabric.anc_free
        helper = min(neighbors, key=lambda pos: anc_free[pos])
        start = max(layer_start, self.fabric.data_free[qubit], anc_free[helper])
        end = start + self.costs.hadamard_cycles
        self.fabric.occupy_ancilla(helper, start, end)
        self.fabric.occupy_data(qubit, start, end)
        # A logical Hadamard exchanges the X and Z boundaries of the patch.
        self.orientation.rotate(qubit)
        if self.profile is not None:
            self.profile.add("sim_hadamard_cycles",
                             float(self.costs.hadamard_cycles))
        self.lifecycle.traces.append(GateTrace(
            gate_index, "h", gate.qubits,
            scheduled_cycle=layer_start,
            start_cycle=start, end_cycle=end))
        return end


class StaticLayerScheduler(Scheduler):
    """Common machinery of the layer-synchronous baselines.

    Subclasses customise only :meth:`_choose_plan`, the CNOT path-selection
    policy applied within a layer.
    """

    name = "static"

    # -- CNOT path selection (policy hook) -----------------------------------------

    def _choose_plan(self, plans: List[RoutePlan],
                     claimed: Dict[Position, int],
                     config: SimulationConfig) -> RoutePlan:
        raise NotImplementedError

    # -- main entry point -------------------------------------------------------------

    def run(self, circuit: Circuit, layout: GridLayout,
            config: SimulationConfig, seed: int = 0) -> SimulationResult:
        scheduled = self.prepare_circuit(circuit)
        kernel = SimulationKernel(scheduled, layout, config, seed,
                                  scheduler_name=self.name,
                                  benchmark=circuit.name)
        policy = _StaticLayerPolicy(kernel, self)
        return kernel.run_layer_synchronous(policy)


class GreedyScheduler(StaticLayerScheduler):
    """Greedy shortest-path baseline [Javadi-Abhari et al. 2017]."""

    name = "greedy"

    def _choose_plan(self, plans: List[RoutePlan],
                     claimed: Dict[Position, int],
                     config: SimulationConfig) -> RoutePlan:
        return min(plans, key=lambda plan: (plan.duration(config.costs),
                                            len(plan.path)))


class AutoBraidScheduler(StaticLayerScheduler):
    """AutoBraid-style baseline [Hua et al. 2021].

    AutoBraid routes the CNOTs of a layer over edge-disjoint paths where
    possible.  Within our layer-analytic model this is expressed as a path
    choice that minimises overlap with ancillas already claimed by earlier
    CNOTs of the same layer before considering duration and length.
    """

    name = "autobraid"

    def _choose_plan(self, plans: List[RoutePlan],
                     claimed: Dict[Position, int],
                     config: SimulationConfig) -> RoutePlan:
        def overlap(plan: RoutePlan) -> int:
            return sum(claimed.get(pos, 0) for pos in plan.ancillas_used)

        return min(plans, key=lambda plan: (overlap(plan),
                                            plan.duration(config.costs),
                                            len(plan.path)))
