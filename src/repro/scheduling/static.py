"""Static layer-synchronous baseline schedulers (Section 5.1).

The paper compares RESCQ against two statically scheduled baselines:

* **greedy** shortest-path selection [Javadi-Abhari et al., MICRO'17]; and
* **AutoBraid** [Hua et al., MICRO'21], which additionally tries to pick
  edge-disjoint paths for the CNOTs of a layer.

Both are augmented with the naive Rz protocol of the STAR proposal: exactly
one dedicated ancilla per data qubit prepares |m_theta>, preparation starts
only when the gate's layer is reached, and there is no eager preparation of
the correction state.  Crucially, both are *layer-synchronous*: the next layer
starts only after every gate of the current layer has finished, which is where
most of their cycle count goes once non-deterministic Rz gates are present
(Section 3.1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..circuits import Circuit, Gate, GateType
from ..fabric import Edge, GridLayout, Position
from ..lattice import OrientationTracker, RoutePlan, enumerate_cnot_plans
from ..rus import InjectionStrategy
from ..sim.config import SimulationConfig
from ..sim.results import GateTrace, SimulationResult
from .base import Scheduler, gate_kind

__all__ = ["StaticLayerScheduler", "GreedyScheduler", "AutoBraidScheduler"]


class StaticLayerScheduler(Scheduler):
    """Common machinery of the layer-synchronous baselines.

    Subclasses customise only :meth:`_choose_plan`, the CNOT path-selection
    policy applied within a layer.
    """

    name = "static"

    # -- CNOT path selection (policy hook) -----------------------------------------

    def _choose_plan(self, plans: List[RoutePlan],
                     claimed: Dict[Position, int],
                     config: SimulationConfig) -> RoutePlan:
        raise NotImplementedError

    # -- main entry point -------------------------------------------------------------

    def run(self, circuit: Circuit, layout: GridLayout,
            config: SimulationConfig, seed: int = 0) -> SimulationResult:
        rng = self.make_rng(seed)
        scheduled = self.prepare_circuit(circuit)
        prep_model = config.preparation_model()
        orientation = OrientationTracker(scheduled.num_qubits)
        costs = config.costs

        ancilla_free: Dict[Position, int] = {
            pos: 0 for pos in layout.ancilla_positions()}
        data_free: List[int] = [0] * scheduled.num_qubits
        data_busy: Dict[int, int] = {q: 0 for q in range(scheduled.num_qubits)}
        traces: List[GateTrace] = []

        clock = 0
        for layer in scheduled.layers():
            layer_start = clock
            layer_end = layer_start
            #: How many times each ancilla has been claimed within this layer
            #: (AutoBraid uses this to spread paths out).
            claimed: Dict[Position, int] = {}
            for gate_index in layer:
                gate = scheduled[gate_index]
                kind = gate_kind(gate)
                if kind == "cnot":
                    end = self._execute_cnot(
                        gate_index, gate, layout, orientation, config,
                        layer_start, ancilla_free, data_free, data_busy,
                        claimed, traces)
                elif kind == "rz":
                    end = self._execute_rz(
                        gate_index, gate, layout, orientation, config,
                        prep_model, rng, layer_start, ancilla_free, data_free,
                        data_busy, traces)
                elif kind == "h":
                    end = self._execute_hadamard(
                        gate_index, gate, layout, orientation, config,
                        layer_start, ancilla_free, data_free, data_busy, traces)
                else:  # pragma: no cover - free gates are stripped beforehand
                    end = layer_start
                layer_end = max(layer_end, end)
                if layer_end - layer_start > config.max_cycles:
                    raise RuntimeError("layer exceeded max_cycles; "
                                       "likely an unroutable CNOT")
            # Layer barrier: everything waits for the slowest gate.
            clock = layer_end
            for position in ancilla_free:
                ancilla_free[position] = max(ancilla_free[position], clock)
            for qubit in range(scheduled.num_qubits):
                data_free[qubit] = max(data_free[qubit], clock)

        result = SimulationResult(
            benchmark=circuit.name,
            scheduler=self.name,
            seed=seed,
            total_cycles=clock,
            num_qubits=scheduled.num_qubits,
            traces=traces,
            data_busy_cycles=data_busy,
            config_summary=config.describe(),
        )
        return result

    # -- gate executors --------------------------------------------------------------

    def _execute_cnot(self, gate_index: int, gate: Gate, layout: GridLayout,
                      orientation: OrientationTracker, config: SimulationConfig,
                      layer_start: int, ancilla_free: Dict[Position, int],
                      data_free: List[int], data_busy: Dict[int, int],
                      claimed: Dict[Position, int],
                      traces: List[GateTrace]) -> int:
        control, target = gate.control, gate.target
        plans = enumerate_cnot_plans(layout, orientation, control, target)
        if not plans:
            raise RuntimeError(
                f"no ancilla path between qubits {control} and {target}; "
                "the layout's ancilla fabric is disconnected")
        plan = self._choose_plan(plans, claimed, config)
        duration = plan.duration(config.costs)
        resources = plan.ancillas_used
        start = max(layer_start, data_free[control], data_free[target],
                    *(ancilla_free[pos] for pos in resources))
        end = start + duration
        for position in resources:
            ancilla_free[position] = end
            claimed[position] = claimed.get(position, 0) + 1
        data_free[control] = end
        data_free[target] = end
        data_busy[control] += end - start
        data_busy[target] += end - start
        if plan.control_rotation:
            orientation.rotate(control)
        if plan.target_rotation:
            orientation.rotate(target)
        traces.append(GateTrace(gate_index, "cnot", gate.qubits,
                                scheduled_cycle=layer_start,
                                start_cycle=start, end_cycle=end,
                                edge_rotations=plan.num_rotations))
        return end

    def _dedicated_prep_ancilla(self, layout: GridLayout,
                                qubit: int) -> Position:
        """The single ancilla the STAR baseline uses for this qubit's |m_theta>.

        Figure 1d always prepares in one fixed ancilla of the atomic block;
        we use the first available block ancilla (east, then south, then
        south-east), falling back to any ancilla neighbour after compression.
        """
        row, col = layout.data_position(qubit)
        for candidate in ((row, col + 1), (row + 1, col), (row + 1, col + 1)):
            if layout.is_ancilla(candidate):
                return candidate
        neighbors = layout.ancilla_neighbors_of_qubit(qubit)
        if not neighbors:
            raise RuntimeError(f"data qubit {qubit} has no ancilla neighbour")
        return neighbors[0]

    def _execute_rz(self, gate_index: int, gate: Gate, layout: GridLayout,
                    orientation: OrientationTracker, config: SimulationConfig,
                    prep_model, rng: np.random.Generator, layer_start: int,
                    ancilla_free: Dict[Position, int], data_free: List[int],
                    data_busy: Dict[int, int],
                    traces: List[GateTrace]) -> int:
        qubit = gate.qubits[0]
        prep_ancilla = self._dedicated_prep_ancilla(layout, qubit)
        strategy = config.baseline_injection_strategy
        injection_cycles = config.costs.injection_cycles(strategy.value)

        # A CNOT-style injection needs a second ancilla (Table 1); use another
        # free neighbour when one exists, otherwise fall back to the 1-ancilla
        # ZZ strategy (compressed blocks may simply not have a second tile).
        helper: Optional[Position] = None
        if strategy is InjectionStrategy.CNOT:
            for candidate in layout.ancilla_neighbors_of_qubit(qubit):
                if candidate != prep_ancilla:
                    helper = candidate
                    break
            if helper is None:
                for candidate in layout.ancilla_neighbors(prep_ancilla):
                    if candidate != prep_ancilla:
                        helper = candidate
                        break
            if helper is None:
                injection_cycles = config.costs.zz_injection_cycles

        limit = self.injection_limit(gate)
        clock = max(layer_start, data_free[qubit])
        prep_attempts = 0
        injections = 0
        busy_added = 0
        first_start: Optional[int] = None
        for _attempt in range(limit):
            # Preparation on the dedicated ancilla, no early start (baseline).
            prep_start = max(clock, ancilla_free[prep_ancilla])
            prep_duration = prep_model.sample_cycles(rng)
            prep_attempts += 1
            prep_end = prep_start + prep_duration
            ancilla_free[prep_ancilla] = prep_end
            if first_start is None:
                first_start = prep_start

            # Injection occupies the data qubit, the prep ancilla and the helper.
            injection_start = max(prep_end, data_free[qubit])
            if helper is not None:
                injection_start = max(injection_start, ancilla_free[helper])
            injection_end = injection_start + injection_cycles
            ancilla_free[prep_ancilla] = injection_end
            if helper is not None:
                ancilla_free[helper] = injection_end
            data_free[qubit] = injection_end
            busy_added += injection_end - injection_start
            injections += 1
            clock = injection_end
            if rng.random() < 0.5:
                break
            # Failure: the correction R(2^k theta) restarts the whole protocol.
        data_busy[qubit] += busy_added
        traces.append(GateTrace(gate_index, "rz", gate.qubits,
                                scheduled_cycle=layer_start,
                                start_cycle=first_start if first_start is not None
                                else layer_start,
                                end_cycle=clock,
                                injections=injections,
                                preparation_attempts=prep_attempts))
        return clock

    def _execute_hadamard(self, gate_index: int, gate: Gate, layout: GridLayout,
                          orientation: OrientationTracker,
                          config: SimulationConfig, layer_start: int,
                          ancilla_free: Dict[Position, int],
                          data_free: List[int], data_busy: Dict[int, int],
                          traces: List[GateTrace]) -> int:
        qubit = gate.qubits[0]
        neighbors = layout.ancilla_neighbors_of_qubit(qubit)
        if not neighbors:
            raise RuntimeError(f"data qubit {qubit} has no ancilla neighbour")
        helper = min(neighbors, key=lambda pos: ancilla_free[pos])
        start = max(layer_start, data_free[qubit], ancilla_free[helper])
        end = start + config.costs.hadamard_cycles
        ancilla_free[helper] = end
        data_free[qubit] = end
        data_busy[qubit] += end - start
        # A logical Hadamard exchanges the X and Z boundaries of the patch.
        orientation.rotate(qubit)
        traces.append(GateTrace(gate_index, "h", gate.qubits,
                                scheduled_cycle=layer_start,
                                start_cycle=start, end_cycle=end))
        return end


class GreedyScheduler(StaticLayerScheduler):
    """Greedy shortest-path baseline [Javadi-Abhari et al. 2017]."""

    name = "greedy"

    def _choose_plan(self, plans: List[RoutePlan],
                     claimed: Dict[Position, int],
                     config: SimulationConfig) -> RoutePlan:
        return min(plans, key=lambda plan: (plan.duration(config.costs),
                                            len(plan.path)))


class AutoBraidScheduler(StaticLayerScheduler):
    """AutoBraid-style baseline [Hua et al. 2021].

    AutoBraid routes the CNOTs of a layer over edge-disjoint paths where
    possible.  Within our layer-analytic model this is expressed as a path
    choice that minimises overlap with ancillas already claimed by earlier
    CNOTs of the same layer before considering duration and length.
    """

    name = "autobraid"

    def _choose_plan(self, plans: List[RoutePlan],
                     claimed: Dict[Position, int],
                     config: SimulationConfig) -> RoutePlan:
        def overlap(plan: RoutePlan) -> int:
            return sum(claimed.get(pos, 0) for pos in plan.ancillas_used)

        return min(plans, key=lambda plan: (overlap(plan),
                                            plan.duration(config.costs),
                                            len(plan.path)))
