"""Activity-weighted minimum spanning tree maintenance (Sections 4.2, 5.4.1).

RESCQ routes CNOTs along the minimax-activity path between the control and
target attachment ancillas.  The classical controller:

* builds an undirected graph over ancilla tiles whose edge weights are the
  maximum activity of the two endpoints,
* computes its minimum spanning tree — the MST contains, for every pair of
  vertices, the path whose maximum edge weight is minimal (the minimax path),
* starts a new computation every ``k`` cycles; each computation takes
  ``tau_mst`` cycles, so the tree the scheduler queries is always somewhat
  stale (Figure 8) but quantum execution never stalls.

The module also provides the incremental-update structure analysed in
Section 5.4.1 (O(1) insertions on grid cycles, O(max(rows, cols)) deletions)
used by the classical-overhead benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

import networkx as nx
import numpy as np

from ..fabric import GridLayout, Position
from ..fabric.flat import FlatGrid

__all__ = ["build_activity_graph", "AncillaMst", "AsyncMstPipeline",
           "IncrementalMst"]


def build_activity_graph(layout: GridLayout,
                         activity: Dict[Position, float]) -> nx.Graph:
    """Weighted graph over ancilla tiles: w(u, v) = max(activity_u, activity_v)."""
    graph = nx.Graph()
    ancillas = layout.ancilla_positions()
    graph.add_nodes_from(ancillas)
    ancilla_set = set(ancillas)
    for position in ancillas:
        for neighbor in layout.neighbors(position):
            if neighbor in ancilla_set and position < neighbor:
                weight = max(activity.get(position, 0.0),
                             activity.get(neighbor, 0.0))
                graph.add_edge(position, neighbor, weight=weight)
    return graph


class AncillaMst:
    """An immutable activity-weighted MST snapshot with path queries.

    Construction is array-based over the layout's
    :class:`~repro.fabric.flat.FlatGrid`: edge weights are computed in one
    numpy pass, Kruskal runs as a stable argsort plus a union-find sweep,
    and the resulting forest is rooted once so that path queries are LCA
    walks over parent/depth arrays instead of per-pair BFS.

    Tree identity with the historical networkx implementation: the flat
    edge arrays enumerate edges in the exact insertion order of
    :func:`build_activity_graph` (slot-ascending, then Edge order), and
    ``nx.minimum_spanning_tree(..., algorithm="kruskal")`` processes edges
    with a *stable* sort over that same order — so a stable argsort admits
    the identical edge set.  Tree paths are unique, so path queries agree
    regardless of traversal order.
    """

    def __init__(self, layout: GridLayout,
                 activity: Dict[Position, float],
                 snapshot_cycle: int = 0) -> None:
        self.snapshot_cycle = snapshot_cycle
        self.activity = dict(activity)
        flat = FlatGrid.for_layout(layout)
        self._flat = flat
        num = flat.num_ancilla
        positions = flat.anc_positions

        act = np.zeros(num, dtype=np.float64)
        for slot, position in enumerate(positions):
            value = activity.get(position)
            if value:
                act[slot] = value
        self._act = act

        # Kruskal over the flat edge arrays (see class docstring).
        tree_u: List[int] = []
        tree_v: List[int] = []
        if flat.edge_u.size:
            weights = np.maximum(act[flat.edge_u], act[flat.edge_v])
            order = np.argsort(weights, kind="stable")
            uf_parent = list(range(num))

            def find(node: int) -> int:
                root = node
                while uf_parent[root] != root:
                    root = uf_parent[root]
                while uf_parent[node] != root:
                    uf_parent[node], node = root, uf_parent[node]
                return root

            edge_u = flat.edge_u.tolist()
            edge_v = flat.edge_v.tolist()
            for edge_index in order.tolist():
                root_u = find(edge_u[edge_index])
                root_v = find(edge_v[edge_index])
                if root_u != root_v:
                    uf_parent[root_u] = root_v
                    tree_u.append(edge_u[edge_index])
                    tree_v.append(edge_v[edge_index])
        self._tree_u = tree_u
        self._tree_v = tree_v

        # Root every component at its smallest slot: parent/depth/component
        # arrays answer any path query with an LCA walk.
        adjacency: List[List[int]] = [[] for _ in range(num)]
        for u, v in zip(tree_u, tree_v):
            adjacency[u].append(v)
            adjacency[v].append(u)
        parent = np.full(num, -1, dtype=np.int32)
        depth = np.zeros(num, dtype=np.int32)
        component = np.full(num, -1, dtype=np.int32)
        for root in range(num):
            if component[root] >= 0:
                continue
            component[root] = root
            parent[root] = root
            stack = [root]
            while stack:
                node = stack.pop()
                for neighbor in adjacency[node]:
                    if component[neighbor] < 0:
                        component[neighbor] = root
                        parent[neighbor] = node
                        depth[neighbor] = depth[node] + 1
                        stack.append(neighbor)
        self._parent = parent
        self._depth = depth
        self._component = component
        self._lazy_tree: Optional[nx.Graph] = None

        #: Memoised path queries — the tree is immutable, so every
        #: (start, goal) pair resolves to the same unique path forever.
        self._path_cache: Dict[Tuple[Position, Position],
                               Optional[List[Position]]] = {}

    @property
    def tree(self) -> nx.Graph:
        """The MST as a networkx graph (built lazily, for analysis code)."""
        if self._lazy_tree is None:
            tree = nx.Graph()
            tree.add_nodes_from(self._flat.anc_positions)
            act = self._act
            positions = self._flat.anc_positions
            for u, v in zip(self._tree_u, self._tree_v):
                tree.add_edge(positions[u], positions[v],
                              weight=max(act[u], act[v]))
            self._lazy_tree = tree
        return self._lazy_tree

    def contains(self, position: Position) -> bool:
        return self._flat.slot_of(position) >= 0

    def path(self, start: Position, goal: Position) -> Optional[List[Position]]:
        """The unique tree path between two ancilla tiles (inclusive).

        Returns ``None`` when either endpoint is not in the tree or the tree
        is disconnected between them (possible only for degenerate layouts).
        Paths are memoised (the tree never changes); treat the returned list
        as read-only.
        """
        key = (start, goal)
        cached = self._path_cache.get(key, _PATH_MISS)
        if cached is not _PATH_MISS:
            return cached
        path = self._compute_path(start, goal)
        self._path_cache[key] = path
        return path

    def _compute_path(self, start: Position,
                      goal: Position) -> Optional[List[Position]]:
        flat = self._flat
        start_slot = flat.slot_of(start)
        goal_slot = flat.slot_of(goal)
        if start_slot < 0 or goal_slot < 0:
            return None
        if start_slot == goal_slot:
            return [start]
        component = self._component
        if component[start_slot] != component[goal_slot]:
            return None
        parent = self._parent
        depth = self._depth
        up_from_start = [start_slot]
        up_from_goal = [goal_slot]
        a, b = start_slot, goal_slot
        while depth[a] > depth[b]:
            a = parent[a]
            up_from_start.append(a)
        while depth[b] > depth[a]:
            b = parent[b]
            up_from_goal.append(b)
        while a != b:
            a = parent[a]
            up_from_start.append(a)
            b = parent[b]
            up_from_goal.append(b)
        positions = flat.anc_positions
        path = [positions[slot] for slot in up_from_start]
        path.extend(positions[slot] for slot in reversed(up_from_goal[:-1]))
        return path

    def bottleneck_activity(self, start: Position, goal: Position) -> float:
        """Maximum edge weight along the tree path (the minimax objective)."""
        path = self.path(start, goal)
        if not path or len(path) == 1:
            return 0.0
        # Every edge weight is max(act_u, act_v), so the path maximum equals
        # the maximum activity over all path nodes.
        slot_of = self._flat.slot_of
        act = self._act
        return float(max(act[slot_of(position)] for position in path))


#: Distinct sentinel: path caches legitimately store ``None`` values.
_PATH_MISS = object()


@dataclass
class _PendingComputation:
    started_cycle: int
    available_cycle: int
    activity_snapshot: Dict[Position, float]


class AsyncMstPipeline:
    """The asynchronous MST recomputation pipeline of Figure 8.

    A new computation is *started* every ``period`` (= ``k``) cycles using the
    activity observed at the start cycle; it becomes *available* ``latency``
    (= ``tau_mst``) cycles later.  The scheduler always queries the most
    recently *available* tree — never stalling the quantum machine, at the
    cost of acting on information up to ``latency + period`` cycles old.
    """

    def __init__(self, layout: GridLayout, period: int, latency: int) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.layout = layout
        self.period = period
        self.latency = latency
        self._pending: List[_PendingComputation] = []
        self._current: Optional[AncillaMst] = None
        self._last_started: Optional[int] = None
        self.computations_started = 0
        self.computations_completed = 0

    @property
    def current(self) -> Optional[AncillaMst]:
        """The latest available MST (``None`` until the first one finishes)."""
        return self._current

    def tick(self, cycle: int,
             activity: Union[Dict[Position, float],
                             Callable[[], Dict[Position, float]]]) -> None:
        """Advance the pipeline to ``cycle``.

        Starts a new computation if a period boundary has been crossed and
        publishes any computation whose latency has elapsed.  ``activity`` is
        the live activity snapshot used for a newly started computation — or
        a zero-argument callable producing it, which is only invoked when a
        computation actually starts (snapshots are expensive and most ticks
        start nothing).
        """
        # Publish finished computations (oldest first).
        still_pending: List[_PendingComputation] = []
        for pending in self._pending:
            if pending.available_cycle <= cycle:
                self._current = AncillaMst(self.layout, pending.activity_snapshot,
                                           snapshot_cycle=pending.started_cycle)
                self.computations_completed += 1
            else:
                still_pending.append(pending)
        self._pending = still_pending

        # Start a new computation at period boundaries.
        if self._last_started is None or cycle - self._last_started >= self.period:
            snapshot = activity() if callable(activity) else activity
            self._pending.append(_PendingComputation(
                started_cycle=cycle,
                available_cycle=cycle + self.latency,
                activity_snapshot=dict(snapshot),
            ))
            self._last_started = cycle
            self.computations_started += 1

    def next_boundary(self, cycle: int) -> int:
        """The next cycle at which the pipeline state can change."""
        candidates = [pending.available_cycle for pending in self._pending]
        if self._last_started is not None:
            candidates.append(self._last_started + self.period)
        else:
            candidates.append(cycle)
        future = [c for c in candidates if c > cycle]
        return min(future) if future else cycle + self.period


class IncrementalMst:
    """Incrementally maintained MST used for the Section 5.4.1 overhead study.

    Two update cases matter on a grid graph:

    * an edge *not* on the MST whose weight decreased — insert it and evict the
      heaviest edge of the (grid-bounded, O(1)-size) cycle it creates;
    * an edge *on* the MST whose weight increased — remove it and reconnect the
      two components with the lightest crossing edge (O(max(rows, cols)) work
      in the paper's analysis; here a component-labelling pass).

    The implementation favours clarity over raw speed; the benchmark compares
    it against full recomputation to demonstrate the asymptotic win.
    """

    def __init__(self, layout: GridLayout,
                 activity: Optional[Dict[Position, float]] = None) -> None:
        self.layout = layout
        self.graph = build_activity_graph(layout, activity or {})
        self._tree = nx.minimum_spanning_tree(self.graph, weight="weight")

    @property
    def tree(self) -> nx.Graph:
        return self._tree

    def total_weight(self) -> float:
        return sum(data["weight"] for _, _, data in self._tree.edges(data=True))

    def update_edge(self, u: Position, v: Position, weight: float) -> None:
        """Update the weight of edge ``(u, v)`` and repair the MST."""
        if not self.graph.has_edge(u, v):
            raise KeyError(f"({u}, {v}) is not an edge of the ancilla graph")
        old_weight = self.graph.edges[u, v]["weight"]
        self.graph.edges[u, v]["weight"] = weight
        on_tree = self._tree.has_edge(u, v)

        if on_tree:
            self._tree.edges[u, v]["weight"] = weight
            if weight > old_weight:
                # Case 2: removal + cheapest reconnecting edge.
                self._tree.remove_edge(u, v)
                component_u = nx.node_connected_component(self._tree, u)
                best = None
                for a, b, data in self.graph.edges(data=True):
                    crosses = (a in component_u) != (b in component_u)
                    if crosses and (best is None or data["weight"] < best[2]):
                        best = (a, b, data["weight"])
                if best is None:  # pragma: no cover - disconnected ancilla graph
                    self._tree.add_edge(u, v, weight=weight)
                else:
                    self._tree.add_edge(best[0], best[1], weight=best[2])
        else:
            if weight < old_weight:
                # Case 1: insertion + evict the heaviest edge of the new cycle.
                try:
                    cycle_path = nx.shortest_path(self._tree, u, v)
                except nx.NetworkXNoPath:  # pragma: no cover - degenerate
                    self._tree.add_edge(u, v, weight=weight)
                    return
                heaviest = max(zip(cycle_path, cycle_path[1:]),
                               key=lambda edge: self._tree.edges[edge]["weight"])
                if self._tree.edges[heaviest]["weight"] > weight:
                    self._tree.remove_edge(*heaviest)
                    self._tree.add_edge(u, v, weight=weight)

    def matches_full_recompute(self) -> bool:
        """Sanity check: incremental tree weight equals a fresh Kruskal run."""
        fresh = nx.minimum_spanning_tree(self.graph, weight="weight")
        fresh_weight = sum(d["weight"] for _, _, d in fresh.edges(data=True))
        return abs(self.total_weight() - fresh_weight) < 1e-9
