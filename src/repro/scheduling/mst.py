"""Activity-weighted minimum spanning tree maintenance (Sections 4.2, 5.4.1).

RESCQ routes CNOTs along the minimax-activity path between the control and
target attachment ancillas.  The classical controller:

* builds an undirected graph over ancilla tiles whose edge weights are the
  maximum activity of the two endpoints,
* computes its minimum spanning tree — the MST contains, for every pair of
  vertices, the path whose maximum edge weight is minimal (the minimax path),
* starts a new computation every ``k`` cycles; each computation takes
  ``tau_mst`` cycles, so the tree the scheduler queries is always somewhat
  stale (Figure 8) but quantum execution never stalls.

The module also provides the incremental-update structure analysed in
Section 5.4.1 (O(1) insertions on grid cycles, O(max(rows, cols)) deletions)
used by the classical-overhead benchmark.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

import networkx as nx

from ..fabric import GridLayout, Position

__all__ = ["build_activity_graph", "AncillaMst", "AsyncMstPipeline",
           "IncrementalMst"]


def build_activity_graph(layout: GridLayout,
                         activity: Dict[Position, float]) -> nx.Graph:
    """Weighted graph over ancilla tiles: w(u, v) = max(activity_u, activity_v)."""
    graph = nx.Graph()
    ancillas = layout.ancilla_positions()
    graph.add_nodes_from(ancillas)
    ancilla_set = set(ancillas)
    for position in ancillas:
        for neighbor in layout.neighbors(position):
            if neighbor in ancilla_set and position < neighbor:
                weight = max(activity.get(position, 0.0),
                             activity.get(neighbor, 0.0))
                graph.add_edge(position, neighbor, weight=weight)
    return graph


class AncillaMst:
    """An immutable activity-weighted MST snapshot with path queries."""

    def __init__(self, layout: GridLayout,
                 activity: Dict[Position, float],
                 snapshot_cycle: int = 0) -> None:
        self.snapshot_cycle = snapshot_cycle
        self.activity = dict(activity)
        graph = build_activity_graph(layout, activity)
        if graph.number_of_nodes() == 0:
            self._tree = nx.Graph()
        else:
            self._tree = nx.minimum_spanning_tree(graph, weight="weight",
                                                  algorithm="kruskal")
        self._adjacency: Dict[Position, List[Position]] = {
            node: sorted(self._tree.neighbors(node)) for node in self._tree.nodes}
        #: Memoised path queries — the tree is immutable, so every
        #: (start, goal) pair resolves to the same unique path forever.
        self._path_cache: Dict[Tuple[Position, Position],
                               Optional[List[Position]]] = {}

    @property
    def tree(self) -> nx.Graph:
        return self._tree

    def contains(self, position: Position) -> bool:
        return position in self._adjacency

    def path(self, start: Position, goal: Position) -> Optional[List[Position]]:
        """The unique tree path between two ancilla tiles (inclusive).

        Returns ``None`` when either endpoint is not in the tree or the tree
        is disconnected between them (possible only for degenerate layouts).
        Paths are memoised (the tree never changes); treat the returned list
        as read-only.
        """
        key = (start, goal)
        if key in self._path_cache:
            return self._path_cache[key]
        path = self._compute_path(start, goal)
        self._path_cache[key] = path
        return path

    def _compute_path(self, start: Position,
                      goal: Position) -> Optional[List[Position]]:
        if start not in self._adjacency or goal not in self._adjacency:
            return None
        if start == goal:
            return [start]
        parents: Dict[Position, Position] = {start: start}
        queue = deque([start])
        while queue:
            current = queue.popleft()
            for neighbor in self._adjacency[current]:
                if neighbor in parents:
                    continue
                parents[neighbor] = current
                if neighbor == goal:
                    path = [goal]
                    while path[-1] != start:
                        path.append(parents[path[-1]])
                    path.reverse()
                    return path
                queue.append(neighbor)
        return None

    def bottleneck_activity(self, start: Position, goal: Position) -> float:
        """Maximum edge weight along the tree path (the minimax objective)."""
        path = self.path(start, goal)
        if not path or len(path) == 1:
            return 0.0
        return max(self._tree.edges[u, v]["weight"]
                   for u, v in zip(path, path[1:]))


@dataclass
class _PendingComputation:
    started_cycle: int
    available_cycle: int
    activity_snapshot: Dict[Position, float]


class AsyncMstPipeline:
    """The asynchronous MST recomputation pipeline of Figure 8.

    A new computation is *started* every ``period`` (= ``k``) cycles using the
    activity observed at the start cycle; it becomes *available* ``latency``
    (= ``tau_mst``) cycles later.  The scheduler always queries the most
    recently *available* tree — never stalling the quantum machine, at the
    cost of acting on information up to ``latency + period`` cycles old.
    """

    def __init__(self, layout: GridLayout, period: int, latency: int) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.layout = layout
        self.period = period
        self.latency = latency
        self._pending: List[_PendingComputation] = []
        self._current: Optional[AncillaMst] = None
        self._last_started: Optional[int] = None
        self.computations_started = 0
        self.computations_completed = 0

    @property
    def current(self) -> Optional[AncillaMst]:
        """The latest available MST (``None`` until the first one finishes)."""
        return self._current

    def tick(self, cycle: int,
             activity: Union[Dict[Position, float],
                             Callable[[], Dict[Position, float]]]) -> None:
        """Advance the pipeline to ``cycle``.

        Starts a new computation if a period boundary has been crossed and
        publishes any computation whose latency has elapsed.  ``activity`` is
        the live activity snapshot used for a newly started computation — or
        a zero-argument callable producing it, which is only invoked when a
        computation actually starts (snapshots are expensive and most ticks
        start nothing).
        """
        # Publish finished computations (oldest first).
        still_pending: List[_PendingComputation] = []
        for pending in self._pending:
            if pending.available_cycle <= cycle:
                self._current = AncillaMst(self.layout, pending.activity_snapshot,
                                           snapshot_cycle=pending.started_cycle)
                self.computations_completed += 1
            else:
                still_pending.append(pending)
        self._pending = still_pending

        # Start a new computation at period boundaries.
        if self._last_started is None or cycle - self._last_started >= self.period:
            snapshot = activity() if callable(activity) else activity
            self._pending.append(_PendingComputation(
                started_cycle=cycle,
                available_cycle=cycle + self.latency,
                activity_snapshot=dict(snapshot),
            ))
            self._last_started = cycle
            self.computations_started += 1

    def next_boundary(self, cycle: int) -> int:
        """The next cycle at which the pipeline state can change."""
        candidates = [pending.available_cycle for pending in self._pending]
        if self._last_started is not None:
            candidates.append(self._last_started + self.period)
        else:
            candidates.append(cycle)
        future = [c for c in candidates if c > cycle]
        return min(future) if future else cycle + self.period


class IncrementalMst:
    """Incrementally maintained MST used for the Section 5.4.1 overhead study.

    Two update cases matter on a grid graph:

    * an edge *not* on the MST whose weight decreased — insert it and evict the
      heaviest edge of the (grid-bounded, O(1)-size) cycle it creates;
    * an edge *on* the MST whose weight increased — remove it and reconnect the
      two components with the lightest crossing edge (O(max(rows, cols)) work
      in the paper's analysis; here a component-labelling pass).

    The implementation favours clarity over raw speed; the benchmark compares
    it against full recomputation to demonstrate the asymptotic win.
    """

    def __init__(self, layout: GridLayout,
                 activity: Optional[Dict[Position, float]] = None) -> None:
        self.layout = layout
        self.graph = build_activity_graph(layout, activity or {})
        self._tree = nx.minimum_spanning_tree(self.graph, weight="weight")

    @property
    def tree(self) -> nx.Graph:
        return self._tree

    def total_weight(self) -> float:
        return sum(data["weight"] for _, _, data in self._tree.edges(data=True))

    def update_edge(self, u: Position, v: Position, weight: float) -> None:
        """Update the weight of edge ``(u, v)`` and repair the MST."""
        if not self.graph.has_edge(u, v):
            raise KeyError(f"({u}, {v}) is not an edge of the ancilla graph")
        old_weight = self.graph.edges[u, v]["weight"]
        self.graph.edges[u, v]["weight"] = weight
        on_tree = self._tree.has_edge(u, v)

        if on_tree:
            self._tree.edges[u, v]["weight"] = weight
            if weight > old_weight:
                # Case 2: removal + cheapest reconnecting edge.
                self._tree.remove_edge(u, v)
                component_u = nx.node_connected_component(self._tree, u)
                best = None
                for a, b, data in self.graph.edges(data=True):
                    crosses = (a in component_u) != (b in component_u)
                    if crosses and (best is None or data["weight"] < best[2]):
                        best = (a, b, data["weight"])
                if best is None:  # pragma: no cover - disconnected ancilla graph
                    self._tree.add_edge(u, v, weight=weight)
                else:
                    self._tree.add_edge(best[0], best[1], weight=best[2])
        else:
            if weight < old_weight:
                # Case 1: insertion + evict the heaviest edge of the new cycle.
                try:
                    cycle_path = nx.shortest_path(self._tree, u, v)
                except nx.NetworkXNoPath:  # pragma: no cover - degenerate
                    self._tree.add_edge(u, v, weight=weight)
                    return
                heaviest = max(zip(cycle_path, cycle_path[1:]),
                               key=lambda edge: self._tree.edges[edge]["weight"])
                if self._tree.edges[heaviest]["weight"] > weight:
                    self._tree.remove_edge(*heaviest)
                    self._tree.add_edge(u, v, weight=weight)

    def matches_full_recompute(self) -> bool:
        """Sanity check: incremental tree weight equals a fresh Kruskal run."""
        fresh = nx.minimum_spanning_tree(self.graph, weight="weight")
        fresh_weight = sum(d["weight"] for _, _, d in fresh.edges(data=True))
        return abs(self.total_weight() - fresh_weight) < 1e-9
