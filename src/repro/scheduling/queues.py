"""Per-ancilla queues and their entries (Section 4.1, Table 2).

Every ancilla tile owns a queue of the gates it has been asked to help
execute.  Each entry records the gate, an optional helper ancilla and — for
the entry at the head of the queue — a status:

=====  =============================================================
``R``  ready to execute the next gate
``E``  executing the gate at the head of the queue
``P``  preparing the |m_theta> state for the Rz gate at the head
``D``  done preparing, waiting to inject
``F``  finished executing the gate at the head
=====  =============================================================

The queue provides the seniority ordering the paper relies on ("gates that
have already been added to the queue must have been scheduled earlier and thus
are executed before more recent gates") and the in-place angle update used for
eager correction preparation.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..fabric import Position

__all__ = ["AncillaStatus", "AncillaRole", "QueueEntry", "AncillaQueue",
           "QueueSet"]


class AncillaStatus(enum.Enum):
    """Status of the head-of-queue entry (Table 2)."""

    READY = "R"
    EXECUTING = "E"
    PREPARING = "P"
    DONE_PREPARING = "D"
    FINISHED = "F"


class AncillaRole(enum.Enum):
    """What the ancilla does for the gate it is enqueued for."""

    PREPARE = "prepare"      # prepare an |m_theta> state for an Rz gate
    ROUTE = "route"          # part of a CNOT / injection routing path
    ROTATE = "rotate"        # helper for an edge-rotation gate
    HELPER = "helper"        # generic helper (Hadamard, CNOT-injection partner)


class QueueEntry:
    """One element of an ancilla queue (the variables of Table 2).

    A ``__slots__`` class rather than a dataclass: entries are created and
    their fields read on the per-pass hot path, and slot access keeps both
    cheap (works on every supported Python, unlike ``dataclass(slots=True)``).
    """

    __slots__ = ("gate_index", "gate_kind", "data_qubits", "role", "helper",
                 "angle_level", "status", "sequence")

    def __init__(self, gate_index: int, gate_kind: str,
                 data_qubits: Tuple[int, ...], role: AncillaRole,
                 helper: Optional[Position] = None, angle_level: int = 0,
                 status: AncillaStatus = AncillaStatus.READY,
                 sequence: int = 0) -> None:
        self.gate_index = gate_index
        #: "cnot", "rz", "h", "edge_rotation"
        self.gate_kind = gate_kind
        self.data_qubits = data_qubits
        self.role = role
        self.helper = helper
        #: Correction level for Rz gates: 0 = theta, 1 = 2*theta, ... (updated
        #: in place for eager correction preparation, Section 4.1).
        self.angle_level = angle_level
        self.status = status
        #: Monotonic sequence number assigned at enqueue time (seniority order).
        self.sequence = sequence

    def describe(self) -> str:
        qubits = ",".join(str(q) for q in self.data_qubits)
        return (f"{self.status.value}:{self.gate_kind}[{self.gate_index}]"
                f"(q={qubits},lvl={self.angle_level},{self.role.value})")


class AncillaQueue:
    """FIFO queue of :class:`QueueEntry` for a single ancilla tile."""

    def __init__(self, position: Position) -> None:
        self.position = position
        #: The entry list, oldest first.  Shared, not copied: callers may
        #: iterate it directly on hot paths but must treat it as read-only.
        self.entries: List[QueueEntry] = []

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[QueueEntry]:
        return iter(self.entries)

    def __bool__(self) -> bool:
        return bool(self.entries)

    @property
    def head(self) -> Optional[QueueEntry]:
        return self.entries[0] if self.entries else None

    def enqueue(self, entry: QueueEntry) -> None:
        self.entries.append(entry)

    def pop_head(self) -> QueueEntry:
        if not self.entries:
            raise IndexError("pop from empty ancilla queue")
        return self.entries.pop(0)

    def remove_gate(self, gate_index: int) -> int:
        """Remove every entry for ``gate_index``; returns how many were removed."""
        before = len(self.entries)
        self.entries = [entry for entry in self.entries
                         if entry.gate_index != gate_index]
        return before - len(self.entries)

    def contains_gate(self, gate_index: int) -> bool:
        return any(entry.gate_index == gate_index for entry in self.entries)

    def entry_for_gate(self, gate_index: int) -> Optional[QueueEntry]:
        for entry in self.entries:
            if entry.gate_index == gate_index:
                return entry
        return None

    def position_of_gate(self, gate_index: int) -> Optional[int]:
        for index, entry in enumerate(self.entries):
            if entry.gate_index == gate_index:
                return index
        return None

    def is_at_head(self, gate_index: int) -> bool:
        head = self.head
        return head is not None and head.gate_index == gate_index

    def update_angle_level(self, gate_index: int, angle_level: int) -> int:
        """In-place angle-level bump for eager correction prep (Section 4.1)."""
        updated = 0
        for entry in self.entries:
            if entry.gate_index == gate_index and entry.angle_level < angle_level:
                entry.angle_level = angle_level
                updated += 1
        return updated

    def describe(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.position}: " + " | ".join(e.describe() for e in self.entries)


class QueueSet:
    """The collection of all ancilla queues plus the global sequence counter."""

    def __init__(self, positions: Iterable[Position]) -> None:
        self._queues: Dict[Position, AncillaQueue] = {
            position: AncillaQueue(position) for position in positions}
        self._sequence = 0
        #: gate index -> queues it was enqueued on, so removal never scans
        #: the whole fabric.  May hold stale positions (entries drained by
        #: ``pop_head``); ``remove_gate`` is a no-op there.
        self._gate_positions: Dict[int, List[Position]] = {}

    def __getitem__(self, position: Position) -> AncillaQueue:
        return self._queues[position]

    def __contains__(self, position: Position) -> bool:
        return position in self._queues

    def queues(self) -> Iterable[AncillaQueue]:
        return self._queues.values()

    def next_sequence(self) -> int:
        self._sequence += 1
        return self._sequence

    def enqueue(self, position: Position, entry: QueueEntry) -> QueueEntry:
        """Enqueue ``entry`` at ``position``, stamping its sequence number."""
        if entry.sequence == 0:
            entry.sequence = self.next_sequence()
        self._queues[position].enqueue(entry)
        positions = self._gate_positions.setdefault(entry.gate_index, [])
        if position not in positions:
            positions.append(position)
        return entry

    def remove_gate_everywhere(self, gate_index: int) -> int:
        positions = self._gate_positions.pop(gate_index, ())
        return sum(self._queues[position].remove_gate(gate_index)
                   for position in positions)

    def queue_length(self, position: Position) -> int:
        return len(self._queues[position])

    def total_enqueued(self) -> int:
        return sum(len(queue) for queue in self._queues.values())
