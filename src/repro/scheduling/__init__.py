"""Schedulers (RESCQ and static baselines) plus their supporting structures.

Scheduler implementations are registered by name in :data:`SCHEDULER_REGISTRY`
(the instance re-exported as :data:`repro.api.SCHEDULERS`), which is what the
CLI, :class:`~repro.api.spec.ExperimentSpec` and external plugins resolve
scheduler names through::

    from repro.scheduling import SCHEDULER_REGISTRY

    @SCHEDULER_REGISTRY.register("my-policy")
    class MyScheduler(Scheduler):
        name = "my-policy"
        ...
"""

from ..api.registry import Registry
from .activity import ActivityTracker
from .base import Scheduler, gate_kind
from .mst import AncillaMst, AsyncMstPipeline, IncrementalMst, build_activity_graph
from .queues import AncillaQueue, AncillaRole, AncillaStatus, QueueEntry, QueueSet
from .rescq import RescqScheduler
from .static import AutoBraidScheduler, GreedyScheduler, StaticLayerScheduler

__all__ = [
    "Scheduler",
    "gate_kind",
    "RescqScheduler",
    "GreedyScheduler",
    "AutoBraidScheduler",
    "StaticLayerScheduler",
    "SCHEDULER_REGISTRY",
    "DEFAULT_SCHEDULER_NAMES",
    "ActivityTracker",
    "AncillaMst",
    "AsyncMstPipeline",
    "IncrementalMst",
    "build_activity_graph",
    "AncillaQueue",
    "AncillaRole",
    "AncillaStatus",
    "QueueEntry",
    "QueueSet",
]

#: Name -> zero-argument scheduler factory.  ``create(name)`` yields a fresh
#: instance, so registered entries must be default-constructible classes (or
#: factories closing over their parameters).
SCHEDULER_REGISTRY: Registry = Registry("scheduler")
SCHEDULER_REGISTRY.register("greedy", GreedyScheduler)
SCHEDULER_REGISTRY.register("autobraid", AutoBraidScheduler)
SCHEDULER_REGISTRY.register("rescq", RescqScheduler)

#: The three schedulers the paper's headline comparison runs, in the order
#: Figure 10 lists them.
DEFAULT_SCHEDULER_NAMES = ("greedy", "autobraid", "rescq")
