"""Schedulers (RESCQ and static baselines) plus their supporting structures."""

from .activity import ActivityTracker
from .base import Scheduler, gate_kind
from .mst import AncillaMst, AsyncMstPipeline, IncrementalMst, build_activity_graph
from .queues import AncillaQueue, AncillaRole, AncillaStatus, QueueEntry, QueueSet
from .rescq import RescqScheduler
from .static import AutoBraidScheduler, GreedyScheduler, StaticLayerScheduler

__all__ = [
    "Scheduler",
    "gate_kind",
    "RescqScheduler",
    "GreedyScheduler",
    "AutoBraidScheduler",
    "StaticLayerScheduler",
    "ActivityTracker",
    "AncillaMst",
    "AsyncMstPipeline",
    "IncrementalMst",
    "build_activity_graph",
    "AncillaQueue",
    "AncillaRole",
    "AncillaStatus",
    "QueueEntry",
    "QueueSet",
]
