"""Scheduler interface and shared helpers."""

from __future__ import annotations

import abc

import numpy as np

from ..circuits import Circuit, Gate, GateType, doublings_until_clifford
from ..fabric import GridLayout
from ..sim.config import SimulationConfig
from ..sim.results import SimulationResult

__all__ = ["Scheduler", "gate_kind"]

#: (angle, max_doublings) -> injection limit.  Angles repeat heavily within
#: and across circuits (T gates, layered ansaetze) and
#: :func:`doublings_until_clifford` walks up to ``max_doublings`` float
#: doublings per query, so the limit is worth memoising process-wide.
_INJECTION_LIMIT_CACHE: "dict[tuple[float, int], int]" = {}
_INJECTION_LIMIT_CACHE_MAX = 65536


def gate_kind(gate: Gate) -> str:
    """Trace label for a gate ('cnot', 'rz', 'h', ...)."""
    if gate.gate_type is GateType.CNOT:
        return "cnot"
    if gate.gate_type is GateType.RZ:
        return "rz"
    if gate.gate_type is GateType.H:
        return "h"
    return gate.gate_type.value


class Scheduler(abc.ABC):
    """A scheduling policy that can execute a circuit on a layout.

    Subclasses implement :meth:`run`; everything stochastic must flow through
    the ``numpy`` generator seeded from the ``seed`` argument so that repeated
    runs are reproducible (the paper's simulator is seeded the same way,
    Section 5.1).
    """

    #: Short identifier used in result tables ("rescq", "greedy", "autobraid").
    name: str = "scheduler"

    @abc.abstractmethod
    def run(self, circuit: Circuit, layout: GridLayout,
            config: SimulationConfig, seed: int = 0) -> SimulationResult:
        """Execute ``circuit`` on ``layout`` and return the timing result."""

    # -- shared helpers ------------------------------------------------------------

    @staticmethod
    def make_rng(seed: int) -> np.random.Generator:
        return np.random.default_rng(seed)

    @staticmethod
    def prepare_circuit(circuit: Circuit) -> Circuit:
        """Strip zero-cost gates; the remaining gates are what gets scheduled."""
        return circuit.without_free_gates()

    @staticmethod
    def injection_limit(gate: Gate, max_doublings: int = 64) -> int:
        """Maximum length of the RUS correction chain for this rotation."""
        if gate.angle is None:
            return max_doublings
        key = (gate.angle, max_doublings)
        limit = _INJECTION_LIMIT_CACHE.get(key)
        if limit is None:
            if len(_INJECTION_LIMIT_CACHE) >= _INJECTION_LIMIT_CACHE_MAX:
                _INJECTION_LIMIT_CACHE.clear()
            limit = max(1, doublings_until_clifford(gate.angle, max_doublings))
            _INJECTION_LIMIT_CACHE[key] = limit
        return limit

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
