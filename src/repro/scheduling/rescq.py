"""RESCQ: the realtime scheduler (Section 4).

RESCQ drives an event-driven symbolic execution of the program.  Its defining
mechanisms, all implemented here, are:

* **per-qubit ASAP release** — a gate may start as soon as the previous gate
  on each of its operand qubits completes; there is no layer barrier
  (Section 3.1);
* **per-ancilla queues** (Table 2) — every gate is enqueued on the ancillas
  that could serve it; seniority in the queue arbitrates contention;
* **parallel preparation** — an Rz gate's |m_theta> is attempted on several
  neighbouring ancillas at once; the first success is used and the rest are
  discarded or retargeted (Figure 1e);
* **eager correction preparation** — as soon as one preparation succeeds (and
  during the injection itself), the remaining candidate ancillas switch to
  preparing the |m_{2 theta}> fixup in place (Section 4.1);
* **lookahead preparation** — the Rz following the gate currently executing
  on a qubit is enqueued preemptively so its state can be prepared while the
  data qubit is still busy;
* **activity-weighted MST routing** (Section 4.2) — CNOT paths are chosen on
  the latest *available* minimum spanning tree of ancilla activity, which is
  recomputed asynchronously every ``k`` cycles and becomes available
  ``tau_mst`` cycles later (Figure 8).

Since the kernel extraction, this module implements only the *policy*: task
state machines, release rules, queue arbitration and plan choice.  Simulated
time, the event queue, fabric occupancy, gate releases/retirement and result
assembly are the shared :class:`~repro.kernel.SimulationKernel`; preparation
latencies are drawn in vectorised batches through
:meth:`~repro.rus.preparation.PreparationModel.sample_cycles_batch` (which is
stream-equivalent to the historical scalar draws, so traces are unchanged).

The ablation switches in :class:`~repro.sim.config.SimulationConfig`
(``parallel_preparation``, ``eager_correction_prep``, ``use_mst_routing``)
turn the corresponding mechanism off so its contribution can be measured.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..circuits import Circuit, Gate
from ..fabric import Edge, GridLayout, Position
from ..kernel import EventDrivenPolicy, SimulationKernel, profile_timer
from ..lattice import RoutePlan
from ..sim.config import SimulationConfig
from ..sim.results import GateTrace, SimulationResult
from .base import Scheduler, gate_kind
from .mst import AsyncMstPipeline
from .queues import (AncillaQueue, AncillaRole, AncillaStatus, QueueEntry,
                     QueueSet)

__all__ = ["RescqScheduler", "RescqPolicy"]


# ---------------------------------------------------------------------------
# Task state machines
# ---------------------------------------------------------------------------

class _RzTask:
    """Rz gate state machine.  ``__slots__`` classes, not dataclasses: task
    fields are the most-touched state in every scheduling pass, and slot
    access is measurably cheaper on the supported Pythons."""

    __slots__ = ("gate_index", "qubit", "theta", "limit", "candidates",
                 "attachment", "queues", "released", "release_cycle", "level",
                 "preparing", "holding", "injecting", "first_start",
                 "prep_attempts", "injections", "done")

    def __init__(self, gate_index: int, qubit: int, theta: float, limit: int,
                 candidates: List[Position],
                 attachment: Dict[Position, object],
                 queues: List["AncillaQueue"], released: bool,
                 release_cycle: Optional[int] = None) -> None:
        self.gate_index = gate_index
        self.qubit = qubit
        self.theta = theta
        self.limit = limit
        self.candidates = candidates
        #: 'Z' / 'X' for edge-adjacent candidates, or the routing ancilla
        #: position for diagonal candidates.
        self.attachment = attachment
        #: The candidates' ancilla queues, aligned with ``candidates`` —
        #: resolved once at creation so passes skip the per-position lookup.
        self.queues = queues
        self.released = released
        self.release_cycle = release_cycle
        self.level = 0
        #: ancilla -> [finish_cycle, level] for in-flight preparations.
        self.preparing: Dict[Position, List[int]] = {}
        #: ancilla -> level of the |m_theta> state it is holding.
        self.holding: Dict[Position, int] = {}
        self.injecting = False
        self.first_start: Optional[int] = None
        self.prep_attempts = 0
        self.injections = 0
        self.done = False


class _CnotTask:
    __slots__ = ("gate_index", "control", "target", "plan", "queues",
                 "release_cycle", "started", "start_cycle")

    def __init__(self, gate_index: int, control: int, target: int,
                 plan: RoutePlan, queues: List["AncillaQueue"],
                 release_cycle: int) -> None:
        self.gate_index = gate_index
        self.control = control
        self.target = target
        self.plan = plan
        #: Queues of ``plan.ancillas_used``, aligned — resolved once.
        self.queues = queues
        self.release_cycle = release_cycle
        self.started = False
        self.start_cycle: Optional[int] = None


class _HTask:
    __slots__ = ("gate_index", "qubit", "ancilla", "release_cycle", "started",
                 "start_cycle")

    def __init__(self, gate_index: int, qubit: int, ancilla: Position,
                 release_cycle: int) -> None:
        self.gate_index = gate_index
        self.qubit = qubit
        self.ancilla = ancilla
        self.release_cycle = release_cycle
        self.started = False
        self.start_cycle: Optional[int] = None


# ---------------------------------------------------------------------------
# The RESCQ policy on the event-driven kernel
# ---------------------------------------------------------------------------

class RescqPolicy(EventDrivenPolicy):
    """One seeded RESCQ execution of a circuit, as a kernel policy."""

    def __init__(self, kernel: SimulationKernel,
                 lookahead_preparation: bool = True) -> None:
        self.kernel = kernel
        self.circuit = kernel.circuit
        self.layout = kernel.layout
        self.config = kernel.config
        self.costs = kernel.config.costs
        self.lookahead_preparation = lookahead_preparation
        self.rng = kernel.rng
        self.prep_model = kernel.config.preparation_model()

        self.clock = kernel.clock
        self.fabric = kernel.fabric
        self.lifecycle = kernel.lifecycle
        self.routing = kernel.routing
        self.profile = kernel.profile
        self.orientation = self.fabric.orientation

        self.queues = QueueSet(self.fabric.ancillas)
        self.mst: Optional[AsyncMstPipeline] = None
        if self.config.use_mst_routing:
            self.mst = AsyncMstPipeline(self.layout, self.config.mst_period,
                                        self.config.mst_latency)

        self.tasks: Dict[int, object] = {}
        self.task_order: List[int] = []
        #: The released-gate frontier only changes when a gate retires, so
        #: scheduling passes skip the ready-scan until this flag is set again
        #: by :meth:`_finish_gate` / :meth:`_finish_gates`.
        self._ready_dirty = True
        #: Per-entry queue cost of a pending Rz in :meth:`_expected_free_time`.
        #: ``expected_cycles()`` is a pure function of the preparation model,
        #: so the same float is produced every call.
        self._rz_pending_cost = self.prep_model.expected_cycles() + 1.0

        # next gate on each qubit after a given gate (for lookahead prep).
        self._next_on_qubit: Dict[Tuple[int, int], int] = {}
        last_seen: Dict[int, int] = {}
        for index in self.lifecycle.dag.nodes:
            for qubit in self.circuit[index].qubits:
                if qubit in last_seen:
                    self._next_on_qubit[(last_seen[qubit], qubit)] = index
                last_seen[qubit] = index

        #: (qubit, flipped) -> (candidates, attachment); the fan-out geometry
        #: of Figure 7 is a pure function of layout + orientation, so repeated
        #: Rz gates on the same qubit reuse it.
        self._rz_candidate_cache: Dict[Tuple[int, bool],
                                       Tuple[List[Position],
                                             Dict[Position, object]]] = {}

    # -- kernel hooks ------------------------------------------------------------

    def on_start(self) -> None:
        self._tick_mst()

    def on_advance(self) -> None:
        self._tick_mst()

    def handle_event(self, tag: str, payload: tuple) -> None:
        if tag == "prep":
            self._on_prep_done(*payload)
        elif tag == "inject":
            self._on_injection_done(*payload)
        elif tag == "cnot":
            self._on_cnot_done(*payload)
        elif tag == "h":
            self._on_hadamard_done(*payload)

    def handle_event_batch(self, tag: str, payloads: list) -> None:
        """Batched dispatch from the bucketed event engines.

        Each override is stream-equivalent to the scalar loop the reference
        engine drives (the golden suite pins this under every engine):

        * ``inject`` — the outcome draws batch into one vectorised RNG call
          (:func:`numpy.random.Generator.random` consumes the bit stream
          exactly like successive scalar draws, the same property
          ``sample_cycles_batch`` relies on);
        * ``cnot`` / ``h`` — per-event side effects stay in event order, but
          the whole run retires through one
          :meth:`~repro.kernel.lifecycle.GateLifecycle.retire_many` call;
        * ``prep`` — scalar loop: eager retargeting means one prep event can
          re-level another in-flight preparation of the same gate, so the
          handlers must interleave exactly as the reference engine does.
        """
        if tag == "inject":
            self._on_injections_done(payloads)
        elif tag == "cnot":
            self._on_cnots_done(payloads)
        elif tag == "h":
            self._on_hadamards_done(payloads)
        else:
            for payload in payloads:
                self._on_prep_done(*payload)

    def result_metadata(self) -> Dict[str, float]:
        return {
            "mst_computations": float(self.mst.computations_completed
                                      if self.mst else 0),
        }

    # -- MST pipeline ------------------------------------------------------------

    def _tick_mst(self) -> None:
        if self.mst is None:
            return
        now = self.clock.now
        started = self.mst.computations_started
        with profile_timer(self.profile, "mst"):
            self.mst.tick(now, lambda: self.fabric.activity_snapshot(now))
        if self.profile is not None:
            self.profile.add("mst_builds",
                             float(self.mst.computations_started - started))

    # -- task creation -----------------------------------------------------------

    def _create_tasks_for_ready_gates(self) -> None:
        for index in self.lifecycle.ready_by_priority():
            task = self.tasks.get(index)
            if task is None:
                self._create_task(index, released=True)
            elif isinstance(task, _RzTask) and not task.released:
                task.released = True
                task.release_cycle = self.lifecycle.release_cycle.get(
                    index, self.clock.now)

    def _create_task(self, index: int, released: bool) -> None:
        gate = self.circuit[index]
        kind = gate_kind(gate)
        if kind == "rz":
            task: object = self._create_rz_task(index, gate, released)
        elif kind == "cnot":
            task = self._create_cnot_task(index, gate)
        elif kind == "h":
            task = self._create_h_task(index, gate)
        else:  # pragma: no cover - free gates are stripped before simulation
            raise ValueError(f"unexpected gate kind {kind!r}")
        self.tasks[index] = task
        self.task_order.append(index)

    def _rz_candidates(self, qubit: int) -> Tuple[List[Position], Dict[Position, object]]:
        """Candidate preparation ancillas for an Rz on ``qubit``.

        All edge-adjacent ancillas are candidates (they can inject directly);
        diagonal ancillas that touch an adjacent ancilla are added up to the
        ``max_parallel_preparations`` budget (they inject through that routing
        ancilla) — the 1/2/3-plus-routing structure of Figure 7.  Memoised per
        (qubit, orientation): treat the returned structures as read-only.
        """
        key = (qubit, self.orientation.is_flipped(qubit))
        cached = self._rz_candidate_cache.get(key)
        if cached is not None:
            return cached
        position = self.layout.data_position(qubit)
        attachment: Dict[Position, object] = {}
        adjacent: List[Position] = []
        for edge in Edge:
            neighbor = edge.neighbor(position)
            if self.layout.is_ancilla(neighbor):
                adjacent.append(neighbor)
                attachment[neighbor] = self.orientation.edge_pauli(qubit, edge)
        # Prefer Z-edge neighbours (cheapest, 1-cycle ZZ injection).
        adjacent.sort(key=lambda pos: attachment[pos] != "Z")
        if not self.config.parallel_preparation:
            chosen = adjacent[:1]
            result = (chosen, {pos: attachment[pos] for pos in chosen})
            self._rz_candidate_cache[key] = result
            return result

        candidates = list(adjacent)
        budget = max(0, self.config.max_parallel_preparations - len(candidates))
        if budget:
            row, col = position
            diagonals = [(row - 1, col - 1), (row - 1, col + 1),
                         (row + 1, col - 1), (row + 1, col + 1)]
            for diag in diagonals:
                if budget == 0:
                    break
                if not self.layout.is_ancilla(diag):
                    continue
                routers = [pos for pos in adjacent
                           if abs(pos[0] - diag[0]) + abs(pos[1] - diag[1]) == 1]
                if not routers:
                    continue
                candidates.append(diag)
                attachment[diag] = routers[0]
                budget -= 1
        result = (candidates, attachment)
        self._rz_candidate_cache[key] = result
        return result

    def _create_rz_task(self, index: int, gate: Gate, released: bool) -> _RzTask:
        qubit = gate.qubits[0]
        candidates, attachment = self._rz_candidates(qubit)
        if not candidates:
            raise RuntimeError(f"data qubit {qubit} has no ancilla neighbour")
        task = _RzTask(
            gate_index=index,
            qubit=qubit,
            theta=gate.angle if gate.angle is not None else 0.0,
            limit=self.injection_limit(gate),
            candidates=candidates,
            attachment=attachment,
            queues=[self.queues[position] for position in candidates],
            released=released,
            release_cycle=(self.lifecycle.release_cycle.get(index)
                           if released else None),
        )
        for position in candidates:
            entry = QueueEntry(index, "rz", (qubit,), AncillaRole.PREPARE)
            self.queues.enqueue(position, entry)
        return task

    @staticmethod
    def injection_limit(gate: Gate, max_doublings: int = 64) -> int:
        return Scheduler.injection_limit(gate, max_doublings)

    def _expected_free_time(self, position: Position) -> float:
        """Expected cycle at which ``position`` frees up (Section 4.2)."""
        fabric = self.fabric
        free = fabric.anc_free[position]
        now = self.clock.now
        base = float(free if free > now else now)
        if position in fabric.anc_holding:
            base += 1.0
        entries = self.queues[position].entries
        if not entries:
            return base
        # Keep the historical accumulation order (pending summed apart, added
        # to base once): float addition is not associative, and the golden
        # traces pin the exact eft values.
        pending = 0.0
        rz_cost = self._rz_pending_cost
        cnot_cost = self.costs.cnot_cycles
        hadamard_cost = self.costs.hadamard_cycles
        for entry in entries:
            kind = entry.gate_kind
            if kind == "rz":
                pending += rz_cost
            elif kind == "cnot":
                pending += cnot_cost
            else:
                pending += hadamard_cost
        return base + pending

    def _choose_cnot_plan(self, control: int, target: int) -> RoutePlan:
        rotation_cost = self.costs.edge_rotation_cycles
        cnot_cycles = self.costs.cnot_cycles
        # Fabric state is frozen while scoring, so each tile's expected free
        # time is computed once even when candidate paths overlap.
        eft_cache: Dict[Position, float] = {}
        eft = self._expected_free_time

        tree = self.mst.current if self.mst is not None else None
        if tree is not None:
            # Hot path: rank the candidate attachment pairs directly over the
            # memoised tree paths and materialise only the winning RoutePlan —
            # identical selection to scoring a full plan list with min()
            # (same nested iteration order, strict-< tie-breaking), without
            # constructing the ~16 losing plans.
            routing = self.routing
            routing.queries += 1
            control_candidates = routing.attachments(self.orientation,
                                                     control, "Z")
            target_candidates = routing.attachments(self.orientation,
                                                    target, "X")
            tree_path = tree.path
            best = None
            best_score: Optional[Tuple[float, int]] = None
            for control_attach, control_rotation in control_candidates:
                for target_attach, target_rotation in target_candidates:
                    path = tree_path(control_attach, target_attach)
                    if path is None:
                        continue
                    worst: Optional[float] = None
                    for pos in path:
                        value = eft_cache.get(pos)
                        if value is None:
                            value = eft(pos)
                            eft_cache[pos] = value
                        if worst is None or value > worst:
                            worst = value
                    rotations = ((1 if control_rotation else 0)
                                 + (1 if target_rotation else 0))
                    score = (rotation_cost * rotations + cnot_cycles + worst,
                             len(path))
                    if best_score is None or score < best_score:
                        best_score = score
                        best = (control_attach, control_rotation,
                                target_attach, target_rotation, path)
            if best is not None:
                (control_attach, control_rotation,
                 target_attach, target_rotation, path) = best
                return RoutePlan(
                    control=control,
                    target=target,
                    path=tuple(path),
                    control_rotation=control_rotation,
                    target_rotation=target_rotation,
                    rotation_ancilla_control=(control_attach
                                              if control_rotation else None),
                    rotation_ancilla_target=(target_attach
                                             if target_rotation else None),
                )
            # Fall through: the MST snapshot routes no attachment pair
            # (e.g. it predates a layout quirk) — use the cached BFS plans.

        plans = self.routing.enumerate_plans(self.orientation, control, target)
        if not plans:
            raise RuntimeError(
                f"no ancilla path between qubits {control} and {target}")

        def score(plan: RoutePlan) -> Tuple[float, int]:
            worst: Optional[float] = None
            for pos in plan.path:
                value = eft_cache.get(pos)
                if value is None:
                    value = eft(pos)
                    eft_cache[pos] = value
                if worst is None or value > worst:
                    worst = value
            expected = rotation_cost * plan.num_rotations + cnot_cycles + worst
            return (expected, len(plan.path))

        return min(plans, key=score)

    def _create_cnot_task(self, index: int, gate: Gate) -> _CnotTask:
        with profile_timer(self.profile, "routing"):
            plan = self._choose_cnot_plan(gate.control, gate.target)
        for position in plan.ancillas_used:
            role = AncillaRole.ROUTE
            if position in (plan.rotation_ancilla_control,
                            plan.rotation_ancilla_target):
                role = AncillaRole.ROTATE
            entry = QueueEntry(index, "cnot", gate.qubits, role)
            self.queues.enqueue(position, entry)
        return _CnotTask(index, gate.control, gate.target, plan,
                         queues=[self.queues[position]
                                 for position in plan.ancillas_used],
                         release_cycle=self.lifecycle.release_cycle.get(
                             index, self.clock.now))

    def _create_h_task(self, index: int, gate: Gate) -> _HTask:
        qubit = gate.qubits[0]
        neighbors = self.layout.ancilla_neighbors_of_qubit(qubit)
        if not neighbors:
            raise RuntimeError(f"data qubit {qubit} has no ancilla neighbour")
        ancilla = min(neighbors, key=self._expected_free_time)
        entry = QueueEntry(index, "h", (qubit,), AncillaRole.HELPER)
        self.queues.enqueue(ancilla, entry)
        return _HTask(index, qubit, ancilla,
                      release_cycle=self.lifecycle.release_cycle.get(
                          index, self.clock.now))

    def _maybe_lookahead_prepare(self, index: int) -> None:
        """Pre-enqueue the next Rz on each operand qubit of a starting gate."""
        if not self.lookahead_preparation:
            return
        gate = self.circuit[index]
        for qubit in gate.qubits:
            nxt = self._next_on_qubit.get((index, qubit))
            if nxt is None or nxt in self.tasks:
                continue
            nxt_gate = self.circuit[nxt]
            if gate_kind(nxt_gate) != "rz":
                continue
            # Single-qubit Rz: its only predecessor is the gate now starting,
            # so preparation (but not injection) may begin immediately.
            self._create_task(nxt, released=False)

    # -- the scheduling pass -------------------------------------------------------

    def schedule_pass(self) -> None:
        # A pass can complete gates synchronously (Clifford-truncated
        # corrections) which releases successors; keep passing until the
        # frontier is stable so same-cycle progress is never missed.
        traces = self.lifecycle.traces
        tasks = self.tasks
        while True:
            completed_before = len(traces)
            # The ready frontier only moves when a gate retires; skip the
            # scan entirely on the (common) passes where nothing did.
            if self._ready_dirty:
                self._ready_dirty = False
                self._create_tasks_for_ready_gates()
            # Retired gates leave tombstones in task_order; compact once they
            # dominate (relative order — seniority — is preserved).
            order = self.task_order
            if len(order) > 64 and len(tasks) * 2 < len(order):
                order = [index for index in order if index in tasks]
                self.task_order = order
            # Iterate in task-creation (seniority) order so that queue-head
            # checks and resource grabs respect the order that enqueued them.
            # The bound is captured up front: tasks appended mid-sweep (by
            # lookahead preparation) wait for the next sweep, exactly like
            # the historical ``list(order)`` snapshot — without the copy.
            for sweep_index in range(len(order)):
                task = tasks.get(order[sweep_index])
                if task is None:
                    continue
                if isinstance(task, _RzTask):
                    if not task.done:
                        self._advance_rz(task)
                elif isinstance(task, _CnotTask):
                    if not task.started:
                        self._try_start_cnot(task)
                elif isinstance(task, _HTask):
                    if not task.started:
                        self._try_start_hadamard(task)
            if len(traces) == completed_before:
                break

    def _ancilla_available(self, position: Position, gate_index: int) -> bool:
        return (self.fabric.anc_free[position] <= self.clock.now
                and self.fabric.anc_holding.get(position) in (None, gate_index)
                and self.queues[position].is_at_head(gate_index))

    # -- Rz state machine ----------------------------------------------------------

    def _prep_level(self, task: _RzTask) -> int:
        """Which correction level candidates should be preparing right now."""
        level = task.level
        if self.config.eager_correction_prep:
            if task.injecting or level in task.holding.values():
                level += 1
        return level

    def _advance_rz(self, task: _RzTask) -> None:
        if task.level >= task.limit:
            # The outstanding correction is a Clifford rotation: free.
            self._complete_rz(task)
            return
        self._start_rz_preparations(task)
        self._maybe_start_injection(task)

    def _start_rz_preparations(self, task: _RzTask) -> None:
        # ``_prep_level`` inlined: this runs for every live Rz on every pass.
        level = task.level
        if self.config.eager_correction_prep:
            if task.injecting or level in task.holding.values():
                level += 1
        if level >= task.limit:
            return
        now = self.clock.now
        # Eligibility never depends on the durations drawn below (candidate
        # tiles are distinct), so the draws batch into one vectorised call —
        # stream-equivalent to the historical per-candidate scalar draws.
        # The filter below is ``_ancilla_available`` inlined with hoisted
        # lookups and the task's pre-resolved queue references.
        fabric = self.fabric
        anc_free = fabric.anc_free
        anc_holding = fabric.anc_holding
        gate_index = task.gate_index
        preparing = task.preparing
        holding = task.holding
        current_level = task.level
        eligible = []
        for position, queue in zip(task.candidates, task.queues):
            if position in preparing:
                continue
            if holding.get(position, -1) >= current_level:
                continue
            if anc_free[position] > now:
                continue
            holder = anc_holding.get(position)
            if holder is not None and holder != gate_index:
                continue
            entries = queue.entries
            if not entries or entries[0].gate_index != gate_index:
                continue
            eligible.append((position, queue))
        if not eligible:
            return
        if len(eligible) == 1:
            durations = [self.prep_model.sample_cycles(self.rng)]
        else:
            durations = self.prep_model.sample_cycles_batch(self.rng,
                                                            len(eligible))
        for (position, queue), duration in zip(eligible, durations):
            duration = int(duration)
            finish = now + duration
            preparing[position] = [finish, level]
            task.prep_attempts += 1
            if task.first_start is None:
                task.first_start = now
            fabric.occupy_ancilla(position, now, finish)
            queue.update_angle_level(gate_index, level)
            head = queue.head
            if head is not None and head.gate_index == gate_index:
                head.status = AncillaStatus.PREPARING
            if self.profile is not None:
                self.profile.add("sim_prep_cycles", float(duration))
            self.clock.push(finish, "prep", (gate_index, position, finish))

    def _injection_resources(self, task: _RzTask, position: Position
                             ) -> Optional[Tuple[List[Position], int]]:
        """Resources and duration to inject from ``position`` into the data qubit."""
        attachment = task.attachment[position]
        if attachment == "Z":
            return [position], self.costs.zz_injection_cycles
        if attachment == "X":
            return [position], self.costs.cnot_injection_cycles
        router: Position = attachment  # diagonal candidate: route through this tile
        holder = self.fabric.anc_holding.get(router)
        if (self.fabric.anc_free[router] <= self.clock.now
                and holder in (None, task.gate_index)):
            # The router may be holding one of *our own* eagerly prepared
            # correction states; sacrificing it to unblock the injection is
            # always worth it (extra successes "can be discarded if
            # necessary", Section 3.2).
            if holder == task.gate_index:
                task.holding.pop(router, None)
                self.fabric.release_hold(router)
            return [position, router], self.costs.cnot_injection_cycles
        return None

    def _maybe_start_injection(self, task: _RzTask) -> None:
        if task.injecting or not task.released or not task.holding:
            return
        now = self.clock.now
        if self.fabric.data_free[task.qubit] > now:
            return
        ready = [pos for pos, lvl in task.holding.items() if lvl == task.level]
        if not ready:
            return
        # Prefer the cheapest attachment (Z edge, then X edge, then diagonal).
        def rank(pos: Position) -> int:
            attachment = task.attachment[pos]
            if attachment == "Z":
                return 0
            if attachment == "X":
                return 1
            return 2

        for position in sorted(ready, key=rank):
            resources = self._injection_resources(task, position)
            if resources is None:
                continue
            tiles, duration = resources
            finish = now + duration
            for tile in tiles:
                self.fabric.occupy_ancilla(tile, now, finish)
            self.fabric.occupy_data(task.qubit, now, finish)
            task.injecting = True
            task.injections += 1
            if task.first_start is None:
                task.first_start = now
            # The consumed state (and any surplus same-level states) are gone;
            # surplus holders immediately become eager-correction preparers.
            task.holding.pop(position, None)
            self.fabric.release_hold(position)
            for other, level in list(task.holding.items()):
                if level == task.level:
                    task.holding.pop(other)
                    self.fabric.release_hold(other)
            if self.profile is not None:
                self.profile.add("sim_injection_cycles", float(duration))
            self.clock.push(finish, "inject",
                            (task.gate_index, position, finish))
            self._maybe_lookahead_prepare(task.gate_index)
            return

    def _on_prep_done(self, gate_index: int, position: Position, finish: int) -> None:
        task = self.tasks.get(gate_index)
        if not isinstance(task, _RzTask) or task.done:
            return
        info = task.preparing.get(position)
        if info is None or info[0] != finish:
            return  # stale event (preparation was cancelled)
        task.preparing.pop(position)
        level = info[1]
        if level < task.level:
            return  # the chain moved past this level; discard the state
        is_first_at_level = level not in task.holding.values()
        task.holding[position] = level
        self.fabric.hold(position, gate_index)
        head = self.queues[position].head
        if head is not None and head.gate_index == gate_index:
            head.status = AncillaStatus.DONE_PREPARING
        if (is_first_at_level and level == task.level
                and self.config.eager_correction_prep):
            # In-place retarget of the other in-flight preparations to the
            # correction angle (Section 4.1).
            next_level = min(task.level + 1, task.limit)
            for other, other_info in task.preparing.items():
                if other_info[1] == task.level:
                    other_info[1] = next_level
                    self.queues[other].update_angle_level(gate_index, next_level)

    def _on_injection_done(self, gate_index: int, position: Position,
                           finish: int) -> None:
        task = self.tasks.get(gate_index)
        if not isinstance(task, _RzTask) or task.done:
            return
        self._apply_injection_outcome(task, bool(self.rng.random() < 0.5))

    def _on_injections_done(self, payloads: list) -> None:
        """A same-cycle run of injection completions, outcomes drawn at once.

        Stream-equivalence with the scalar path: every in-flight injection
        belongs to a distinct gate (``task.injecting`` admits one at a time)
        and handling one outcome never changes whether another event in the
        run is stale — so filtering the live events first and then drawing
        all their outcomes in one vectorised call consumes the RNG exactly
        like the reference engine's draw-per-event interleaving.
        """
        tasks = self.tasks
        live = []
        for gate_index, _position, _finish in payloads:
            task = tasks.get(gate_index)
            if isinstance(task, _RzTask) and not task.done:
                live.append(task)
        if not live:
            return
        if len(live) == 1:
            self._apply_injection_outcome(live[0],
                                          bool(self.rng.random() < 0.5))
            return
        outcomes = self.rng.random(len(live)) < 0.5
        apply = self._apply_injection_outcome
        for task, success in zip(live, outcomes):
            apply(task, bool(success))

    def _apply_injection_outcome(self, task: _RzTask, success: bool) -> None:
        task.injecting = False
        if success:
            self._complete_rz(task)
            return
        task.level += 1
        if task.level >= task.limit:
            # The remaining correction is Clifford: applied in the frame, free.
            self._complete_rz(task)

    def _complete_rz(self, task: _RzTask) -> None:
        task.done = True
        now = self.clock.now
        for position in task.preparing:
            # Terminate in-flight preparations immediately (Figure 7, t=5).
            self.fabric.truncate_ancilla(position, now)
        task.preparing.clear()
        for position in list(task.holding):
            self.fabric.release_hold(position)
        task.holding.clear()
        self.queues.remove_gate_everywhere(task.gate_index)
        scheduled = task.release_cycle if task.release_cycle is not None else now
        start = task.first_start if task.first_start is not None else scheduled
        self._finish_gate(GateTrace(
            task.gate_index, "rz", (task.qubit,),
            scheduled_cycle=scheduled, start_cycle=start, end_cycle=now,
            injections=task.injections,
            preparation_attempts=task.prep_attempts))

    # -- CNOT and Hadamard ----------------------------------------------------------

    def _try_start_cnot(self, task: _CnotTask) -> None:
        now = self.clock.now
        fabric = self.fabric
        data_free = fabric.data_free
        if data_free[task.control] > now or data_free[task.target] > now:
            return
        # ``_ancilla_available`` inlined over the plan tiles: a blocked CNOT
        # is re-polled every pass, so this is the large-fabric hot loop.
        gate_index = task.gate_index
        anc_free = fabric.anc_free
        anc_holding = fabric.anc_holding
        resources = task.plan.ancillas_used
        task_queues = task.queues
        for position, queue in zip(resources, task_queues):
            if anc_free[position] > now:
                return
            holder = anc_holding.get(position)
            if holder is not None and holder != gate_index:
                return
            entries = queue.entries
            if not entries or entries[0].gate_index != gate_index:
                return
        duration = task.plan.duration(self.costs)
        finish = now + duration
        for position, queue in zip(resources, task_queues):
            fabric.occupy_ancilla(position, now, finish)
            head = queue.head
            if head is not None and head.gate_index == gate_index:
                head.status = AncillaStatus.EXECUTING
        self.fabric.occupy_data(task.control, now, finish)
        self.fabric.occupy_data(task.target, now, finish)
        task.started = True
        task.start_cycle = now
        if self.profile is not None:
            self.profile.add("sim_cnot_cycles", float(duration))
        self.clock.push(finish, "cnot", (task.gate_index, finish))
        self._maybe_lookahead_prepare(task.gate_index)

    def _cnot_trace(self, task: _CnotTask, finish: int) -> GateTrace:
        """Apply a CNOT completion's side effects and build its trace."""
        if task.plan.control_rotation:
            self.orientation.rotate(task.control)
        if task.plan.target_rotation:
            self.orientation.rotate(task.target)
        self.queues.remove_gate_everywhere(task.gate_index)
        return GateTrace(
            task.gate_index, "cnot", (task.control, task.target),
            scheduled_cycle=task.release_cycle,
            start_cycle=task.start_cycle if task.start_cycle is not None
            else task.release_cycle,
            end_cycle=finish,
            edge_rotations=task.plan.num_rotations)

    def _on_cnot_done(self, gate_index: int, finish: int) -> None:
        task = self.tasks.get(gate_index)
        if not isinstance(task, _CnotTask):
            return
        self._finish_gate(self._cnot_trace(task, finish))

    def _on_cnots_done(self, payloads: list) -> None:
        """A same-cycle run of CNOT completions, retired in one batch."""
        tasks = self.tasks
        traces = []
        for gate_index, finish in payloads:
            task = tasks.get(gate_index)
            if isinstance(task, _CnotTask):
                traces.append(self._cnot_trace(task, finish))
        self._finish_gates(traces)

    def _try_start_hadamard(self, task: _HTask) -> None:
        now = self.clock.now
        if self.fabric.data_free[task.qubit] > now:
            return
        if not self._ancilla_available(task.ancilla, task.gate_index):
            return
        duration = self.costs.hadamard_cycles
        finish = now + duration
        self.fabric.occupy_ancilla(task.ancilla, now, finish)
        self.fabric.occupy_data(task.qubit, now, finish)
        task.started = True
        task.start_cycle = now
        if self.profile is not None:
            self.profile.add("sim_hadamard_cycles", float(duration))
        self.clock.push(finish, "h", (task.gate_index, finish))
        self._maybe_lookahead_prepare(task.gate_index)

    def _hadamard_trace(self, task: _HTask, finish: int) -> GateTrace:
        """Apply a Hadamard completion's side effects and build its trace."""
        # A logical Hadamard exchanges the patch's X and Z boundaries.
        self.orientation.rotate(task.qubit)
        self.queues.remove_gate_everywhere(task.gate_index)
        return GateTrace(
            task.gate_index, "h", (task.qubit,),
            scheduled_cycle=task.release_cycle,
            start_cycle=task.start_cycle if task.start_cycle is not None
            else task.release_cycle,
            end_cycle=finish)

    def _on_hadamard_done(self, gate_index: int, finish: int) -> None:
        task = self.tasks.get(gate_index)
        if not isinstance(task, _HTask):
            return
        self._finish_gate(self._hadamard_trace(task, finish))

    def _on_hadamards_done(self, payloads: list) -> None:
        """A same-cycle run of Hadamard completions, retired in one batch."""
        tasks = self.tasks
        traces = []
        for gate_index, finish in payloads:
            task = tasks.get(gate_index)
            if isinstance(task, _HTask):
                traces.append(self._hadamard_trace(task, finish))
        self._finish_gates(traces)

    # -- completion plumbing ----------------------------------------------------------

    def _finish_gate(self, trace: GateTrace) -> None:
        self.lifecycle.retire(trace, self.clock.now)
        self.tasks.pop(trace.gate_index, None)
        self._ready_dirty = True

    def _finish_gates(self, traces: List[GateTrace]) -> None:
        """Retire an ordered batch of traces with one lifecycle call."""
        if not traces:
            return
        self.lifecycle.retire_many(traces, self.clock.now)
        pop = self.tasks.pop
        for trace in traces:
            pop(trace.gate_index, None)
        self._ready_dirty = True


class RescqScheduler(Scheduler):
    """The realtime scheduler proposed by the paper.

    Parameters
    ----------
    lookahead_preparation:
        Enable preemptive enqueueing of the next Rz gate on a qubit while the
        previous gate is still executing (on by default; exposed for
        ablations).
    name:
        Override the scheduler name recorded in results (used when running
        ablated variants side by side).
    """

    name = "rescq"

    def __init__(self, lookahead_preparation: bool = True,
                 name: Optional[str] = None) -> None:
        self.lookahead_preparation = lookahead_preparation
        if name is not None:
            self.name = name

    def run(self, circuit: Circuit, layout: GridLayout,
            config: SimulationConfig, seed: int = 0) -> SimulationResult:
        prepared = self.prepare_circuit(circuit)
        prepared.name = circuit.name
        kernel = SimulationKernel(prepared, layout, config, seed,
                                  scheduler_name=self.name,
                                  benchmark=circuit.name,
                                  activity_window=config.activity_window)
        policy = RescqPolicy(kernel,
                             lookahead_preparation=self.lookahead_preparation)
        return kernel.run_event_driven(policy)
