"""Quantum-chemistry style circuits: ``gcm`` and ``vqe``.

``gcm_n13`` (generator-coordinate method) and ``vqe_n13`` are chemistry
ansätze built from exponentials of Pauli strings, ``exp(-i * theta * P)``.
Each exponential compiles to a CNOT ladder sandwiching a single Rz, framed by
basis-change Cliffords, which is why ``gcm`` shows roughly two Rz per CNOT
once the single-qubit rotation layers are included (Table 3).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..circuits import Circuit, Gate, GateType, transpile_to_clifford_rz

__all__ = ["pauli_string_exponential", "gcm_circuit", "vqe_circuit"]


def pauli_string_exponential(circuit: Circuit, pauli: Sequence[Tuple[int, str]],
                             theta: float) -> None:
    """Append ``exp(-i * theta/2 * P)`` for a Pauli string ``P``.

    ``pauli`` is a list of ``(qubit, axis)`` pairs with ``axis`` in ``XYZ``.
    Basis changes map X/Y onto Z, a CNOT ladder accumulates parity onto the
    last qubit, one Rz applies the rotation, then everything is uncomputed.
    """
    if not pauli:
        return
    # Basis changes.
    for qubit, axis in pauli:
        if axis == "X":
            circuit.append(Gate(GateType.H, (qubit,)))
        elif axis == "Y":
            circuit.append(Gate(GateType.RZ, (qubit,), angle=-1.5707963267948966))
            circuit.append(Gate(GateType.H, (qubit,)))
        elif axis != "Z":
            raise ValueError(f"unknown Pauli axis {axis!r}")
    qubits = [qubit for qubit, _ in pauli]
    # Parity ladder.
    for left, right in zip(qubits, qubits[1:]):
        circuit.append(Gate(GateType.CNOT, (left, right)))
    circuit.append(Gate(GateType.RZ, (qubits[-1],), angle=theta))
    for left, right in reversed(list(zip(qubits, qubits[1:]))):
        circuit.append(Gate(GateType.CNOT, (left, right)))
    # Undo basis changes.
    for qubit, axis in reversed(pauli):
        if axis == "X":
            circuit.append(Gate(GateType.H, (qubit,)))
        elif axis == "Y":
            circuit.append(Gate(GateType.H, (qubit,)))
            circuit.append(Gate(GateType.RZ, (qubit,), angle=1.5707963267948966))


def _dressed_rotation_layer(circuit: Circuit, num_qubits: int,
                            seed: float) -> None:
    for qubit in range(num_qubits):
        circuit.append(Gate(GateType.RZ, (qubit,), angle=seed + 0.017 * qubit))
        circuit.append(Gate(GateType.RY, (qubit,), angle=seed / 2 + 0.011 * qubit))
        circuit.append(Gate(GateType.RZ, (qubit,), angle=seed / 3 + 0.007 * qubit))


def gcm_circuit(num_qubits: int = 13, generator_terms: int = 110,
                string_length: int = 4, rotation_layer_every: int = 3,
                transpile: bool = True) -> Circuit:
    """Build a GCM-style chemistry circuit on ``num_qubits`` qubits.

    The circuit interleaves four-qubit Pauli-string exponentials (the CNOT
    ladders that dominate ``gcm_n13``'s two-qubit count) with periodic dense
    single-qubit rotation layers, reproducing the roughly 2:1 Rz-to-CNOT ratio
    of the published circuit.
    """
    if num_qubits < 4:
        raise ValueError("gcm needs at least 4 qubits")
    string_length = max(2, min(string_length, num_qubits))
    circuit = Circuit(num_qubits, name=f"gcm_n{num_qubits}")

    for term in range(generator_terms):
        if term % max(1, rotation_layer_every) == 0:
            _dressed_rotation_layer(circuit, num_qubits,
                                    seed=0.19 + 0.013 * term)
        start = term % num_qubits
        qubits = [(start + offset) % num_qubits for offset in range(string_length)]
        axes = ["XYZ"[(term + offset) % 3] for offset in range(string_length)]
        pauli = list(zip(qubits, axes))
        pauli_string_exponential(circuit, pauli, theta=0.37 + 0.01 * term)

    if transpile:
        return transpile_to_clifford_rz(circuit)
    return circuit


def vqe_circuit(num_qubits: int = 13, layers: int = 2,
                transpile: bool = True) -> Circuit:
    """Build a VQE hardware-efficient ansatz matching SupermarQ's ``VQE``.

    SupermarQ's VQE benchmark is rotation-dominated with very few CNOTs
    (Table 3: 78 Rz vs 12 CNOT for 13 qubits): per layer it applies an Euler
    rotation triple on every qubit and entangles only a handful of pairs.
    """
    if num_qubits < 2:
        raise ValueError("vqe needs at least 2 qubits")
    circuit = Circuit(num_qubits, name=f"vqe_n{num_qubits}")
    for layer in range(layers):
        _dressed_rotation_layer(circuit, num_qubits, seed=0.29 + 0.05 * layer)
        # Sparse entanglement: a few pairs only.
        for left in range(0, num_qubits - 1, max(2, num_qubits // 3)):
            circuit.append(Gate(GateType.CNOT, (left, left + 1)))
    if transpile:
        return transpile_to_clifford_rz(circuit)
    return circuit
