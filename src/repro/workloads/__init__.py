"""Workload generators reproducing the Table 3 benchmark families."""

from .chemistry import gcm_circuit, pauli_string_exponential, vqe_circuit
from .dnn import dnn_circuit
from .ising import ising_circuit
from .multiplier import multiplier_circuit, multiplier_width_for_qubits
from .qft import qft_circuit
from .qugan import qugan_circuit
from .registry import (
    BENCHMARK_REGISTRY,
    TABLE3,
    BenchmarkSpec,
    benchmark_names,
    get_benchmark,
    imported_benchmark,
    register_benchmark,
    representative_benchmarks,
    resolve_benchmark,
    table3_rows,
)
from .scenarios import (
    CURATED_SCENARIOS,
    SCENARIO_FAMILIES,
    ScenarioError,
    ScenarioFamily,
    ScenarioParameter,
    build_scenario,
    clifford_rz_circuit,
    clifford_t_circuit,
    congestion_circuit,
    parse_scenario_name,
    scenario_benchmark,
    scenario_name,
    scenario_sweep_names,
)
from .supermarq import (
    hamiltonian_simulation_circuit,
    qaoa_fermionic_swap_circuit,
    qaoa_vanilla_circuit,
    random_regular_edges,
)
from .wstate import wstate_circuit

__all__ = [
    "BenchmarkSpec",
    "BENCHMARK_REGISTRY",
    "TABLE3",
    "benchmark_names",
    "get_benchmark",
    "imported_benchmark",
    "register_benchmark",
    "representative_benchmarks",
    "resolve_benchmark",
    "table3_rows",
    "ScenarioError",
    "ScenarioParameter",
    "ScenarioFamily",
    "SCENARIO_FAMILIES",
    "CURATED_SCENARIOS",
    "scenario_name",
    "parse_scenario_name",
    "build_scenario",
    "scenario_benchmark",
    "scenario_sweep_names",
    "clifford_t_circuit",
    "clifford_rz_circuit",
    "congestion_circuit",
    "ising_circuit",
    "qft_circuit",
    "multiplier_circuit",
    "multiplier_width_for_qubits",
    "qugan_circuit",
    "gcm_circuit",
    "vqe_circuit",
    "pauli_string_exponential",
    "dnn_circuit",
    "wstate_circuit",
    "hamiltonian_simulation_circuit",
    "qaoa_vanilla_circuit",
    "qaoa_fermionic_swap_circuit",
    "random_regular_edges",
]
