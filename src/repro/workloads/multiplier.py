"""Reversible array multiplier circuits (the ``multiplier`` suite).

QASMBench's ``multiplier_n45`` / ``multiplier_n75`` are ripple-carry array
multipliers built almost entirely from Toffoli and CNOT gates.  After lowering
Toffolis into the Clifford+Rz basis the circuits contain thousands of Rz and
CNOT gates with a ratio very close to 1 (Table 3: 2237/2286 and 6384/6510) —
a dense, deep workload dominated by two-qubit routing.
"""

from __future__ import annotations

from typing import Tuple

from ..circuits import Circuit, Gate, GateType, transpile_to_clifford_rz

__all__ = ["multiplier_circuit", "multiplier_width_for_qubits"]


def multiplier_width_for_qubits(num_qubits: int) -> int:
    """Largest operand bit-width whose multiplier fits in ``num_qubits`` qubits.

    The layout uses ``n`` qubits per operand, ``2n`` for the product register
    and ``1`` carry ancilla, i.e. ``4n + 1`` total (matching the QASMBench
    n45 = 4*11+1 and n75 ~ 4*18+3 layouts to within a couple of idle qubits).
    """
    width = (num_qubits - 1) // 4
    if width < 1:
        raise ValueError("need at least 5 qubits for a 1-bit multiplier")
    return width


def _majority(circuit: Circuit, a: int, b: int, c: int) -> None:
    circuit.append(Gate(GateType.CNOT, (c, b)))
    circuit.append(Gate(GateType.CNOT, (c, a)))
    circuit.append(Gate(GateType.CCX, (a, b, c)))


def _unmajority(circuit: Circuit, a: int, b: int, c: int) -> None:
    circuit.append(Gate(GateType.CCX, (a, b, c)))
    circuit.append(Gate(GateType.CNOT, (c, a)))
    circuit.append(Gate(GateType.CNOT, (a, b)))


def _controlled_adder(circuit: Circuit, control: int, addend: Tuple[int, ...],
                      accumulator: Tuple[int, ...], carry: int) -> None:
    """Add ``addend`` into ``accumulator`` controlled on ``control``.

    Implemented as a Cuccaro ripple-carry adder where each addend bit is first
    copied into a temporary role under the control (CCX), mirroring the
    shift-and-add structure of the QASMBench multiplier.
    """
    width = len(addend)
    # Controlled copy of the addend into play.
    for bit in range(width):
        circuit.append(Gate(GateType.CCX, (control, addend[bit],
                                           accumulator[bit])))
    # Ripple the carries with majority/unmajority chains.
    chain = [carry] + list(accumulator[:width])
    for bit in range(width - 1):
        _majority(circuit, chain[bit], addend[bit], chain[bit + 1])
    for bit in range(width - 2, -1, -1):
        _unmajority(circuit, chain[bit], addend[bit], chain[bit + 1])


def multiplier_circuit(num_qubits: int, transpile: bool = True) -> Circuit:
    """Build a shift-and-add reversible multiplier using ``num_qubits`` qubits.

    Registers: multiplicand ``a`` (width ``n``), multiplier ``b`` (width ``n``),
    product ``p`` (width ``2n``), one carry ancilla.  For every bit of ``b`` a
    controlled adder adds ``a`` (shifted) into the product register.
    """
    width = multiplier_width_for_qubits(num_qubits)
    a = tuple(range(0, width))
    b = tuple(range(width, 2 * width))
    product = tuple(range(2 * width, 4 * width))
    carry = 4 * width
    circuit = Circuit(num_qubits, name=f"multiplier_n{num_qubits}")

    # Load non-trivial operand values so the adders are structurally complete.
    for qubit in a[::2]:
        circuit.append(Gate(GateType.X, (qubit,)))
    for qubit in b[1::2]:
        circuit.append(Gate(GateType.X, (qubit,)))

    for shift, control in enumerate(b):
        window = product[shift:shift + width]
        if len(window) < width:
            window = product[-width:]
        _controlled_adder(circuit, control, a, tuple(window), carry)

    if transpile:
        return transpile_to_clifford_rz(circuit)
    return circuit
