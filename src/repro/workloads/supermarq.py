"""SupermarQ-style benchmarks: Hamiltonian simulation and QAOA variants.

These reproduce the structure of the SupermarQ suite rows in Table 3:

* ``HamiltonianSimulation`` — one Trotter step of a TFIM chain, ~2 Rz and
  ~2 CNOT per qubit, wide and shallow;
* ``QAOAVanilla`` — QAOA on a random 3-regular graph with direct Rzz terms;
* ``QAOAFermionicSwap`` — the fermionic-swap-network QAOA variant, which
  trades locality for ~50% more CNOTs per Rz than vanilla QAOA.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..circuits import Circuit, Gate, GateType, transpile_to_clifford_rz

__all__ = [
    "hamiltonian_simulation_circuit",
    "qaoa_vanilla_circuit",
    "qaoa_fermionic_swap_circuit",
    "random_regular_edges",
]


def hamiltonian_simulation_circuit(num_qubits: int, steps: int = 1,
                                   transpile: bool = True) -> Circuit:
    """SupermarQ Hamiltonian-simulation benchmark (TFIM, one Trotter step)."""
    if num_qubits < 2:
        raise ValueError("hamiltonian simulation needs at least 2 qubits")
    circuit = Circuit(num_qubits, name=f"HamiltonianSimulation_n{num_qubits}")
    for step in range(steps):
        for qubit in range(num_qubits):
            circuit.append(Gate(GateType.RX, (qubit,),
                                angle=0.5 + 0.01 * step))
        for left in range(num_qubits - 1):
            circuit.append(Gate(GateType.RZZ, (left, left + 1),
                                angle=0.3 + 0.01 * step))
    if transpile:
        return transpile_to_clifford_rz(circuit)
    return circuit


def random_regular_edges(num_qubits: int, degree: int = 3,
                         seed: int = 7) -> List[Tuple[int, int]]:
    """Deterministic pseudo-random ``degree``-regular-ish edge list.

    A simple circulant construction: connect each vertex to its +1, +2, ...
    +ceil(degree/2) neighbours modulo ``num_qubits`` and drop edges until the
    average degree matches.  Deterministic so benchmark circuits are stable
    across runs without needing an RNG dependency here.
    """
    rng = np.random.default_rng(seed)
    offsets = list(range(1, degree // 2 + 2))
    edges = set()
    for offset in offsets:
        for vertex in range(num_qubits):
            edge = tuple(sorted((vertex, (vertex + offset) % num_qubits)))
            if edge[0] != edge[1]:
                edges.add(edge)
    target_count = (num_qubits * degree) // 2
    edge_list = sorted(edges)
    while len(edge_list) > target_count:
        drop = int(rng.integers(0, len(edge_list)))
        edge_list.pop(drop)
    return edge_list


def qaoa_vanilla_circuit(num_qubits: int, rounds: int = 2,
                         degree: int = 3, seed: int = 7,
                         transpile: bool = True) -> Circuit:
    """SupermarQ vanilla-QAOA benchmark on a pseudo-random regular graph."""
    if num_qubits < 3:
        raise ValueError("qaoa needs at least 3 qubits")
    circuit = Circuit(num_qubits, name=f"QAOAVanilla_n{num_qubits}")
    edges = random_regular_edges(num_qubits, degree=degree, seed=seed)
    for qubit in range(num_qubits):
        circuit.append(Gate(GateType.H, (qubit,)))
    for qaoa_round in range(rounds):
        gamma = 0.4 + 0.1 * qaoa_round
        beta = 0.7 - 0.1 * qaoa_round
        for left, right in edges:
            circuit.append(Gate(GateType.RZZ, (left, right), angle=2 * gamma))
        for qubit in range(num_qubits):
            circuit.append(Gate(GateType.RX, (qubit,), angle=2 * beta))
    if transpile:
        return transpile_to_clifford_rz(circuit)
    return circuit


def qaoa_fermionic_swap_circuit(num_qubits: int, rounds: int = 2,
                                transpile: bool = True) -> Circuit:
    """SupermarQ fermionic-swap-network QAOA benchmark.

    The swap network sweeps ``num_qubits`` layers of neighbouring
    Rzz-plus-SWAP blocks per round so that every pair interacts using only
    nearest-neighbour gates; this inflates the CNOT count relative to vanilla
    QAOA (Table 3: 315 vs 210 CNOTs at 15 qubits) while keeping the same
    number of Rz rotations.
    """
    if num_qubits < 3:
        raise ValueError("qaoa needs at least 3 qubits")
    circuit = Circuit(num_qubits, name=f"QAOAFermionicSwap_n{num_qubits}")
    for qubit in range(num_qubits):
        circuit.append(Gate(GateType.H, (qubit,)))
    for qaoa_round in range(rounds):
        gamma = 0.4 + 0.1 * qaoa_round
        beta = 0.7 - 0.1 * qaoa_round
        for sweep in range(num_qubits):
            start = sweep % 2
            for left in range(start, num_qubits - 1, 2):
                # Fused Rzz + fermionic swap block: swap costs 3 CNOTs but one
                # CNOT cancels against the Rzz ladder, so emit Rzz + 2 CNOTs.
                circuit.append(Gate(GateType.RZZ, (left, left + 1),
                                    angle=2 * gamma / num_qubits))
                circuit.append(Gate(GateType.CNOT, (left, left + 1)))
                circuit.append(Gate(GateType.CNOT, (left + 1, left)))
        for qubit in range(num_qubits):
            circuit.append(Gate(GateType.RX, (qubit,), angle=2 * beta))
    if transpile:
        return transpile_to_clifford_rz(circuit)
    return circuit
