"""Quantum GAN ansatz circuits (the ``qugan`` suite).

The QASMBench ``qugan_n*`` benchmarks are hardware-efficient variational
ansätze used as the generator/discriminator pair of a quantum GAN: layers of
single-qubit ``Ry``/``Rz`` rotations interleaved with linear-entangling CNOT
ladders, plus a SWAP-test style comparison between the two halves.  The
resulting Rz:CNOT ratio is roughly 1.4 (Table 3).
"""

from __future__ import annotations


from ..circuits import Circuit, Gate, GateType, transpile_to_clifford_rz

__all__ = ["qugan_circuit"]


def _rotation_layer(circuit: Circuit, qubits, seed_angle: float) -> None:
    for offset, qubit in enumerate(qubits):
        circuit.append(Gate(GateType.RY, (qubit,),
                            angle=seed_angle + 0.07 * offset))


def _entangling_ladder(circuit: Circuit, qubits) -> None:
    ordered = list(qubits)
    for left, right in zip(ordered, ordered[1:]):
        circuit.append(Gate(GateType.CNOT, (left, right)))


def qugan_circuit(num_qubits: int, layers: int = 2,
                  transpile: bool = True) -> Circuit:
    """Build a quantum-GAN style ansatz on ``num_qubits`` qubits.

    The register is split into a generator half, a discriminator half and one
    comparison ancilla; each half runs ``layers`` alternating rotation and
    entangling layers, then a chain of controlled comparisons entangles the
    halves through the ancilla.
    """
    if num_qubits < 5:
        raise ValueError("qugan needs at least 5 qubits")
    circuit = Circuit(num_qubits, name=f"qugan_n{num_qubits}")
    ancilla = num_qubits - 1
    half = (num_qubits - 1) // 2
    generator = list(range(0, half))
    discriminator = list(range(half, 2 * half))

    for layer in range(layers):
        seed = 0.31 + 0.11 * layer
        _rotation_layer(circuit, generator, seed)
        _entangling_ladder(circuit, generator)
        _rotation_layer(circuit, discriminator, seed + 0.05)
        _entangling_ladder(circuit, discriminator)
        # Rz "phase learning" layer on both halves.
        for offset, qubit in enumerate(generator + discriminator):
            circuit.append(Gate(GateType.RZ, (qubit,),
                                angle=0.13 + 0.03 * offset + 0.09 * layer))

    # SWAP-test style comparison through the ancilla.
    circuit.append(Gate(GateType.H, (ancilla,)))
    for g_qubit, d_qubit in zip(generator, discriminator):
        circuit.append(Gate(GateType.CNOT, (ancilla, g_qubit)))
        circuit.append(Gate(GateType.CNOT, (ancilla, d_qubit)))
        circuit.append(Gate(GateType.RY, (g_qubit,), angle=0.21))
        circuit.append(Gate(GateType.RY, (d_qubit,), angle=0.21))
    circuit.append(Gate(GateType.H, (ancilla,)))

    if transpile:
        return transpile_to_clifford_rz(circuit)
    return circuit
