"""Quantum neural-network circuits (the ``dnn`` suite).

``dnn_n16`` from QASMBench is a layered quantum deep-neural-network ansatz.
It is the most rotation-dominated benchmark in the paper: roughly six Rz per
CNOT (Table 3: 2432 Rz vs 384 CNOT), which stresses |m_theta> preparation
throughput far more than routing.
"""

from __future__ import annotations

from ..circuits import Circuit, Gate, GateType, transpile_to_clifford_rz

__all__ = ["dnn_circuit"]


def _neuron_layer(circuit: Circuit, num_qubits: int, seed: float) -> None:
    """One "neuron" layer: two Euler triples per qubit around sparse CNOTs."""
    for qubit in range(num_qubits):
        circuit.append(Gate(GateType.RZ, (qubit,), angle=seed + 0.023 * qubit))
        circuit.append(Gate(GateType.RY, (qubit,), angle=seed / 2 + 0.017 * qubit))
        circuit.append(Gate(GateType.RZ, (qubit,), angle=seed / 3 + 0.013 * qubit))
    for left in range(0, num_qubits - 1, 2):
        circuit.append(Gate(GateType.CNOT, (left, left + 1)))
    for qubit in range(num_qubits):
        circuit.append(Gate(GateType.RZ, (qubit,), angle=seed + 0.031 * qubit))
        circuit.append(Gate(GateType.RY, (qubit,), angle=seed / 4 + 0.019 * qubit))
        circuit.append(Gate(GateType.RZ, (qubit,), angle=seed / 5 + 0.011 * qubit))
    for left in range(1, num_qubits - 1, 2):
        circuit.append(Gate(GateType.CNOT, (left, left + 1)))


def dnn_circuit(num_qubits: int = 16, layers: int = 8,
                transpile: bool = True) -> Circuit:
    """Build a QNN/dnn-style circuit on ``num_qubits`` qubits.

    Parameters
    ----------
    num_qubits:
        Width of the network.
    layers:
        Number of neuron layers; the default of 8 reproduces the ~6:1 Rz to
        CNOT ratio of ``dnn_n16``.
    transpile:
        When ``True`` return the circuit lowered to the Clifford+Rz basis.
    """
    if num_qubits < 2:
        raise ValueError("dnn needs at least 2 qubits")
    circuit = Circuit(num_qubits, name=f"dnn_n{num_qubits}")
    for layer in range(layers):
        _neuron_layer(circuit, num_qubits, seed=0.41 + 0.06 * layer)
    if transpile:
        return transpile_to_clifford_rz(circuit)
    return circuit
