"""W-state preparation circuits (the ``wstate`` suite).

``wstate_n27`` prepares the n-qubit W state with a chain of controlled
rotations followed by a CNOT cascade.  The circuit is almost completely
*sequential* ("wstate and qft circuits are largely sequential", Section 5.1)
with a 3:1 Rz to CNOT ratio.
"""

from __future__ import annotations

import math

from ..circuits import Circuit, Gate, GateType, transpile_to_clifford_rz

__all__ = ["wstate_circuit"]


def _controlled_ry(circuit: Circuit, control: int, target: int,
                   theta: float) -> None:
    """Controlled-Ry via the standard two-CNOT decomposition."""
    circuit.append(Gate(GateType.RY, (target,), angle=theta / 2))
    circuit.append(Gate(GateType.CNOT, (control, target)))
    circuit.append(Gate(GateType.RY, (target,), angle=-theta / 2))
    circuit.append(Gate(GateType.CNOT, (control, target)))


def wstate_circuit(num_qubits: int, transpile: bool = True) -> Circuit:
    """Build the W-state preparation circuit on ``num_qubits`` qubits.

    The construction rotates amplitude down the chain: qubit 0 starts in |1>,
    each subsequent qubit receives a controlled-Ry with angle
    ``2*acos(sqrt(1/k))`` followed by a CNOT back to the previous qubit.
    """
    if num_qubits < 2:
        raise ValueError("wstate needs at least 2 qubits")
    circuit = Circuit(num_qubits, name=f"wstate_n{num_qubits}")
    circuit.append(Gate(GateType.X, (0,)))
    for qubit in range(1, num_qubits):
        remaining = num_qubits - qubit
        theta = 2 * math.acos(math.sqrt(remaining / (remaining + 1.0)))
        _controlled_ry(circuit, qubit - 1, qubit, theta)
        circuit.append(Gate(GateType.CNOT, (qubit, qubit - 1)))
    if transpile:
        return transpile_to_clifford_rz(circuit)
    return circuit
