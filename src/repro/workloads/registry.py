"""Benchmark registry mirroring Table 3 of the paper.

Every row of Table 3 gets a named entry mapping to a workload generator call.
Because the original QASMBench / SupermarQ circuit files are not shipped with
this reproduction, the generators rebuild the same algorithm families at the
same qubit counts; the actual gate counts of the generated circuits are
reported by :func:`table3_rows` next to the counts the paper lists, so the
substitution is auditable (see DESIGN.md).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..api.registry import Registry, UnknownEntryError
from ..circuits import Circuit
from .chemistry import gcm_circuit, vqe_circuit
from .dnn import dnn_circuit
from .ising import ising_circuit
from .multiplier import multiplier_circuit
from .qft import qft_circuit
from .qugan import qugan_circuit
from .supermarq import (
    hamiltonian_simulation_circuit,
    qaoa_fermionic_swap_circuit,
    qaoa_vanilla_circuit,
)
from .wstate import wstate_circuit

__all__ = [
    "BenchmarkSpec",
    "BENCHMARK_REGISTRY",
    "TABLE3",
    "benchmark_names",
    "get_benchmark",
    "imported_benchmark",
    "register_benchmark",
    "representative_benchmarks",
    "resolve_benchmark",
    "table3_rows",
]


@dataclass(frozen=True)
class BenchmarkSpec:
    """One row of Table 3.

    Attributes
    ----------
    name:
        Canonical benchmark name, e.g. ``"qft_n29"``.
    suite:
        ``"large"``, ``"medium"`` or ``"supermarq"``.
    num_qubits / paper_rz / paper_cnot:
        The values printed in Table 3 of the paper.
    builder:
        Zero-argument callable producing the generated circuit.
    """

    name: str
    suite: str
    num_qubits: int
    paper_rz: int
    paper_cnot: int
    builder: Callable[[], Circuit]

    def build(self) -> Circuit:
        circuit = self.builder()
        circuit.name = self.name
        return circuit


def _spec(name: str, suite: str, qubits: int, rz: int, cnot: int,
          builder: Callable[[], Circuit]) -> BenchmarkSpec:
    return BenchmarkSpec(name, suite, qubits, rz, cnot, builder)


TABLE3: Tuple[BenchmarkSpec, ...] = (
    # -- QASMBench large -------------------------------------------------------
    _spec("ising_n34", "large", 34, 83, 66, lambda: ising_circuit(34)),
    _spec("ising_n42", "large", 42, 103, 82, lambda: ising_circuit(42)),
    _spec("ising_n66", "large", 66, 163, 130, lambda: ising_circuit(66)),
    _spec("ising_n98", "large", 98, 243, 194, lambda: ising_circuit(98)),
    _spec("ising_n420", "large", 420, 1048, 838, lambda: ising_circuit(420)),
    _spec("multiplier_n45", "large", 45, 2237, 2286,
          lambda: multiplier_circuit(45)),
    _spec("multiplier_n75", "large", 75, 6384, 6510,
          lambda: multiplier_circuit(75)),
    _spec("qft_n29", "large", 29, 708, 680, lambda: qft_circuit(29)),
    _spec("qft_n63", "large", 63, 1898, 1836,
          lambda: qft_circuit(63, approximation_degree=32)),
    _spec("qft_n160", "large", 160, 5293, 5134,
          lambda: qft_circuit(160, approximation_degree=130)),
    _spec("qugan_n39", "large", 39, 411, 296, lambda: qugan_circuit(39, layers=3)),
    _spec("qugan_n71", "large", 71, 763, 552, lambda: qugan_circuit(71, layers=3)),
    _spec("qugan_n111", "large", 111, 1203, 872,
          lambda: qugan_circuit(111, layers=3)),
    # -- QASMBench medium -----------------------------------------------------
    _spec("gcm_n13", "medium", 13, 1528, 762,
          lambda: gcm_circuit(13, generator_terms=110)),
    _spec("dnn_n16", "medium", 16, 2432, 384, lambda: dnn_circuit(16, layers=8)),
    _spec("qft_n18", "medium", 18, 323, 306, lambda: qft_circuit(18)),
    _spec("wstate_n27", "medium", 27, 156, 52, lambda: wstate_circuit(27)),
    # -- SupermarQ --------------------------------------------------------------
    _spec("HamiltonianSimulation_n25", "supermarq", 25, 49, 48,
          lambda: hamiltonian_simulation_circuit(25)),
    _spec("HamiltonianSimulation_n50", "supermarq", 50, 99, 98,
          lambda: hamiltonian_simulation_circuit(50)),
    _spec("HamiltonianSimulation_n75", "supermarq", 75, 149, 148,
          lambda: hamiltonian_simulation_circuit(75)),
    _spec("QAOAFermionicSwap_n15", "supermarq", 15, 120, 315,
          lambda: qaoa_fermionic_swap_circuit(15, rounds=1)),
    _spec("QAOAVanilla_n15", "supermarq", 15, 120, 210,
          lambda: qaoa_vanilla_circuit(15, rounds=3)),
    _spec("VQE_n13", "supermarq", 13, 78, 12, lambda: vqe_circuit(13, layers=2)),
)

#: Name -> :class:`BenchmarkSpec`.  Table 3 rows are pre-registered; user
#: workloads join via :func:`register_benchmark` and are then addressable
#: from :class:`~repro.api.spec.ExperimentSpec` files and the CLI.
BENCHMARK_REGISTRY: Registry = Registry("benchmark")
for _spec_entry in TABLE3:
    BENCHMARK_REGISTRY.register(_spec_entry.name, _spec_entry)


def register_benchmark(spec: BenchmarkSpec) -> BenchmarkSpec:
    """Add a user-defined workload to the benchmark registry.

    Raises :class:`~repro.api.registry.DuplicateEntryError` if the name
    collides with a Table 3 row or a previously registered workload.
    """
    return BENCHMARK_REGISTRY.register(spec.name, spec)

#: The three benchmarks the paper singles out for its sensitivity studies
#: (Section 5.2): dnn_n16 (highest Rz:CNOT), gcm_n13 (~2:1) and qft_n160
#: (1:1 and the largest qubit count).  ``qft_n18`` is offered as a faster
#: stand-in for qft_n160 in laptop-scale sweeps.
REPRESENTATIVE = ("dnn_n16", "gcm_n13", "qft_n160")


def benchmark_names(suite: Optional[str] = None) -> List[str]:
    """List registered benchmark names (sorted), optionally filtered by suite."""
    return [name for name, spec in BENCHMARK_REGISTRY.items()
            if suite is None or spec.suite == suite]


def get_benchmark(name: str) -> BenchmarkSpec:
    """Look up a registered benchmark by name (raises ``KeyError`` if unknown)."""
    return BENCHMARK_REGISTRY.get(name)


#: path -> ((size, mtime_ns), BenchmarkSpec) memo for :func:`imported_benchmark`.
#: Resolution is eager (parse + transpile) and happens for validation and
#: expansion alike, so without the memo one ``rescq run file.qasm`` would
#: parse the file several times.  The stat signature invalidates the entry
#: whenever the file is rewritten.
_IMPORT_MEMO: Dict[str, Tuple[Tuple[int, int], BenchmarkSpec]] = {}


def imported_benchmark(path: str) -> BenchmarkSpec:
    """Wrap one OpenQASM 2.0 file as a :class:`BenchmarkSpec`.

    The file is parsed and lowered eagerly, so malformed input fails here —
    at spec-validation time, with the importer's file:line:column message —
    rather than inside a worker process.  The spec's name is the path exactly
    as given (results and cache fingerprints key on it plus the full gate
    content, so edits to the file are always cache misses).
    """
    from ..circuits.qasm import import_qasm_file
    path = str(path)
    try:
        stat = os.stat(path)
        signature = (stat.st_size, stat.st_mtime_ns)
    except OSError:
        signature = None  # let import_qasm_file report the read failure
    if signature is not None:
        cached = _IMPORT_MEMO.get(path)
        if cached is not None and cached[0] == signature:
            return cached[1]
    circuit = import_qasm_file(path)
    circuit.name = path
    spec = BenchmarkSpec(
        name=path,
        suite="imported",
        num_qubits=circuit.num_qubits,
        paper_rz=0,
        paper_cnot=0,
        builder=circuit.copy,
    )
    if signature is not None:
        _IMPORT_MEMO[path] = (signature, spec)
    return spec


def resolve_benchmark(name: str) -> BenchmarkSpec:
    """Resolve any benchmark reference accepted by specs and the CLI.

    Three reference forms are recognised, tried in order:

    1. a registered benchmark name (Table 3 rows, user registrations and the
       curated ``scenario:...`` instances);
    2. a dynamic ``scenario:<family>[:key=value,...]`` generator name (see
       :mod:`repro.workloads.scenarios`);
    3. a path to an OpenQASM 2.0 file (anything ending in ``.qasm``).

    Raises an actionable error: :class:`ScenarioError` for bad scenario
    names, :class:`~repro.circuits.qasm.QasmImportError` for unreadable or
    malformed files and :class:`~repro.api.registry.UnknownEntryError`
    otherwise.  All three are ``ValueError``/``KeyError`` subclasses, so
    spec validation can report them uniformly.
    """
    if name in BENCHMARK_REGISTRY:
        return BENCHMARK_REGISTRY.get(name)
    if name.startswith("scenario:"):
        from .scenarios import scenario_benchmark
        return scenario_benchmark(name)
    if name.endswith(".qasm"):
        return imported_benchmark(name)
    if os.path.sep in name or name.endswith((".inc", ".txt", ".json")):
        raise UnknownEntryError(
            f"benchmark {name!r} looks like a file path but only .qasm "
            f"files can be imported"
        )
    raise UnknownEntryError(
        f"unknown benchmark {name!r}; known: {BENCHMARK_REGISTRY.names()}. "
        f"A benchmark may also be a 'scenario:<family>:key=value,...' "
        f"generator name or a path to an OpenQASM 2.0 file (*.qasm)"
    )


def representative_benchmarks(fast: bool = False) -> List[BenchmarkSpec]:
    """Return the sensitivity-study benchmarks (Section 5.2).

    With ``fast=True`` the 160-qubit QFT is replaced by the 18-qubit QFT so
    that full sweeps complete quickly during development and CI.
    """
    names = list(REPRESENTATIVE)
    if fast:
        names[names.index("qft_n160")] = "qft_n18"
    return [get_benchmark(name) for name in names]


def table3_rows() -> List[Dict[str, object]]:
    """Generate every benchmark and report generated vs paper gate counts."""
    rows: List[Dict[str, object]] = []
    for spec in TABLE3:
        stats = spec.build().stats()
        rows.append({
            "name": spec.name,
            "suite": spec.suite,
            "qubits": spec.num_qubits,
            "paper_rz": spec.paper_rz,
            "paper_cnot": spec.paper_cnot,
            "generated_rz": stats.num_rz,
            "generated_cnot": stats.num_cnot,
            "generated_rz_per_cnot": round(stats.rz_to_cnot_ratio, 2),
        })
    return rows
