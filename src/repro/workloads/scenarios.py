"""Seeded, parameterized scenario generators: an open-ended workload frontier.

Table 3 freezes the benchmark suite at ten algorithm families.  This module
opens the scenario space with generator *families* whose circuits are fully
determined by a (small, validated) parameter set plus a seed:

``clifford_t``
    Random Clifford+T circuits with tunable depth, T-gate density, CNOT
    fraction and two-qubit connectivity — the standard random-circuit model
    for fault-tolerant cost studies.

``clifford_rz``
    The continuous-angle variant: random Clifford+Rz circuits whose Rz
    density directly controls magic-state (|m_theta>) pressure, the resource
    the paper's scheduler manages.

``congestion``
    Adversarial layered patterns that stress the MST/routing hot paths:
    every layer issues all "crossing" CNOTs (qubit ``i`` with ``n-1-i``, so
    every route contends for the central ancilla region) followed by an Rz
    storm on a rotating hotspot window (concentrated injection demand).

Scenarios are addressed by *name*::

    scenario:clifford_t:n=16,depth=24,t_density=0.3,seed=7

The name grammar is ``scenario:<family>[:key=value,...]``; omitted keys take
the family defaults.  Names resolve anywhere a benchmark name does — in
``ExperimentSpec.benchmarks``, on ``rescq run`` and via ``rescq gen`` — and
because the execution engine fingerprints the full generated gate content,
changing any parameter or the seed is a cache miss while repeating a name is
a cache hit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from ..api.registry import Registry, UnknownEntryError
from ..circuits import Circuit, Gate, GateType, transpile_to_clifford_rz
from .registry import BenchmarkSpec, register_benchmark

__all__ = [
    "ScenarioError",
    "ScenarioParameter",
    "ScenarioFamily",
    "SCENARIO_FAMILIES",
    "CURATED_SCENARIOS",
    "scenario_name",
    "parse_scenario_name",
    "build_scenario",
    "scenario_benchmark",
    "scenario_sweep_names",
    "clifford_t_circuit",
    "clifford_rz_circuit",
    "congestion_circuit",
]


class ScenarioError(ValueError):
    """A scenario name or parameter set does not describe a buildable circuit."""


@dataclass(frozen=True)
class ScenarioParameter:
    """One tunable knob of a scenario family (type, default, bounds)."""

    name: str
    kind: type  # int or float
    default: object
    minimum: object = None
    maximum: object = None
    help: str = ""

    def parse(self, text: str, family: str) -> object:
        try:
            if self.kind is int:
                value = int(text)
            else:
                value = float(text)
        except ValueError:
            raise ScenarioError(
                f"scenario {family!r} parameter {self.name!r} expects "
                f"{self.kind.__name__}, got {text!r}"
            ) from None
        return self.check(value, family)

    def check(self, value: object, family: str) -> object:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ScenarioError(
                f"scenario {family!r} parameter {self.name!r} expects "
                f"{self.kind.__name__}, got {value!r}"
            )
        if self.kind is int and not isinstance(value, int):
            if float(value).is_integer():
                value = int(value)
            else:
                raise ScenarioError(
                    f"scenario {family!r} parameter {self.name!r} expects an "
                    f"integer, got {value!r}"
                )
        value = self.kind(value)
        if self.minimum is not None and value < self.minimum:
            raise ScenarioError(
                f"scenario {family!r} parameter {self.name!r} must be "
                f">= {self.minimum}, got {value!r}"
            )
        if self.maximum is not None and value > self.maximum:
            raise ScenarioError(
                f"scenario {family!r} parameter {self.name!r} must be "
                f"<= {self.maximum}, got {value!r}"
            )
        return value


@dataclass(frozen=True)
class ScenarioFamily:
    """A named generator plus its parameter schema."""

    name: str
    description: str
    parameters: Tuple[ScenarioParameter, ...]
    builder: Callable[..., Circuit]

    def parameter(self, name: str) -> ScenarioParameter:
        for parameter in self.parameters:
            if parameter.name == name:
                return parameter
        known = [parameter.name for parameter in self.parameters]
        raise ScenarioError(
            f"scenario family {self.name!r} has no parameter {name!r}; "
            f"parameters: {known}"
        )

    def defaults(self) -> Dict[str, object]:
        return {parameter.name: parameter.default for parameter in self.parameters}

    def resolve(self, overrides: Dict[str, object]) -> Dict[str, object]:
        """Defaults merged with validated ``overrides`` (unknown keys error)."""
        params = self.defaults()
        for key, value in overrides.items():
            parameter = self.parameter(key)
            params[key] = parameter.check(value, self.name)
        return params

    def build(self, **params: object) -> Circuit:
        resolved = self.resolve(params)
        return self.builder(**resolved)


#: Registered scenario generator families (``rescq gen --list``).
SCENARIO_FAMILIES: Registry = Registry("scenario family")


# ---------------------------------------------------------------------------
# Generators
# ---------------------------------------------------------------------------


def _partner_pool(
    qubit: int, num_qubits: int, used: set, connectivity: int
) -> List[int]:
    """CNOT partners for ``qubit`` under the connectivity constraint.

    ``connectivity`` bounds the index distance of a two-qubit gate (a proxy
    for routing distance on the STAR fabric's snake-ordered data row);
    ``0`` means unrestricted.
    """
    partners = []
    for other in range(num_qubits):
        if other == qubit or other in used:
            continue
        if connectivity and abs(other - qubit) > connectivity:
            continue
        partners.append(other)
    return partners


def _random_layered_circuit(
    name: str,
    num_qubits: int,
    depth: int,
    cx_fraction: float,
    connectivity: int,
    seed: int,
    single_qubit: Callable[[np.random.Generator, int], Gate],
) -> Circuit:
    """Shared skeleton: per layer, each qubit gets one gate (CNOT or 1q)."""
    rng = np.random.default_rng(seed)
    circuit = Circuit(num_qubits, name=name)
    for _layer in range(depth):
        used: set = set()
        for qubit in (int(q) for q in rng.permutation(num_qubits)):
            if qubit in used:
                continue
            if rng.random() < cx_fraction:
                partners = _partner_pool(qubit, num_qubits, used, connectivity)
                if partners:
                    partner = partners[int(rng.integers(len(partners)))]
                    pair = (qubit, partner) if rng.random() < 0.5 else (partner, qubit)
                    circuit.append(Gate(GateType.CNOT, pair))
                    used.update(pair)
                    continue
            circuit.append(single_qubit(rng, qubit))
            used.add(qubit)
    return circuit


def clifford_t_circuit(
    n: int,
    depth: int,
    t_density: float = 0.25,
    cx_fraction: float = 0.35,
    connectivity: int = 0,
    seed: int = 0,
    transpile: bool = True,
) -> Circuit:
    """Random Clifford+T circuit: ``depth`` layers over ``n`` qubits."""

    def single_qubit(rng: np.random.Generator, qubit: int) -> Gate:
        if rng.random() < t_density:
            kind = GateType.T if rng.random() < 0.5 else GateType.TDG
            return Gate(kind, (qubit,))
        kind = (GateType.H, GateType.S, GateType.X)[int(rng.integers(3))]
        return Gate(kind, (qubit,))

    circuit = _random_layered_circuit(
        f"clifford_t_n{n}", n, depth, cx_fraction, connectivity, seed, single_qubit
    )
    return transpile_to_clifford_rz(circuit) if transpile else circuit


def clifford_rz_circuit(
    n: int,
    depth: int,
    rz_density: float = 0.4,
    cx_fraction: float = 0.35,
    connectivity: int = 0,
    seed: int = 0,
    transpile: bool = True,
) -> Circuit:
    """Random Clifford+Rz circuit with continuous (non-Clifford) angles."""

    def single_qubit(rng: np.random.Generator, qubit: int) -> Gate:
        if rng.random() < rz_density:
            angle = float(rng.uniform(0.05, 2.0 * np.pi - 0.05))
            return Gate(GateType.RZ, (qubit,), angle=angle)
        kind = (GateType.H, GateType.S, GateType.X)[int(rng.integers(3))]
        return Gate(kind, (qubit,))

    circuit = _random_layered_circuit(
        f"clifford_rz_n{n}", n, depth, cx_fraction, connectivity, seed, single_qubit
    )
    return transpile_to_clifford_rz(circuit) if transpile else circuit


def congestion_circuit(
    n: int,
    layers: int = 4,
    hotspot: float = 0.34,
    seed: int = 0,
    transpile: bool = True,
) -> Circuit:
    """Adversarial congestion pattern stressing MST construction and routing.

    Each layer issues every *crossing* CNOT — qubit ``i`` with ``n-1-i`` —
    in a seeded random order, so all in-flight routes pull toward the same
    central ancilla tiles and the MST repeatedly rebuilds over a contended
    region.  The layer then fires two continuous Rz rotations on every qubit
    of a hotspot window (``hotspot`` fraction of the register, rotating by
    one window per layer), concentrating |m_theta> preparation demand on a
    moving patch of the fabric.
    """
    rng = np.random.default_rng(seed)
    circuit = Circuit(n, name=f"congestion_n{n}")
    window = max(2, int(round(hotspot * n)))
    for layer in range(layers):
        pairs = [(i, n - 1 - i) for i in range(n // 2)]
        for index in (int(i) for i in rng.permutation(len(pairs))):
            control, target = pairs[index]
            if rng.random() < 0.5:
                control, target = target, control
            circuit.append(Gate(GateType.CNOT, (control, target)))
        start = (layer * window) % n
        for offset in range(window):
            qubit = (start + offset) % n
            for _rep in range(2):
                angle = float(rng.uniform(0.05, 2.0 * np.pi - 0.05))
                circuit.append(Gate(GateType.RZ, (qubit,), angle=angle))
    return transpile_to_clifford_rz(circuit) if transpile else circuit


def _int_param(name: str, default: int, minimum: int, help_text: str):
    return ScenarioParameter(name, int, default, minimum=minimum, help=help_text)


def _fraction_param(name: str, default: float, help_text: str):
    return ScenarioParameter(
        name, float, default, minimum=0.0, maximum=1.0, help=help_text
    )


SCENARIO_FAMILIES.register(
    "clifford_t",
    ScenarioFamily(
        name="clifford_t",
        description="random Clifford+T layers (tunable T density/connectivity)",
        parameters=(
            _int_param("n", 12, 2, "number of logical qubits"),
            _int_param("depth", 16, 1, "number of gate layers"),
            _fraction_param("t_density", 0.25, "probability a 1q gate is T/Tdg"),
            _fraction_param("cx_fraction", 0.35, "probability a slot seeds a CNOT"),
            _int_param("connectivity", 0, 0, "max CNOT index distance (0 = any)"),
            _int_param("seed", 0, 0, "generator seed"),
        ),
        builder=clifford_t_circuit,
    ),
)

SCENARIO_FAMILIES.register(
    "clifford_rz",
    ScenarioFamily(
        name="clifford_rz",
        description="random Clifford+Rz layers (continuous-angle injections)",
        parameters=(
            _int_param("n", 12, 2, "number of logical qubits"),
            _int_param("depth", 16, 1, "number of gate layers"),
            _fraction_param("rz_density", 0.4, "probability a 1q gate is an Rz"),
            _fraction_param("cx_fraction", 0.35, "probability a slot seeds a CNOT"),
            _int_param("connectivity", 0, 0, "max CNOT index distance (0 = any)"),
            _int_param("seed", 0, 0, "generator seed"),
        ),
        builder=clifford_rz_circuit,
    ),
)

SCENARIO_FAMILIES.register(
    "congestion",
    ScenarioFamily(
        name="congestion",
        description="crossing-CNOT + Rz-storm layers stressing MST/routing",
        parameters=(
            _int_param("n", 12, 4, "number of logical qubits"),
            _int_param("layers", 4, 1, "number of congestion layers"),
            _fraction_param("hotspot", 0.34, "fraction of qubits per Rz storm"),
            _int_param("seed", 0, 0, "generator seed"),
        ),
        builder=congestion_circuit,
    ),
)


# ---------------------------------------------------------------------------
# Scenario names: scenario:<family>[:key=value,...]
# ---------------------------------------------------------------------------

_PREFIX = "scenario:"


def _format_value(value: object) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)


def scenario_name(family: str, **params: object) -> str:
    """Canonical scenario name for ``family`` with ``params`` (keys sorted)."""
    spec = _get_family(family)
    resolved = spec.resolve(params)
    encoded = ",".join(
        f"{key}={_format_value(resolved[key])}" for key in sorted(resolved)
    )
    return f"{_PREFIX}{family}:{encoded}"


def _get_family(name: str) -> ScenarioFamily:
    try:
        return SCENARIO_FAMILIES.get(name)
    except UnknownEntryError:
        raise ScenarioError(
            f"unknown scenario family {name!r}; families: "
            f"{SCENARIO_FAMILIES.names()}"
        ) from None


def parse_scenario_name(name: str) -> Tuple[ScenarioFamily, Dict[str, object]]:
    """Split a ``scenario:...`` name into its family and full parameter set."""
    if not name.startswith(_PREFIX):
        raise ScenarioError(f"scenario names start with {_PREFIX!r}, got {name!r}")
    body = name[len(_PREFIX) :]
    family_name, _, param_text = body.partition(":")
    if not family_name:
        raise ScenarioError(
            f"scenario name {name!r} names no family; families: "
            f"{SCENARIO_FAMILIES.names()}"
        )
    family = _get_family(family_name)
    overrides: Dict[str, object] = {}
    if param_text:
        for item in param_text.split(","):
            key, equals, value_text = item.partition("=")
            key = key.strip()
            if not equals or not key or not value_text.strip():
                raise ScenarioError(
                    f"malformed scenario parameter {item!r} in {name!r}; "
                    f"use key=value pairs separated by commas"
                )
            if key in overrides:
                raise ScenarioError(
                    f"scenario parameter {key!r} appears twice in {name!r}"
                )
            parameter = family.parameter(key)
            overrides[key] = parameter.parse(value_text.strip(), family.name)
    return family, family.resolve(overrides)


def build_scenario(name: str) -> Circuit:
    """Build the (transpiled) circuit a scenario name denotes."""
    family, params = parse_scenario_name(name)
    circuit = family.builder(**params)
    circuit.name = name
    return circuit


def scenario_benchmark(name: str) -> BenchmarkSpec:
    """Wrap a scenario name as a :class:`BenchmarkSpec` (suite ``scenario``).

    ``paper_rz``/``paper_cnot`` are 0: generated scenarios have no Table 3
    row to compare against.
    """
    family, params = parse_scenario_name(name)
    return BenchmarkSpec(
        name=name,
        suite="scenario",
        num_qubits=int(params["n"]),
        paper_rz=0,
        paper_cnot=0,
        builder=lambda: family.builder(**params),
    )


def scenario_sweep_names(
    family: str, parameter: str, values: Sequence[object], **fixed: object
) -> List[str]:
    """Scenario names sweeping one generator parameter (a benchmark axis).

    The returned names drop into ``ExperimentSpec.benchmarks``, turning a
    generator knob (depth, T density, connectivity, seed, ...) into a sweep
    axis alongside the config grid::

        spec = ExperimentSpec(
            name="t-density-sweep",
            benchmarks=scenario_sweep_names(
                "clifford_t", "t_density", [0.1, 0.3, 0.5], n=16, depth=24
            ),
        )
    """
    spec = _get_family(family)
    spec.parameter(parameter)  # validate the swept knob exists
    names = []
    for value in values:
        params = dict(fixed)
        params[parameter] = value
        names.append(scenario_name(family, **params))
    return names


#: Curated instances pre-registered in the benchmark registry, so the
#: scenario engine is exercised by name without spelling out parameters.
CURATED_SCENARIOS: Tuple[str, ...] = (
    scenario_name("clifford_t", n=12, depth=16, seed=11),
    scenario_name("clifford_rz", n=12, depth=16, seed=11),
    scenario_name("congestion", n=12, layers=5, seed=11),
)

for _curated in CURATED_SCENARIOS:
    register_benchmark(scenario_benchmark(_curated))
