"""Transverse-field Ising model Trotter circuits (the ``ising`` suite).

The QASMBench ``ising_n*`` benchmarks are single Trotter steps of a 1D
transverse-field Ising Hamiltonian.  They are highly *parallel*: every bond
term commutes with every other even/odd bond term, so the scheduler sees wide
layers of simultaneous CNOTs — exactly the stress case the paper calls out
("ising circuits are largely parallel", Section 5.1).
"""

from __future__ import annotations


from ..circuits import Circuit, Gate, GateType, transpile_to_clifford_rz

__all__ = ["ising_circuit"]


def ising_circuit(num_qubits: int, steps: int = 1,
                  coupling: float = 0.3, field: float = 0.7,
                  boundary_field: float = 0.15,
                  transpile: bool = True) -> Circuit:
    """Build a 1D TFIM Trotter circuit on ``num_qubits`` qubits.

    Each Trotter step applies ``Rzz(2*J*dt)`` on every nearest-neighbour bond
    followed by ``Rx(2*h*dt)`` on every site; boundary sites receive an extra
    longitudinal ``Rz`` so that the per-qubit rotation count matches the
    published QASMBench circuits closely (~2.5 Rz per qubit per step).

    Parameters
    ----------
    num_qubits:
        Chain length.
    steps:
        Number of Trotter steps.
    coupling, field, boundary_field:
        Hamiltonian coefficients (radians already folded in).
    transpile:
        When ``True`` return the circuit lowered to the Clifford+Rz basis.
    """
    if num_qubits < 2:
        raise ValueError("ising circuit needs at least 2 qubits")
    circuit = Circuit(num_qubits, name=f"ising_n{num_qubits}")
    for step in range(steps):
        # ZZ bond terms, even bonds then odd bonds (parallel within each set).
        for parity in (0, 1):
            for left in range(parity, num_qubits - 1, 2):
                circuit.append(Gate(GateType.RZZ, (left, left + 1),
                                    angle=2 * coupling * (1 + 0.01 * step)))
        # Transverse field terms.
        for qubit in range(num_qubits):
            circuit.append(Gate(GateType.RX, (qubit,),
                                angle=2 * field * (1 + 0.01 * step)))
        # Longitudinal corrections on the chain ends.
        for qubit in (0, num_qubits - 1):
            circuit.append(Gate(GateType.RZ, (qubit,),
                                angle=2 * boundary_field))
    if transpile:
        return transpile_to_clifford_rz(circuit)
    return circuit
