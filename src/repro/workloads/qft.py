"""Quantum Fourier Transform circuits (the ``qft`` suite).

QFT circuits are the canonical *sequential* stress case: long chains of
controlled-phase rotations create deep dependency chains with an Rz:CNOT ratio
close to 1 after decomposition, matching the ``qft_n*`` rows of Table 3.
"""

from __future__ import annotations

import math

from ..circuits import Circuit, Gate, GateType, transpile_to_clifford_rz

__all__ = ["qft_circuit", "controlled_phase"]


def controlled_phase(circuit: Circuit, control: int, target: int,
                     theta: float) -> None:
    """Append a controlled-phase CP(theta) using the 2-CNOT decomposition.

    ``CP(theta) = Rz(theta/2) x Rz(theta/2) . CX . Rz(-theta/2) . CX`` up to
    global phase; all three rotations share the same non-Clifford angle class.
    """
    circuit.append(Gate(GateType.RZ, (control,), angle=theta / 2))
    circuit.append(Gate(GateType.RZ, (target,), angle=theta / 2))
    circuit.append(Gate(GateType.CNOT, (control, target)))
    circuit.append(Gate(GateType.RZ, (target,), angle=-theta / 2))
    circuit.append(Gate(GateType.CNOT, (control, target)))


def qft_circuit(num_qubits: int, approximation_degree: int = 0,
                include_swaps: bool = False,
                transpile: bool = True) -> Circuit:
    """Build an (approximate) QFT on ``num_qubits`` qubits.

    Parameters
    ----------
    num_qubits:
        Register size.
    approximation_degree:
        Number of the smallest-angle controlled rotations to drop per qubit
        (the standard approximate-QFT truncation).  ``0`` is the exact QFT.
        The published QASMBench circuits use a mild truncation, which is why
        their CNOT counts are slightly below ``n*(n-1)``.
    include_swaps:
        Whether to append the final qubit-reversal SWAP network.
    transpile:
        When ``True`` return the circuit lowered to the Clifford+Rz basis.
    """
    if num_qubits < 1:
        raise ValueError("qft needs at least one qubit")
    circuit = Circuit(num_qubits, name=f"qft_n{num_qubits}")
    for qubit in range(num_qubits):
        circuit.append(Gate(GateType.H, (qubit,)))
        for offset, control in enumerate(range(qubit + 1, num_qubits), start=2):
            if approximation_degree and offset > num_qubits - approximation_degree:
                continue
            controlled_phase(circuit, control, qubit, math.pi / (2 ** (offset - 1)))
    if include_swaps:
        for low in range(num_qubits // 2):
            high = num_qubits - 1 - low
            circuit.append(Gate(GateType.SWAP, (low, high)))
    if transpile:
        return transpile_to_clifford_rz(circuit)
    return circuit
