"""Analytic comparisons between the continuous-angle and Clifford+T pipelines.

This module reproduces the arithmetic of Appendix A.2 (cost of one Rz(theta)
via |m_theta> injection vs via a T-state factory) and provides the per-gate
logical error model behind Figure 3 (maximum number of rotation gates that fit
a target program fidelity under each compilation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from .injection import InjectionModel, InjectionStrategy
from .preparation import PreparationModel

__all__ = [
    "RzCostModel",
    "TFactoryModel",
    "compare_rz_vs_t",
    "ComparisonResult",
]


@dataclass(frozen=True)
class RzCostModel:
    """Cycle cost of one continuous-angle Rz(theta) (baseline scheduling policy)."""

    preparation: PreparationModel
    injection: InjectionModel = InjectionModel(InjectionStrategy.CNOT)

    def expected_cycles(self, parallel_patches: int = 1) -> float:
        """Expected cycles for one Rz: E[steps] * (prep + injection) cycles.

        With the baseline policy each RUS "step" is one preparation followed
        by one injection, and Equation 1 gives E[steps] = 2.  Appendix A.2
        evaluates this at the worst-case preparation latency (~2.2 cycles)
        and CNOT-style injection (2 cycles), i.e. 2 * (2.2 + 2) = 8.4 cycles.
        """
        prep_cycles = (self.preparation.expected_cycles()
                       if parallel_patches <= 1
                       else self.preparation.expected_cycles_parallel(parallel_patches))
        steps = self.injection.expected_injection_count()
        return steps * (prep_cycles + self.injection.cycles_per_injection)


@dataclass(frozen=True)
class TFactoryModel:
    """Cost model of executing Rz(theta) in the Clifford+T compilation.

    Parameters
    ----------
    t_preparation_cycles:
        Cycles for one T-state distillation round (the paper quotes 11 cycles
        at 99.9% error-detection success, from [Litinski 2019]).
    t_injection_cycles:
        Cycles to consume a T state (a lattice-surgery CNOT, 2 cycles).
    t_count_per_rz:
        T gates needed to synthesise one Rz(theta) to target precision
        (Ross-Selinger synthesis; the paper uses "more than 100x").
    """

    t_preparation_cycles: float = 11.0
    t_injection_cycles: float = 2.0
    t_count_per_rz: int = 100

    def rz_cycles_range(self) -> Tuple[float, float]:
        """Best/worst-case cycles for one synthesised Rz(theta) (Appendix A.2).

        Best case: every T state is ready when needed, so each T gate costs
        only the injection (2 cycles).  Worst case: the factory starts
        preparing only when the T gate is requested, so each costs
        preparation + injection (13 cycles).
        """
        best = self.t_count_per_rz * self.t_injection_cycles
        worst = self.t_count_per_rz * (self.t_preparation_cycles
                                       + self.t_injection_cycles)
        return best, worst

    @staticmethod
    def t_count_for_precision(epsilon: float) -> int:
        """Ross-Selinger T-count estimate ``~3 log2(1/eps)`` for one Rz."""
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        return max(1, int(math.ceil(3 * math.log2(1.0 / epsilon))))


@dataclass(frozen=True)
class ComparisonResult:
    """Outcome of :func:`compare_rz_vs_t` (the Appendix A.2 numbers)."""

    continuous_angle_cycles: float
    clifford_t_cycles_best: float
    clifford_t_cycles_worst: float

    @property
    def overhead_best(self) -> float:
        """Clifford+T overhead factor in the T-friendliest case (~20x in the paper)."""
        return self.clifford_t_cycles_best / self.continuous_angle_cycles

    @property
    def overhead_worst(self) -> float:
        """Clifford+T overhead factor in the worst case (~150x in the paper)."""
        return self.clifford_t_cycles_worst / self.continuous_angle_cycles


def compare_rz_vs_t(preparation: Optional[PreparationModel] = None,
                    t_factory: Optional[TFactoryModel] = None,
                    injection: Optional[InjectionModel] = None) -> ComparisonResult:
    """Reproduce the Appendix A.2 comparison of |m_theta> vs T injection.

    Defaults follow the paper: worst-case preparation corner (d=3 behaviour is
    approximated by the smallest supported distance at p=1e-3), CNOT-style
    injection, a single dedicated T factory at 11-cycle distillation latency
    and >100 T gates per synthesised rotation.
    """
    if preparation is None:
        preparation = PreparationModel(distance=5, physical_error_rate=1e-3)
    if injection is None:
        injection = InjectionModel(InjectionStrategy.CNOT)
    if t_factory is None:
        t_factory = TFactoryModel()

    rz_model = RzCostModel(preparation, injection)
    continuous = rz_model.expected_cycles()
    best, worst = t_factory.rz_cycles_range()
    return ComparisonResult(continuous, best, worst)
