"""|m_theta> injection strategies and the RUS correction chain (Section 3.2).

Once an |m_theta> state exists in an ancilla patch it is consumed by a
teleportation-style injection into the data qubit.  The paper considers two
strategies (Figure 6 / Table 1):

=====================  =======  =====
parameter              CNOT     ZZ
=====================  =======  =====
exposed data edge      X        Z
ancillas required      2        1
injection cycles       2        1
=====================  =======  =====

Either way the final measurement yields +1/-1 with probability 1/2.  A -1
outcome applied ``Rz(-theta)`` instead, so an ``Rz(2*theta)`` correction is
required, itself injected with the same protocol — the repeat-until-success
chain of Equation 1, whose expectation is 2 injections (fewer when a doubled
angle lands on a Clifford).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..circuits import doublings_until_clifford

__all__ = ["InjectionStrategy", "InjectionModel", "expected_injections"]


class InjectionStrategy(enum.Enum):
    """The two injection circuits of Figure 6."""

    ZZ = "zz"
    CNOT = "cnot"

    @property
    def exposed_edge(self) -> str:
        """Which data-qubit edge must face the injection ancilla ('Z' or 'X')."""
        return "Z" if self is InjectionStrategy.ZZ else "X"

    @property
    def ancillas_required(self) -> int:
        """Number of ancilla tiles consumed by one injection (Table 1)."""
        return 1 if self is InjectionStrategy.ZZ else 2

    @property
    def cycles(self) -> int:
        """Lattice-surgery cycles for one injection (Table 1)."""
        return 1 if self is InjectionStrategy.ZZ else 2


def expected_injections(theta: Optional[float] = None,
                        max_doublings: int = 64) -> float:
    """Expected injections for one logical Rz(theta) (Equation 1).

    For a generic continuous angle the expectation is exactly 2.  When some
    doubling ``2^k * theta`` is a Clifford rotation the chain terminates at
    step ``k`` because the correction can be absorbed into the Clifford frame,
    giving ``sum_{j=1..k} j/2^j + k/2^k < 2``.
    """
    if theta is None:
        return 2.0
    k = doublings_until_clifford(theta, max_doublings=max_doublings)
    if k == 0:
        return 0.0  # already Clifford: no injection at all
    expectation = sum(j / 2.0 ** j for j in range(1, k + 1))
    # If every one of the first k injections fails, the k-th doubled angle is
    # Clifford and is applied for free (no further injection).
    expectation += k / 2.0 ** k
    return expectation


@dataclass(frozen=True)
class InjectionModel:
    """Sampling model for the injection RUS chain.

    Parameters
    ----------
    strategy:
        ZZ or CNOT injection (Table 1).
    success_probability:
        Probability the injection measurement yields +1 (the protocol fixes
        this at 1/2; it is configurable for what-if studies only).
    max_doublings:
        Safety bound on the correction chain length.
    """

    strategy: InjectionStrategy = InjectionStrategy.ZZ
    success_probability: float = 0.5
    max_doublings: int = 64

    def __post_init__(self) -> None:
        if not 0.0 < self.success_probability <= 1.0:
            raise ValueError("success_probability must be in (0, 1]")

    @property
    def cycles_per_injection(self) -> int:
        return self.strategy.cycles

    @property
    def ancillas_per_injection(self) -> int:
        return self.strategy.ancillas_required

    def sample_outcome(self, rng: np.random.Generator) -> bool:
        """Draw one injection measurement outcome (True = success)."""
        return bool(rng.random() < self.success_probability)

    def sample_outcomes_batch(self, rng: np.random.Generator,
                              count: int) -> np.ndarray:
        """Draw ``count`` outcomes in one vectorised call.

        Stream-equivalent to ``count`` successive :meth:`sample_outcome`
        calls (``Generator.random`` fills arrays from the same bit stream).
        """
        return rng.random(count) < self.success_probability

    def sample_injection_counts(self, rng: np.random.Generator, count: int,
                                theta: Optional[float] = None) -> np.ndarray:
        """Vectorised Monte-Carlo form of :meth:`sample_injection_count`.

        The truncated chain length ``min(Geometric(p), limit)`` is drawn
        directly, so one call replaces ``count`` per-attempt sampling loops.
        Distributionally identical to the scalar method but *not*
        stream-aligned with it (it consumes one geometric draw per chain
        instead of one uniform per injection); use it for batch analyses,
        not to replay a scalar-sampled trace.
        """
        limit = self.max_doublings
        if theta is not None:
            limit = min(limit, doublings_until_clifford(theta, self.max_doublings))
            if limit == 0:
                return np.zeros(count, dtype=np.int64)
        chains = rng.geometric(self.success_probability, size=count)
        return np.minimum(chains, limit).astype(np.int64)

    def sample_injection_count(self, rng: np.random.Generator,
                               theta: Optional[float] = None) -> int:
        """Draw the total number of injections for a full Rz(theta) execution.

        The count includes the final successful injection.  When a doubled
        angle becomes Clifford the chain stops there even if that last
        injection "failed" (the residual rotation is absorbed classically), so
        the count is truncated at ``doublings_until_clifford(theta)``.
        """
        limit = self.max_doublings
        if theta is not None:
            limit = min(limit, doublings_until_clifford(theta, self.max_doublings))
            if limit == 0:
                return 0
        count = 0
        while count < limit:
            count += 1
            if self.sample_outcome(rng):
                break
        return count

    def expected_injection_count(self, theta: Optional[float] = None) -> float:
        """Analytic counterpart of :meth:`sample_injection_count` (Equation 1)."""
        if self.success_probability == 0.5:
            return expected_injections(theta, self.max_doublings)
        # General geometric expectation, truncated at the Clifford horizon.
        limit = self.max_doublings
        if theta is not None:
            limit = min(limit, doublings_until_clifford(theta, self.max_doublings))
            if limit == 0:
                return 0.0
        p = self.success_probability
        expectation = sum(j * p * (1 - p) ** (j - 1) for j in range(1, limit + 1))
        expectation += limit * (1 - p) ** limit
        return expectation
