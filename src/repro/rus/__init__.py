"""Repeat-until-success continuous-angle resource-state models."""

from .analysis import (
    ComparisonResult,
    RzCostModel,
    TFactoryModel,
    compare_rz_vs_t,
)
from .injection import InjectionModel, InjectionStrategy, expected_injections
from .preparation import PreparationModel

__all__ = [
    "PreparationModel",
    "InjectionModel",
    "InjectionStrategy",
    "expected_injections",
    "RzCostModel",
    "TFactoryModel",
    "ComparisonResult",
    "compare_rz_vs_t",
]
