"""Stochastic model of |m_theta> state preparation (Section 2.2, Appendix A).

The STAR architecture prepares |m_theta> = Rz(theta)|+> inside an ancilla
patch with a repeat-until-success protocol:

1. many [[4,1,1,2]] error-detection subsystem codes embedded in the patch
   (``(d^2-1)/2`` of them) attempt the preparation in parallel; the first
   error-detection round post-selects on "no error detected";
2. one successful subsystem is expanded to the full distance-``d`` patch and a
   second error-detection round post-selects again.

Both rounds together form one *attempt*.  The paper abstracts the physical
details into an attempt-success probability and an attempt duration that are
functions of the code distance ``d`` and the physical error rate ``p``
(Figure 16); RESCQ and the baselines consume only that abstraction, which is
exactly what :class:`PreparationModel` provides.

Calibration targets (shape of Figure 16):

* expected preparation **cycles** fall as ``d`` grows (a lattice-surgery cycle
  is ``d`` measurement rounds, so a fixed-length attempt spans fewer cycles)
  and fall as ``p`` shrinks;
* expected **attempts** rise slowly with ``d`` (the second post-selection
  round checks O(d^2) syndrome bits) and rise with ``p``;
* the worst corner of the sweep stays near ~2.2 cycles per successful
  preparation, the number used in the paper's Appendix A.2 arithmetic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["PreparationModel"]


@dataclass(frozen=True)
class PreparationModel:
    """Analytic + sampling model of non-deterministic |m_theta> preparation.

    Parameters
    ----------
    distance:
        Surface-code distance ``d`` of the ancilla patch.
    physical_error_rate:
        Physical qubit error rate ``p``.
    subsystem_physical_ops:
        Number of error locations in a single [[4,1,1,2]] preparation attempt
        (first post-selection round).
    expansion_checks_per_d2:
        Syndrome bits checked in the second (post-expansion) round, expressed
        as a multiple of ``d^2``.
    rounds_per_attempt:
        Duration of one attempt in physical measurement rounds.  One
        lattice-surgery cycle is ``d`` measurement rounds, so an attempt costs
        ``rounds_per_attempt / d`` cycles.
    """

    distance: int
    physical_error_rate: float
    subsystem_physical_ops: int = 20
    expansion_checks_per_d2: float = 1.0
    rounds_per_attempt: float = 11.0

    def __post_init__(self) -> None:
        if self.distance < 3 or self.distance % 2 == 0:
            raise ValueError("distance must be an odd integer >= 3")
        if not 0.0 < self.physical_error_rate < 0.5:
            raise ValueError("physical_error_rate must be in (0, 0.5)")

    # -- building blocks -----------------------------------------------------------

    @property
    def num_subsystem_codes(self) -> int:
        """Number of [[4,1,1,2]] codes embedded in one ancilla patch: (d^2-1)/2."""
        return (self.distance ** 2 - 1) // 2

    @property
    def subsystem_success_probability(self) -> float:
        """Probability that a single [[4,1,1,2]] preparation passes round one."""
        return (1.0 - self.physical_error_rate) ** self.subsystem_physical_ops

    @property
    def first_round_success_probability(self) -> float:
        """Probability at least one of the parallel subsystem preparations succeeds."""
        fail_all = (1.0 - self.subsystem_success_probability) ** self.num_subsystem_codes
        return 1.0 - fail_all

    @property
    def expansion_success_probability(self) -> float:
        """Probability the post-expansion error-detection round post-selects "keep".

        The number of checked syndrome bits grows as O(d^2), which is what
        makes the expected number of attempts *increase* with distance
        (Appendix A.1).
        """
        checks = self.expansion_checks_per_d2 * self.distance ** 2
        return (1.0 - self.physical_error_rate) ** checks

    @property
    def attempt_success_probability(self) -> float:
        """Probability one full attempt (both rounds) produces a usable state."""
        return (self.first_round_success_probability
                * self.expansion_success_probability)

    @property
    def cycles_per_attempt(self) -> float:
        """Duration of one attempt in lattice-surgery cycles (= d measurement rounds)."""
        return self.rounds_per_attempt / self.distance

    # -- analytic expectations -----------------------------------------------------

    def expected_attempts(self) -> float:
        """Expected number of attempts until success (geometric mean 1/p_succ)."""
        return 1.0 / self.attempt_success_probability

    def expected_cycles(self) -> float:
        """Expected preparation latency in lattice-surgery cycles."""
        return self.expected_attempts() * self.cycles_per_attempt

    def expected_cycles_parallel(self, num_patches: int) -> float:
        """Expected latency when ``num_patches`` ancilla patches prepare in parallel.

        The first success among ``n`` independent geometric processes: the
        per-"slot" success probability becomes ``1 - (1-q)^n``.  This is the
        quantity RESCQ's parallel-preparation optimisation improves.
        """
        if num_patches < 1:
            raise ValueError("num_patches must be >= 1")
        q = self.attempt_success_probability
        q_parallel = 1.0 - (1.0 - q) ** num_patches
        return self.cycles_per_attempt / q_parallel

    # -- sampling -------------------------------------------------------------------

    def sample_attempts(self, rng: np.random.Generator) -> int:
        """Draw the number of attempts a single preparation takes (>= 1)."""
        return int(rng.geometric(self.attempt_success_probability))

    def sample_cycles(self, rng: np.random.Generator) -> int:
        """Draw a preparation latency in whole lattice-surgery cycles (>= 1).

        The simulator advances in whole cycles, so the attempt-granular
        latency is rounded up; a preparation never completes in zero cycles.
        """
        attempts = self.sample_attempts(rng)
        return max(1, int(math.ceil(attempts * self.cycles_per_attempt)))

    # -- vectorised sampling ---------------------------------------------------------

    def sample_attempts_batch(self, rng: np.random.Generator,
                              count: int) -> np.ndarray:
        """Draw ``count`` attempt counts in one vectorised call.

        Stream-equivalent to ``count`` successive :meth:`sample_attempts`
        calls: numpy's ``Generator.geometric`` consumes the bit stream
        identically whether it fills an array or returns scalars, so batched
        and scalar sampling produce bit-identical simulations.
        """
        return rng.geometric(self.attempt_success_probability, size=count)

    def sample_cycles_batch(self, rng: np.random.Generator,
                            count: int) -> np.ndarray:
        """Draw ``count`` preparation latencies in one vectorised call.

        Element ``i`` equals what the ``i``-th successive
        :meth:`sample_cycles` call on the same generator state would have
        returned (see :meth:`sample_attempts_batch`), which is what lets the
        schedulers batch the draws for a fan-out of parallel preparations
        without changing any simulated trace.
        """
        attempts = self.sample_attempts_batch(rng, count)
        cycles = np.ceil(attempts * self.cycles_per_attempt).astype(np.int64)
        return np.maximum(cycles, 1)

    # -- convenience -----------------------------------------------------------------

    def with_distance(self, distance: int) -> "PreparationModel":
        return PreparationModel(distance, self.physical_error_rate,
                                self.subsystem_physical_ops,
                                self.expansion_checks_per_d2,
                                self.rounds_per_attempt)

    def with_error_rate(self, physical_error_rate: float) -> "PreparationModel":
        return PreparationModel(self.distance, physical_error_rate,
                                self.subsystem_physical_ops,
                                self.expansion_checks_per_d2,
                                self.rounds_per_attempt)
