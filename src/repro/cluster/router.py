"""The ``rescq route`` shard router: N serve instances, one front end.

The router owns no executor and no cache — it is a fan-out/merge layer
over a fleet of :class:`~repro.service.server.ExperimentServer` shards,
with a live view of which shards are actually serving:

1. **Membership.**  The router owns a
   :class:`~repro.cluster.membership.ShardSet`.  A periodic health loop
   (``--health-interval``) probes every member's ``/healthz`` and moves
   shards between LIVE/SUSPECT/DEAD (``--dead-after`` consecutive
   failures); connect failures during routing mark a shard SUSPECT
   immediately; recovered shards rejoin automatically; ``POST /shards``
   adds or drains members at runtime.
2. **Expand.**  An incoming spec is validated and expanded locally (plan
   expansion is deterministic, so the router and every shard derive the
   identical job list from the same spec bytes).
3. **Place.**  Each job's fingerprint is rendezvous-hashed onto the
   *routable* (LIVE + SUSPECT) members
   (:func:`~repro.cluster.hashring.rank_nodes`), so identical jobs always
   land on the same shard and hit its single-flight/cache layers, and a
   membership change moves only the minimal ``~1/N`` of keys.
4. **Fan out.**  Each shard receives one ``POST /experiments`` whose
   envelope carries the original spec plus ``indices`` — the plan
   positions it owns.  No circuits cross the wire.
5. **Merge, with recovery.**  The per-shard NDJSON streams are merged
   back into plan order; data rows pass through as raw bytes (preserving
   the byte-identical-rows property of the single-server service).  A
   shard dying mid-stream no longer surfaces as per-position error
   records: the unfinished positions are re-routed to each position's
   next-ranked live shard under bounded attempts with exponential backoff
   + full jitter (seeded RNG injectable) and an optional per-request
   deadline.  Retries are safe because results are cache-idempotent:
   fingerprinted jobs are write-once in the cache and single-flighted in
   the service, so re-asking for a position can only return the same
   canonical bytes.  Error records appear only after retries are
   exhausted.

Shard-level refusals happen *before* the router commits to a 200: a shard
answering 429 (admission control) propagates as 429 + the **largest**
shard-provided ``Retry-After`` (capped against the request deadline); a
shard that refuses connections or answers 5xx is retried to next-ranked
shards and only becomes a client-visible 502 when every attempt is
exhausted.

``GET /healthz`` probes every shard and reports ``ok``/``degraded``
(503); ``GET /stats`` nests router counters, cluster-wide aggregates,
per-shard snapshots and the membership table; ``GET/POST /shards`` is the
admin surface.
"""

from __future__ import annotations

import asyncio
import json
import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..api.envelope import EnvelopeError, SubmissionEnvelope, SubmissionReport
from ..api.spec import SpecValidationError
from ..canonical import canonical_dumps
from ..service.httpcore import (HttpError, http_request, iter_ndjson,
                                open_http_stream, read_request, send_head,
                                send_json, send_line)
from .hashring import rank_nodes
from .membership import DRAINING, ShardSet

__all__ = ["RouterStats", "ShardRouter"]


@dataclass
class RouterStats:
    """Cumulative router-side accounting (shard counters live on shards)."""

    requests: int = 0       # submissions accepted for fan-out
    jobs: int = 0           # plan positions routed
    retried: int = 0        # positions re-routed after a pre-stream failure
    recovered: int = 0      # positions recovered after a mid-stream death
    gave_up: int = 0        # positions surfaced as errors after retries
    backoff_waits: int = 0  # backoff sleeps taken on any retry path
    rejected: int = 0       # submissions refused with 429 (shard admission)
    failed: int = 0         # submissions that died before streaming (502/400)
    stream_errors: int = 0  # error records forwarded or synthesised mid-stream

    def snapshot(self) -> Dict[str, int]:
        return {
            "requests": self.requests,
            "jobs": self.jobs,
            "retried": self.retried,
            "recovered": self.recovered,
            "gave_up": self.gave_up,
            "backoff_waits": self.backoff_waits,
            "rejected": self.rejected,
            "failed": self.failed,
            "stream_errors": self.stream_errors,
        }


class ShardRouter:
    """Route experiment submissions across a fleet of serve shards."""

    def __init__(self, shards: Sequence[str], host: str = "127.0.0.1",
                 port: int = 8766, connect_timeout: float = 5.0,
                 probe_timeout: float = 2.0,
                 health_interval: float = 0.0,
                 dead_after: int = 3,
                 max_attempts: int = 4,
                 backoff_base: float = 0.05,
                 backoff_cap: float = 2.0,
                 request_deadline: Optional[float] = None,
                 rng: Optional[random.Random] = None) -> None:
        self.membership = ShardSet(shards, dead_after=dead_after)
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.probe_timeout = probe_timeout
        #: Seconds between automatic health-probe rounds; ``0`` disables
        #: the background loop (tests drive :meth:`probe_once` manually).
        self.health_interval = health_interval
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        #: Optional per-request wall budget, seconds.  Retries (and the
        #: Retry-After hint on 429s) never extend past it.
        self.request_deadline = request_deadline
        self._rng = rng if rng is not None else random.Random()
        self.stats = RouterStats()
        self._server: Optional[asyncio.AbstractServer] = None
        self._handlers: set = set()
        self._probe_task: Optional[asyncio.Task] = None

    @property
    def shards(self) -> Tuple[str, ...]:
        """Every member URL (in join order, regardless of state)."""
        return self.membership.urls

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections; updates ``self.port``."""
        self._server = await asyncio.start_server(
            self._on_connection, host=self.host, port=self.port)
        for sock in self._server.sockets or ():
            self.port = sock.getsockname()[1]
            break
        if self.health_interval > 0:
            self._probe_task = asyncio.ensure_future(self._probe_loop())

    async def stop(self) -> None:
        """Stop accepting and finish in-flight requests."""
        if self._probe_task is not None:
            self._probe_task.cancel()
            try:
                await self._probe_task
            except asyncio.CancelledError:
                pass
            self._probe_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._handlers:
            await asyncio.gather(*list(self._handlers),
                                 return_exceptions=True)

    @property
    def in_flight_requests(self) -> int:
        return len(self._handlers)

    # -- health probing --------------------------------------------------------

    async def _probe_loop(self) -> None:
        while True:
            await asyncio.sleep(self.health_interval)
            await self.probe_once()

    async def probe_once(self) -> Dict[str, Tuple[str, Optional[dict]]]:
        """One probe round over every non-draining member.

        Feeds the results into the membership state machine (this is the
        body of the background health loop, exposed so tests can drive
        the LIVE/SUSPECT/DEAD transitions without wall-clock sleeps) and
        returns ``{url: (state_text, healthz_payload_or_None)}``.
        """
        targets = self.membership.probe_targets()
        probes = await asyncio.gather(
            *(self._probe(url) for url in targets))
        results: Dict[str, Tuple[str, Optional[dict]]] = {}
        for url, (state, payload) in zip(targets, probes):
            if state == "ok":
                self.membership.record_success(url)
            else:
                self.membership.record_failure(url, state)
            results[url] = (state, payload)
        return results

    async def _probe(self, url: str) -> Tuple[str, Optional[dict]]:
        host, port, base = self.membership.endpoint(url)
        try:
            status, _headers, data = await http_request(
                host, port, "GET", f"{base}/healthz",
                timeout=self.probe_timeout)
        except (OSError, asyncio.TimeoutError) as exc:
            return f"unreachable: {exc}", None
        if status != 200:
            return f"unhealthy: HTTP {status}", None
        try:
            return "ok", json.loads(data.decode("utf-8"))
        except ValueError:
            return "unhealthy: bad healthz payload", None

    # -- connection handling ---------------------------------------------------

    def _on_connection(self, reader: asyncio.StreamReader,
                       writer: asyncio.StreamWriter) -> None:
        task = asyncio.ensure_future(self._handle(reader, writer))
        self._handlers.add(task)
        task.add_done_callback(self._handlers.discard)

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, _headers, body = await read_request(reader)
                await self._route(method, path, body, writer)
            except HttpError as exc:
                await send_json(writer, exc.status, {"error": exc.message},
                                headers=exc.headers)
            except (asyncio.IncompleteReadError, ConnectionError):
                pass
            except Exception as exc:  # noqa: BLE001 - last-resort handler
                try:
                    await send_json(
                        writer, 500, {"error": f"internal error: {exc}"})
                except (ConnectionError, RuntimeError):
                    pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _route(self, method: str, path: str, body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        path = path.split("?", 1)[0]
        if path == "/healthz":
            if method != "GET":
                raise HttpError(405, "use GET for /healthz")
            await self._handle_healthz(writer)
        elif path == "/stats":
            if method != "GET":
                raise HttpError(405, "use GET for /stats")
            await self._handle_stats(writer)
        elif path == "/shards":
            await self._handle_shards(method, body, writer)
        elif path in ("/experiments", "/"):
            if method != "POST":
                raise HttpError(
                    405, "submit an ExperimentSpec with POST /experiments")
            await self._handle_submission(body, writer)
        else:
            raise HttpError(
                404, f"unknown path {path!r}; routes: POST /experiments, "
                     f"GET /healthz, GET /stats, GET/POST /shards")

    # -- health / stats / admin ------------------------------------------------

    async def _handle_healthz(self, writer: asyncio.StreamWriter) -> None:
        results = await self.probe_once()
        shard_states = {}
        for url in self.membership.urls:
            if url in results:
                shard_states[url] = results[url][0]
            else:
                shard_states[url] = DRAINING
        healthy = all(state == "ok"
                      for state, _payload in results.values())
        payload = {"status": "ok" if healthy else "degraded",
                   "shards": shard_states,
                   "membership": self.membership.counts()}
        await send_json(writer, 200 if healthy else 503, payload)

    async def _shard_snapshot(self, url: str) -> Optional[dict]:
        host, port, base = self.membership.endpoint(url)
        try:
            status, _headers, data = await http_request(
                host, port, "GET", f"{base}/stats",
                timeout=self.probe_timeout)
            if status != 200:
                return None
            return json.loads(data.decode("utf-8"))
        except (OSError, asyncio.TimeoutError, ValueError):
            return None

    async def _handle_stats(self, writer: asyncio.StreamWriter) -> None:
        urls = self.membership.urls
        snapshots = await asyncio.gather(
            *(self._shard_snapshot(url) for url in urls))
        cluster = {"requests": 0, "jobs": 0, "executed": 0, "cache_hits": 0,
                   "deduped": 0, "errors": 0, "rejected": 0}
        shard_stats: Dict[str, object] = {}
        for url, snapshot in zip(urls, snapshots):
            if snapshot is None:
                shard_stats[url] = None
                continue
            shard_stats[url] = snapshot
            for key in cluster:
                value = snapshot.get(key)
                if isinstance(value, int):
                    cluster[key] += value
        await send_json(writer, 200, {
            "router": self.stats.snapshot(),
            "cluster": cluster,
            "shards": shard_stats,
            "membership": self.membership.snapshot(),
        })

    async def _handle_shards(self, method: str, body: bytes,
                             writer: asyncio.StreamWriter) -> None:
        """The admin surface: list members, add a shard, drain a shard."""
        if method == "GET":
            await send_json(writer, 200,
                            {"membership": self.membership.snapshot()})
            return
        if method != "POST":
            raise HttpError(405, "use GET (list) or POST (add/drain) "
                                 "for /shards")
        try:
            payload = json.loads(body.decode("utf-8"))
            action = payload["action"]
            url = payload["url"]
        except (UnicodeDecodeError, ValueError, KeyError, TypeError) as exc:
            raise HttpError(
                400, f"expected {{\"action\": \"add\"|\"drain\", "
                     f"\"url\": ...}}: {exc}") from None
        if not isinstance(url, str):
            raise HttpError(400, f"shard url must be a string, got {url!r}")
        if action == "add":
            try:
                changed = self.membership.add(url)
            except ValueError as exc:
                raise HttpError(400, str(exc)) from None
        elif action == "drain":
            try:
                self.membership.drain(url)
            except KeyError as exc:
                raise HttpError(404, str(exc.args[0])) from None
            changed = True
        else:
            raise HttpError(400, f"unknown action {action!r}; "
                                 f"actions: add, drain")
        await send_json(writer, 200, {
            "action": action,
            "url": url.rstrip("/"),
            "changed": changed,
            "membership": self.membership.snapshot(),
        })

    # -- retry plumbing --------------------------------------------------------

    def _deadline_for_request(self) -> Optional[float]:
        if self.request_deadline is None:
            return None
        return asyncio.get_event_loop().time() + self.request_deadline

    @staticmethod
    def _deadline_remaining(deadline: Optional[float]) -> Optional[float]:
        if deadline is None:
            return None
        return deadline - asyncio.get_event_loop().time()

    def _backoff_delay(self, attempt: int,
                       deadline: Optional[float]) -> float:
        """Exponential backoff with full jitter, capped by the deadline.

        ``delay ~ U(0, min(cap, base * 2^(attempt-1)))`` — full jitter
        (AWS-style) decorrelates concurrent retriers; the RNG is the
        router's injectable seeded instance, so tests are deterministic.
        """
        ceiling = min(self.backoff_cap,
                      self.backoff_base * (2 ** max(0, attempt - 1)))
        delay = self._rng.random() * ceiling
        remaining = self._deadline_remaining(deadline)
        if remaining is not None:
            delay = min(delay, max(0.0, remaining))
        return delay

    async def _backoff(self, attempt: int,
                       deadline: Optional[float]) -> None:
        delay = self._backoff_delay(attempt, deadline)
        if delay > 0:
            self.stats.backoff_waits += 1
            await asyncio.sleep(delay)

    def _retry_after_header(self, values: Sequence[float],
                            deadline: Optional[float]) -> Dict[str, str]:
        """Honor the largest shard-provided Retry-After, deadline-capped."""
        hint = max(values) if values else 1.0
        remaining = self._deadline_remaining(deadline)
        if remaining is not None:
            hint = min(hint, max(0.0, remaining))
        return {"Retry-After": str(max(1, math.ceil(hint)))}

    # -- submission fan-out / merge --------------------------------------------

    async def _handle_submission(self, body: bytes,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"body is not valid JSON: {exc}") from None
        try:
            envelope = SubmissionEnvelope.from_payload(payload)
        except EnvelopeError as exc:
            raise HttpError(400, str(exc)) from None
        loop = asyncio.get_event_loop()

        def _plan() -> Tuple[int, Dict[int, str]]:
            jobs = envelope.spec.validate().expand()
            positions = (list(envelope.indices)
                         if envelope.indices is not None
                         else list(range(len(jobs))))
            if positions and positions[-1] >= len(jobs):
                raise EnvelopeError(
                    f"indices entry {positions[-1]} is out of range for a "
                    f"plan of {len(jobs)} job(s)")
            return len(jobs), {pos: jobs[pos].fingerprint()
                               for pos in positions}

        try:
            _plan_size, fingerprints = await loop.run_in_executor(None, _plan)
        except SpecValidationError as exc:
            raise HttpError(400, str(exc)) from None
        except EnvelopeError as exc:
            raise HttpError(400, str(exc)) from None

        self.stats.requests += 1
        self.stats.jobs += len(fingerprints)
        deadline = self._deadline_for_request()
        streams = await self._open_shard_streams(envelope, fingerprints,
                                                 deadline)
        await self._merge_streams(envelope, fingerprints, streams, writer,
                                  deadline)

    def _sub_envelope(self, envelope: SubmissionEnvelope,
                      positions: Sequence[int]) -> bytes:
        sub = SubmissionEnvelope(spec=envelope.spec,
                                 include_status=envelope.include_status,
                                 indices=tuple(sorted(positions)))
        return (canonical_dumps(sub.to_dict())).encode("utf-8")

    async def _open_shard_streams(
            self, envelope: SubmissionEnvelope,
            fingerprints: Dict[int, str],
            deadline: Optional[float],
    ) -> List[Tuple[str, List[int], asyncio.StreamReader,
                    asyncio.StreamWriter]]:
        """Phase A: place every position and open one stream per shard.

        Completes (or raises) *before* the client sees any response bytes,
        so shard refusals map onto clean status codes: a shard 429
        propagates as 429 + the largest shard-provided ``Retry-After``
        (capped against the request deadline).  Connect failures and 5xx
        answers mark the shard failed for this request, feed the
        membership state machine, and re-route the positions to each
        position's next-ranked live shard; when a pass leaves positions
        with no candidate the failed set is cleared and the pass is
        retried after a backoff, bounded by ``max_attempts`` — only then
        does the client see a 502.
        """
        dead: Set[str] = set()
        pending = set(fingerprints)
        streams: List[Tuple[str, List[int], asyncio.StreamReader,
                            asyncio.StreamWriter]] = []
        attempt = 0
        last_error = "no routable shard"

        async def _abort(exc: HttpError) -> None:
            for _url, _positions, _reader, shard_writer in streams:
                shard_writer.close()
            if exc.status == 429:
                self.stats.rejected += 1
            else:
                self.stats.failed += 1
            raise exc

        while pending:
            routable = [url for url in self.membership.routable()
                        if url not in dead]
            remaining = self._deadline_remaining(deadline)
            out_of_time = remaining is not None and remaining <= 0
            if not routable:
                attempt += 1
                if attempt >= self.max_attempts or out_of_time:
                    await _abort(HttpError(
                        502, f"no shard reachable for "
                             f"{len(pending)} job(s) after {attempt} "
                             f"attempt(s) (members: "
                             f"{list(self.membership.urls)}; last error: "
                             f"{last_error})"))
                await self._backoff(attempt, deadline)
                dead.clear()
                continue
            groups: Dict[str, List[int]] = {}
            for pos in sorted(pending):
                ranking = rank_nodes(routable, fingerprints[pos])
                groups.setdefault(ranking[0], []).append(pos)

            async def _open(url: str, positions: List[int]):
                host, port, base = self.membership.endpoint(url)
                body = self._sub_envelope(envelope, positions)
                return await open_http_stream(
                    host, port, "POST", f"{base}/experiments", body=body,
                    connect_timeout=self.connect_timeout, head_timeout=None)

            opened = await asyncio.gather(
                *(_open(url, positions)
                  for url, positions in groups.items()),
                return_exceptions=True)
            admission_hints: List[float] = []
            admission_message: Optional[str] = None
            for (url, positions), outcome in zip(groups.items(), opened):
                if isinstance(outcome, (OSError, asyncio.TimeoutError)):
                    # Connect-level failure: suspect the shard and re-route
                    # these positions on the next pass.
                    self.membership.record_failure(url, str(outcome))
                    last_error = f"{url}: {outcome}"
                    dead.add(url)
                    self.stats.retried += len(positions)
                    continue
                if isinstance(outcome, BaseException):
                    self.membership.record_failure(url, str(outcome))
                    last_error = f"{url}: {outcome}"
                    dead.add(url)
                    self.stats.retried += len(positions)
                    continue
                status, headers, reader, shard_writer = outcome
                if status == 200:
                    streams.append((url, positions, reader, shard_writer))
                    pending.difference_update(positions)
                    continue
                data = await reader.read()
                shard_writer.close()
                if status == 429:
                    # Admission refusal: the shard is healthy but busy —
                    # back-pressure belongs to the client, not the retry
                    # loop.  429 beats every concurrent shard fault.
                    try:
                        admission_hints.append(
                            float(headers.get("retry-after", "1")))
                    except ValueError:
                        admission_hints.append(1.0)
                    admission_message = _error_message(
                        data, f"shard {url} refused the sub-plan "
                              f"(admission)")
                    continue
                # Any other status: treat like a shard fault and re-route.
                message = (f"shard {url} answered HTTP {status}: "
                           f"{_error_message(data, 'no detail')}")
                self.membership.record_failure(url, f"HTTP {status}")
                last_error = message
                dead.add(url)
                self.stats.retried += len(positions)
            if admission_message is not None:
                await _abort(HttpError(
                    429, admission_message,
                    headers=self._retry_after_header(admission_hints,
                                                     deadline)))
        return streams

    async def _merge_streams(
            self, envelope: SubmissionEnvelope,
            fingerprints: Dict[int, str],
            streams: List[Tuple[str, List[int], asyncio.StreamReader,
                                asyncio.StreamWriter]],
            writer: asyncio.StreamWriter,
            deadline: Optional[float]) -> None:
        """Phase B: stream the merged rows in plan order, then one summary.

        Pumps feed a queue with ``row``/``summary``/``end`` items; an
        ``end`` carrying unfinished positions (a shard died mid-stream)
        spawns a recovery task that re-routes those positions instead of
        synthesising error records.  The loop runs until every expected
        position was emitted — as a data row, a forwarded error, or (only
        once retries are exhausted) a synthesised error record.
        """
        await send_head(writer, 200, content_type="application/x-ndjson")
        queue: asyncio.Queue = asyncio.Queue()
        summaries: List[dict] = []
        recoveries: set = set()
        pumps = [asyncio.ensure_future(
                     self._pump(url, positions, reader, shard_writer, queue))
                 for url, positions, reader, shard_writer in streams]
        expected = sorted(fingerprints)
        buffered: Dict[int, Tuple[bytes, bool]] = {}
        next_index = 0
        errors = 0
        ends = 0
        try:
            # Run until every expected row was emitted AND every opened
            # stream reported its end — a shard's trailing summary line
            # arrives after its last data row, so stopping at the final
            # row would drop summaries still in flight.
            while next_index < len(expected) or ends < len(pumps):
                item = await queue.get()
                kind = item[0]
                if kind == "summary":
                    summaries.append(item[1])
                    continue
                if kind == "end":
                    ends += 1
                    _kind, url, unfinished = item
                    if unfinished:
                        self.membership.record_failure(
                            url, "disconnected mid-stream")
                        task = asyncio.ensure_future(self._recover(
                            envelope, fingerprints, unfinished, {url},
                            deadline, queue))
                        recoveries.add(task)
                        task.add_done_callback(recoveries.discard)
                    continue
                _kind, position, line, is_error = item
                buffered[position] = (line, is_error)
                while (next_index < len(expected)
                       and expected[next_index] in buffered):
                    line, is_error = buffered.pop(expected[next_index])
                    if is_error:
                        errors += 1
                        self.stats.stream_errors += 1
                    writer.write(line)
                    await writer.drain()
                    next_index += 1
            # Recovery fetches queue their summaries after their rows;
            # let the tasks finish, then sweep what is left in the queue.
            if recoveries:
                await asyncio.gather(*list(recoveries),
                                     return_exceptions=True)
            while not queue.empty():
                item = queue.get_nowait()
                if item[0] == "summary":
                    summaries.append(item[1])
        finally:
            for task in list(pumps) + list(recoveries):
                task.cancel()
            await asyncio.gather(*pumps, *recoveries,
                                 return_exceptions=True)

        executed = sum(s.get("executed", 0) for s in summaries)
        cache_hits = sum(s.get("cache_hits", 0) for s in summaries)
        deduped = sum(s.get("deduped", 0) for s in summaries)
        report = SubmissionReport(name=envelope.spec.name,
                                  jobs=len(expected),
                                  executed=executed,
                                  cache_hits=cache_hits,
                                  deduped=deduped,
                                  request_id=envelope.request_id,
                                  errors=errors)
        await send_line(writer, report.to_dict())

    async def _pump(self, url: str, positions: List[int],
                    reader: asyncio.StreamReader,
                    shard_writer: asyncio.StreamWriter,
                    queue: asyncio.Queue) -> None:
        """Read one shard's stream; map its rows back onto plan positions.

        The shard preserves sub-plan order, so its i-th non-summary line
        is the row for ``positions[i]`` — data rows pass through as raw
        bytes.  When the stream ends, the ``end`` item reports any
        unfinished positions so the merge loop can re-route them.
        """
        index = 0
        try:
            async for line in iter_ndjson(reader):
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if (isinstance(record, dict)
                        and record.get("type") == "summary"):
                    await queue.put(("summary", record))
                    continue
                if index < len(positions):
                    is_error = (isinstance(record, dict)
                                and record.get("type") == "error")
                    await queue.put(("row", positions[index], bytes(line),
                                     is_error))
                    index += 1
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass
        finally:
            shard_writer.close()
            await queue.put(("end", url, positions[index:]))

    async def _recover(self, envelope: SubmissionEnvelope,
                       fingerprints: Dict[int, str],
                       positions: Sequence[int],
                       failed: Set[str],
                       deadline: Optional[float],
                       queue: asyncio.Queue) -> None:
        """Re-route positions lost to a mid-stream shard death.

        Bounded attempts with exponential backoff + full jitter; a 429
        from the retry target stretches the next wait to the largest
        shard-provided ``Retry-After`` (deadline-capped).  Every position
        is eventually pushed onto the queue — as a recovered data row or,
        only after the budget is spent, as a synthesised error record.
        """
        pending: List[int] = sorted(positions)
        attempt = 1
        reason = "mid-stream shard death"
        try:
            while pending:
                remaining = self._deadline_remaining(deadline)
                if attempt > self.max_attempts or (
                        remaining is not None and remaining <= 0):
                    break
                await self._backoff(attempt, deadline)
                candidates = [url for url in self.membership.routable()
                              if url not in failed]
                if not candidates:
                    # Every routable member already failed this batch:
                    # forgive history (a shard may have recovered) rather
                    # than giving up while members remain.
                    failed.clear()
                    candidates = list(self.membership.routable())
                if not candidates:
                    reason = "no routable shard"
                    attempt += 1
                    continue
                groups: Dict[str, List[int]] = {}
                for pos in pending:
                    ranking = rank_nodes(candidates, fingerprints[pos])
                    groups.setdefault(ranking[0], []).append(pos)
                retry_hints: List[float] = []
                for url, group in groups.items():
                    outcome, leftover, hint = await self._fetch_group(
                        envelope, url, group, queue)
                    if outcome == "ok":
                        pending = [pos for pos in pending
                                   if pos not in set(group)]
                        continue
                    if hint is not None:
                        retry_hints.append(hint)
                        reason = f"shard {url} admission (429)"
                    else:
                        failed.add(url)
                        reason = f"shard {url} failed"
                    delivered = set(group) - set(leftover)
                    if delivered:
                        pending = [pos for pos in pending
                                   if pos not in delivered]
                attempt += 1
                if retry_hints and pending:
                    hint = max(retry_hints)
                    remaining = self._deadline_remaining(deadline)
                    if remaining is not None:
                        hint = min(hint, max(0.0, remaining))
                    if hint > 0:
                        self.stats.backoff_waits += 1
                        await asyncio.sleep(hint)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - recovery must terminate
            reason = f"recovery error: {exc}"
        for pos in pending:
            self.stats.gave_up += 1
            record = {"type": "error",
                      "fingerprint": fingerprints[pos],
                      "message": f"job lost mid-stream and not recovered "
                                 f"after {attempt - 1} retry attempt(s): "
                                 f"{reason}"}
            line = (canonical_dumps(record) + "\n").encode("utf-8")
            await queue.put(("row", pos, line, True))

    async def _fetch_group(self, envelope: SubmissionEnvelope, url: str,
                           positions: List[int], queue: asyncio.Queue,
                           ) -> Tuple[str, List[int], Optional[float]]:
        """One recovery sub-request: returns ``(outcome, leftover, hint)``.

        ``outcome`` is ``"ok"`` when every position's row was delivered;
        otherwise ``leftover`` holds the undelivered positions and
        ``hint`` carries a shard-provided Retry-After (429 only).
        """
        host, port, base = self.membership.endpoint(url)
        body = self._sub_envelope(envelope, positions)
        try:
            status, headers, reader, shard_writer = await open_http_stream(
                host, port, "POST", f"{base}/experiments", body=body,
                connect_timeout=self.connect_timeout, head_timeout=None)
        except (OSError, asyncio.TimeoutError) as exc:
            self.membership.record_failure(url, str(exc))
            return "failed", list(positions), None
        if status != 200:
            data = await reader.read()
            shard_writer.close()
            if status == 429:
                try:
                    hint = float(headers.get("retry-after", "1"))
                except ValueError:
                    hint = 1.0
                return "failed", list(positions), hint
            self.membership.record_failure(
                url, f"HTTP {status}: {_error_message(data, 'no detail')}")
            return "failed", list(positions), None
        ordered = sorted(positions)
        index = 0
        try:
            async for line in iter_ndjson(reader):
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if (isinstance(record, dict)
                        and record.get("type") == "summary"):
                    await queue.put(("summary", record))
                    continue
                if index < len(ordered):
                    is_error = (isinstance(record, dict)
                                and record.get("type") == "error")
                    self.stats.recovered += 1
                    await queue.put(("row", ordered[index], bytes(line),
                                     is_error))
                    index += 1
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass
        finally:
            shard_writer.close()
        if index < len(ordered):
            self.membership.record_failure(url, "disconnected mid-recovery")
            return "failed", ordered[index:], None
        return "ok", [], None


def _error_message(data: bytes, fallback: str) -> str:
    try:
        payload = json.loads(data.decode("utf-8"))
        message = payload.get("error")
        if isinstance(message, str) and message:
            return message
    except (ValueError, AttributeError, UnicodeDecodeError):
        pass
    return fallback
