"""The ``rescq route`` shard router: N serve instances, one front end.

The router owns no executor and no cache — it is a stateless fan-out/merge
layer over a fleet of :class:`~repro.service.server.ExperimentServer`
shards:

1. **Expand.**  An incoming spec is validated and expanded locally (plan
   expansion is deterministic, so the router and every shard derive the
   identical job list from the same spec bytes).
2. **Place.**  Each job's fingerprint is rendezvous-hashed onto the shard
   list (:func:`~repro.cluster.hashring.rank_nodes`), so identical jobs —
   within one request, across requests, across *routers* — always land on
   the same shard and hit its single-flight/cache layers.  A shard that
   refuses TCP connections is retried to the next-ranked shard, bounded by
   the shard count.
3. **Fan out.**  Each shard receives one ``POST /experiments`` whose
   envelope carries the original spec plus ``indices`` — the plan positions
   it owns.  No circuits cross the wire.
4. **Merge.**  The per-shard NDJSON streams are merged back into plan
   order.  Data rows are passed through as raw bytes (preserving the
   byte-identical-rows property of the single-server service); per-shard
   trailing summaries are absorbed and re-emitted as one cluster-wide
   summary.

Shard-level refusals happen *before* the router commits to a 200: a shard
answering 429 (admission control) propagates as 429 + ``Retry-After``; any
other non-200 becomes a 502.  Once streaming has begun, a dying shard
degrades to per-job ``{"type": "error", ...}`` records instead of a torn
response.

``GET /healthz`` probes every shard and reports ``ok``/``degraded`` (503);
``GET /stats`` aggregates cluster-wide executed/cache-hit/dedup counts.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..api.envelope import EnvelopeError, SubmissionEnvelope, SubmissionReport
from ..api.spec import SpecValidationError
from ..canonical import canonical_dumps
from ..service.httpcore import (HttpError, http_request, iter_ndjson,
                                open_http_stream, parse_http_url,
                                read_request, send_head, send_json, send_line)
from .hashring import rank_nodes

__all__ = ["RouterStats", "ShardRouter"]


@dataclass
class RouterStats:
    """Cumulative router-side accounting (shard counters live on shards)."""

    requests: int = 0       # submissions accepted for fan-out
    jobs: int = 0           # plan positions routed
    retried: int = 0        # positions re-routed after a shard connect failure
    rejected: int = 0       # submissions refused with 429 (shard admission)
    failed: int = 0         # submissions that died before streaming (502/400)
    stream_errors: int = 0  # error records forwarded or synthesised mid-stream

    def snapshot(self) -> Dict[str, int]:
        return {
            "requests": self.requests,
            "jobs": self.jobs,
            "retried": self.retried,
            "rejected": self.rejected,
            "failed": self.failed,
            "stream_errors": self.stream_errors,
        }


class ShardRouter:
    """Route experiment submissions across a fleet of serve shards."""

    def __init__(self, shards: Sequence[str], host: str = "127.0.0.1",
                 port: int = 8766, connect_timeout: float = 5.0,
                 probe_timeout: float = 2.0) -> None:
        if not shards:
            raise ValueError("a router needs at least one shard URL")
        parsed = {}
        for url in shards:
            normalised = url.rstrip("/")
            parsed[normalised] = parse_http_url(normalised)  # raises ValueError
        if len(parsed) != len(shards):
            raise ValueError(f"duplicate shard URLs in {list(shards)}")
        self.shards: Tuple[str, ...] = tuple(parsed)
        self._endpoints: Dict[str, Tuple[str, int, str]] = parsed
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.probe_timeout = probe_timeout
        self.stats = RouterStats()
        self._server: Optional[asyncio.AbstractServer] = None
        self._handlers: set = set()

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections; updates ``self.port``."""
        self._server = await asyncio.start_server(
            self._on_connection, host=self.host, port=self.port)
        for sock in self._server.sockets or ():
            self.port = sock.getsockname()[1]
            break

    async def stop(self) -> None:
        """Stop accepting and finish in-flight requests."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._handlers:
            await asyncio.gather(*list(self._handlers),
                                 return_exceptions=True)

    @property
    def in_flight_requests(self) -> int:
        return len(self._handlers)

    # -- connection handling ---------------------------------------------------

    def _on_connection(self, reader: asyncio.StreamReader,
                       writer: asyncio.StreamWriter) -> None:
        task = asyncio.ensure_future(self._handle(reader, writer))
        self._handlers.add(task)
        task.add_done_callback(self._handlers.discard)

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, _headers, body = await read_request(reader)
                await self._route(method, path, body, writer)
            except HttpError as exc:
                await send_json(writer, exc.status, {"error": exc.message},
                                headers=exc.headers)
            except (asyncio.IncompleteReadError, ConnectionError):
                pass
            except Exception as exc:  # noqa: BLE001 - last-resort handler
                try:
                    await send_json(
                        writer, 500, {"error": f"internal error: {exc}"})
                except (ConnectionError, RuntimeError):
                    pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _route(self, method: str, path: str, body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        path = path.split("?", 1)[0]
        if path == "/healthz":
            if method != "GET":
                raise HttpError(405, "use GET for /healthz")
            await self._handle_healthz(writer)
        elif path == "/stats":
            if method != "GET":
                raise HttpError(405, "use GET for /stats")
            await self._handle_stats(writer)
        elif path in ("/experiments", "/"):
            if method != "POST":
                raise HttpError(
                    405, "submit an ExperimentSpec with POST /experiments")
            await self._handle_submission(body, writer)
        else:
            raise HttpError(
                404, f"unknown path {path!r}; routes: POST /experiments, "
                     f"GET /healthz, GET /stats")

    # -- health / stats --------------------------------------------------------

    async def _probe(self, url: str) -> Tuple[str, Optional[dict]]:
        host, port, base = self._endpoints[url]
        try:
            status, _headers, data = await http_request(
                host, port, "GET", f"{base}/healthz",
                timeout=self.probe_timeout)
        except (OSError, asyncio.TimeoutError) as exc:
            return f"unreachable: {exc}", None
        if status != 200:
            return f"unhealthy: HTTP {status}", None
        try:
            return "ok", json.loads(data.decode("utf-8"))
        except ValueError:
            return "unhealthy: bad healthz payload", None

    async def _handle_healthz(self, writer: asyncio.StreamWriter) -> None:
        probes = await asyncio.gather(
            *(self._probe(url) for url in self.shards))
        shard_states = {url: state
                        for url, (state, _payload) in zip(self.shards,
                                                          probes)}
        healthy = all(state == "ok" for state in shard_states.values())
        payload = {"status": "ok" if healthy else "degraded",
                   "shards": shard_states}
        await send_json(writer, 200 if healthy else 503, payload)

    async def _shard_snapshot(self, url: str) -> Optional[dict]:
        host, port, base = self._endpoints[url]
        try:
            status, _headers, data = await http_request(
                host, port, "GET", f"{base}/stats",
                timeout=self.probe_timeout)
            if status != 200:
                return None
            return json.loads(data.decode("utf-8"))
        except (OSError, asyncio.TimeoutError, ValueError):
            return None

    async def _handle_stats(self, writer: asyncio.StreamWriter) -> None:
        snapshots = await asyncio.gather(
            *(self._shard_snapshot(url) for url in self.shards))
        cluster = {"requests": 0, "jobs": 0, "executed": 0, "cache_hits": 0,
                   "deduped": 0, "errors": 0, "rejected": 0}
        shard_stats: Dict[str, object] = {}
        for url, snapshot in zip(self.shards, snapshots):
            if snapshot is None:
                shard_stats[url] = None
                continue
            shard_stats[url] = snapshot
            for key in cluster:
                value = snapshot.get(key)
                if isinstance(value, int):
                    cluster[key] += value
        await send_json(writer, 200, {
            "router": self.stats.snapshot(),
            "cluster": cluster,
            "shards": shard_stats,
        })

    # -- submission fan-out / merge --------------------------------------------

    async def _handle_submission(self, body: bytes,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"body is not valid JSON: {exc}") from None
        try:
            envelope = SubmissionEnvelope.from_payload(payload)
        except EnvelopeError as exc:
            raise HttpError(400, str(exc)) from None
        loop = asyncio.get_event_loop()

        def _plan() -> Tuple[int, Dict[int, str]]:
            jobs = envelope.spec.validate().expand()
            positions = (list(envelope.indices)
                         if envelope.indices is not None
                         else list(range(len(jobs))))
            if positions and positions[-1] >= len(jobs):
                raise EnvelopeError(
                    f"indices entry {positions[-1]} is out of range for a "
                    f"plan of {len(jobs)} job(s)")
            return len(jobs), {pos: jobs[pos].fingerprint()
                               for pos in positions}

        try:
            _plan_size, fingerprints = await loop.run_in_executor(None, _plan)
        except SpecValidationError as exc:
            raise HttpError(400, str(exc)) from None
        except EnvelopeError as exc:
            raise HttpError(400, str(exc)) from None

        self.stats.requests += 1
        self.stats.jobs += len(fingerprints)
        streams = await self._open_shard_streams(envelope, fingerprints)
        await self._merge_streams(envelope, fingerprints, streams, writer)

    def _sub_envelope(self, envelope: SubmissionEnvelope,
                      positions: Sequence[int]) -> bytes:
        sub = SubmissionEnvelope(spec=envelope.spec,
                                 include_status=envelope.include_status,
                                 indices=tuple(sorted(positions)))
        return (canonical_dumps(sub.to_dict())).encode("utf-8")

    async def _open_shard_streams(
            self, envelope: SubmissionEnvelope,
            fingerprints: Dict[int, str],
    ) -> List[Tuple[str, List[int], asyncio.StreamReader,
                    asyncio.StreamWriter]]:
        """Phase A: place every position and open one stream per shard.

        Completes (or raises) *before* the client sees any response bytes,
        so shard refusals map onto clean status codes: a shard 429
        propagates as 429 + ``Retry-After``; other shard errors become 502.
        Connect-level failures mark the shard dead for this request and
        re-route its positions to each position's next-ranked live shard.
        """
        rankings = {pos: rank_nodes(list(self.shards), fingerprint)
                    for pos, fingerprint in fingerprints.items()}
        dead: set = set()
        pending = set(fingerprints)
        streams: List[Tuple[str, List[int], asyncio.StreamReader,
                            asyncio.StreamWriter]] = []

        async def _abort(exc: HttpError) -> None:
            for _url, _positions, _reader, shard_writer in streams:
                shard_writer.close()
            if exc.status == 429:
                self.stats.rejected += 1
            else:
                self.stats.failed += 1
            raise exc

        while pending:
            groups: Dict[str, List[int]] = {}
            for pos in sorted(pending):
                targets = [url for url in rankings[pos] if url not in dead]
                if not targets:
                    await _abort(HttpError(
                        502, f"no shard reachable for job "
                             f"{fingerprints[pos]} (all of "
                             f"{list(self.shards)} failed)"))
                groups.setdefault(targets[0], []).append(pos)

            async def _open(url: str, positions: List[int]):
                host, port, base = self._endpoints[url]
                body = self._sub_envelope(envelope, positions)
                return await open_http_stream(
                    host, port, "POST", f"{base}/experiments", body=body,
                    connect_timeout=self.connect_timeout, head_timeout=None)

            opened = await asyncio.gather(
                *(_open(url, positions)
                  for url, positions in groups.items()),
                return_exceptions=True)
            failures: List[HttpError] = []
            for (url, positions), outcome in zip(groups.items(), opened):
                if isinstance(outcome, (OSError, asyncio.TimeoutError)):
                    # Connect-level failure: re-route these positions to
                    # their next-ranked shards on the next pass.
                    dead.add(url)
                    self.stats.retried += len(positions)
                    continue
                if isinstance(outcome, BaseException):
                    failures.append(HttpError(
                        502, f"shard {url} failed: {outcome}"))
                    continue
                status, headers, reader, shard_writer = outcome
                if status == 200:
                    streams.append((url, positions, reader, shard_writer))
                    pending.difference_update(positions)
                    continue
                data = await reader.read()
                shard_writer.close()
                if status == 429:
                    failures.append(HttpError(
                        429,
                        _error_message(data, f"shard {url} refused the "
                                             f"sub-plan (admission)"),
                        headers={"Retry-After":
                                 headers.get("retry-after", "1")}))
                else:
                    failures.append(HttpError(
                        502, f"shard {url} answered HTTP {status}: "
                             f"{_error_message(data, 'no detail')}"))
            if failures:
                # 429 beats 502 for the client: it carries Retry-After and
                # means "back off", which subsumes a concurrent shard fault.
                failures.sort(key=lambda exc: exc.status != 429)
                await _abort(failures[0])
        return streams

    async def _merge_streams(
            self, envelope: SubmissionEnvelope,
            fingerprints: Dict[int, str],
            streams: List[Tuple[str, List[int], asyncio.StreamReader,
                                asyncio.StreamWriter]],
            writer: asyncio.StreamWriter) -> None:
        """Phase B: stream the merged rows in plan order, then one summary."""
        await send_head(writer, 200, content_type="application/x-ndjson")
        queue: asyncio.Queue = asyncio.Queue()
        summaries: Dict[str, dict] = {}
        pumps = [asyncio.ensure_future(
                     self._pump(url, positions, reader, shard_writer,
                                queue, summaries, fingerprints))
                 for url, positions, reader, shard_writer in streams]
        expected = sorted(fingerprints)
        buffered: Dict[int, Tuple[bytes, bool]] = {}
        next_index = 0
        errors = 0
        remaining = len(pumps)
        try:
            while remaining:
                item = await queue.get()
                if item is None:
                    remaining -= 1
                    continue
                position, line, is_error = item
                buffered[position] = (line, is_error)
                while (next_index < len(expected)
                       and expected[next_index] in buffered):
                    line, is_error = buffered.pop(expected[next_index])
                    if is_error:
                        errors += 1
                        self.stats.stream_errors += 1
                    writer.write(line)
                    await writer.drain()
                    next_index += 1
        finally:
            for pump in pumps:
                pump.cancel()
            await asyncio.gather(*pumps, return_exceptions=True)

        executed = sum(s.get("executed", 0) for s in summaries.values())
        cache_hits = sum(s.get("cache_hits", 0) for s in summaries.values())
        deduped = sum(s.get("deduped", 0) for s in summaries.values())
        report = SubmissionReport(name=envelope.spec.name,
                                  jobs=len(expected),
                                  executed=executed,
                                  cache_hits=cache_hits,
                                  deduped=deduped,
                                  request_id=envelope.request_id,
                                  errors=errors)
        await send_line(writer, report.to_dict())

    async def _pump(self, url: str, positions: List[int],
                    reader: asyncio.StreamReader,
                    shard_writer: asyncio.StreamWriter,
                    queue: asyncio.Queue, summaries: Dict[str, dict],
                    fingerprints: Dict[int, str]) -> None:
        """Read one shard's stream; map its rows back onto plan positions.

        The shard preserves sub-plan order, so its i-th non-summary line is
        the row for ``positions[i]`` — data rows pass through as raw bytes.
        If the shard dies mid-stream, every unfilled position gets a
        synthesised error record instead of silently vanishing.
        """
        index = 0
        try:
            async for line in iter_ndjson(reader):
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if (isinstance(record, dict)
                        and record.get("type") == "summary"):
                    summaries[url] = record
                    continue
                if index < len(positions):
                    is_error = (isinstance(record, dict)
                                and record.get("type") == "error")
                    await queue.put((positions[index], bytes(line), is_error))
                    index += 1
        finally:
            shard_writer.close()
            for position in positions[index:]:
                record = {"type": "error",
                          "fingerprint": fingerprints[position],
                          "message": f"shard {url} disconnected before "
                                     f"returning this job"}
                line = (canonical_dumps(record) + "\n").encode("utf-8")
                await queue.put((position, line, True))
            await queue.put(None)


def _error_message(data: bytes, fallback: str) -> str:
    try:
        payload = json.loads(data.decode("utf-8"))
        message = payload.get("error")
        if isinstance(message, str) and message:
            return message
    except (ValueError, AttributeError, UnicodeDecodeError):
        pass
    return fallback
