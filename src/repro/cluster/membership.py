"""Live shard membership: the LIVE/SUSPECT/DEAD state machine behind routing.

PR 7's router took a static shard list at start-up; this module makes the
shard set a living object the router owns.  Every shard is tracked through
a small, explicit state machine::

                 probe/connect failure
        LIVE ──────────────────────────> SUSPECT
          ^                                 │
          │ probe success                   │ dead_after consecutive
          │ (rejoin resets counters)        │ failures
          │                                 v
        SUSPECT/DEAD <──────────────────  DEAD
                        probe success

    DRAINING is entered only via the admin surface (``POST /shards`` with
    ``action=drain``); a draining shard takes no new placements but is
    never declared dead — re-adding it returns it to LIVE.

Design rules, all of which exist so the failure paths are *testable*:

* **No wall-clock coupling.**  ``ShardSet`` never sleeps and never reads a
  clock; state moves only when :meth:`record_success` /
  :meth:`record_failure` are called.  The router's periodic probe loop is
  just one caller — tests drive the same transitions synchronously.
* **SUSPECT still routes.**  A single connect blip marks a shard SUSPECT
  immediately (so operators see it in ``/stats``) but does not move its
  keys: HRW ranking keeps placement stable through transient faults, and
  the router's per-request failover already skips a shard that fails
  *again*.  Only DEAD/DRAINING shards leave the routable set — and HRW
  guarantees that removes/returns only the minimal ``~1/N`` of keys.
* **Recovery is automatic.**  DEAD shards keep being probed; one probe
  success rejoins them as LIVE with counters reset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..service.httpcore import parse_http_url

__all__ = ["LIVE", "SUSPECT", "DEAD", "DRAINING", "ShardInfo", "ShardSet",
           "membership_rows"]

#: Shard states.  Plain strings (not an Enum) so snapshots serialise
#: directly into the canonical-JSON ``/stats`` payload.
LIVE = "live"
SUSPECT = "suspect"
DEAD = "dead"
DRAINING = "draining"

_STATES = (LIVE, SUSPECT, DEAD, DRAINING)


@dataclass
class ShardInfo:
    """One shard's membership record."""

    url: str
    state: str = LIVE
    consecutive_failures: int = 0
    probes: int = 0       # lifetime success+failure observations
    failures: int = 0     # lifetime failures
    recoveries: int = 0   # SUSPECT/DEAD -> LIVE transitions
    last_error: Optional[str] = None
    drained: bool = field(default=False, repr=False)

    @property
    def routable(self) -> bool:
        return self.state in (LIVE, SUSPECT)

    def snapshot(self) -> Dict[str, object]:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "probes": self.probes,
            "failures": self.failures,
            "recoveries": self.recoveries,
            "last_error": self.last_error,
        }


class ShardSet:
    """The router's live membership table.

    Not thread-safe by design: in the router every mutation happens on the
    event loop (probe loop, connect failures, admin requests), and tests
    drive it synchronously.
    """

    def __init__(self, urls: Sequence[str], dead_after: int = 3) -> None:
        if not urls:
            raise ValueError("a router needs at least one shard URL")
        if dead_after < 1:
            raise ValueError("dead_after must be >= 1")
        self.dead_after = dead_after
        self._shards: Dict[str, ShardInfo] = {}
        self._endpoints: Dict[str, Tuple[str, int, str]] = {}
        for url in urls:
            if not self.add(url):
                raise ValueError(f"duplicate shard URLs in {list(urls)}")

    # -- membership mutation ---------------------------------------------------

    def add(self, url: str) -> bool:
        """Add (or revive) a shard; returns ``False`` if already present.

        Re-adding a DRAINING or DEAD shard is the operator's "bring it
        back" verb: it rejoins as LIVE with failure counters reset.
        """
        normalised = url.rstrip("/")
        endpoint = parse_http_url(normalised)  # raises ValueError when bad
        info = self._shards.get(normalised)
        if info is not None:
            if info.state in (DRAINING, DEAD):
                info.state = LIVE
                info.consecutive_failures = 0
                info.drained = False
                info.last_error = None
                return True
            return False
        self._shards[normalised] = ShardInfo(url=normalised)
        self._endpoints[normalised] = endpoint
        return True

    def drain(self, url: str) -> None:
        """Stop placing new work on ``url`` (it stays in the member list)."""
        info = self._require(url.rstrip("/"))
        info.state = DRAINING
        info.drained = True
        info.consecutive_failures = 0

    def record_success(self, url: str) -> None:
        """A probe or request against ``url`` succeeded."""
        info = self._require(url)
        info.probes += 1
        if info.state == DRAINING:
            return
        if info.state in (SUSPECT, DEAD):
            info.recoveries += 1
        info.state = LIVE
        info.consecutive_failures = 0
        info.last_error = None

    def record_failure(self, url: str, error: Optional[str] = None) -> None:
        """A probe or connect against ``url`` failed.

        The first failure marks the shard SUSPECT immediately;
        ``dead_after`` *consecutive* failures mark it DEAD.  DRAINING
        shards keep their state (they are already out of the routable
        set).
        """
        info = self._require(url)
        info.probes += 1
        info.failures += 1
        info.consecutive_failures += 1
        if error is not None:
            info.last_error = error
        if info.state == DRAINING:
            return
        if info.consecutive_failures >= self.dead_after:
            info.state = DEAD
        else:
            info.state = SUSPECT

    def _require(self, url: str) -> ShardInfo:
        info = self._shards.get(url)
        if info is None:
            raise KeyError(f"unknown shard {url!r}; members: {self.urls}")
        return info

    # -- views -----------------------------------------------------------------

    @property
    def urls(self) -> Tuple[str, ...]:
        """Every member URL, in join order (includes DEAD/DRAINING)."""
        return tuple(self._shards)

    def routable(self) -> Tuple[str, ...]:
        """The URLs placements may target right now (LIVE + SUSPECT)."""
        return tuple(url for url, info in self._shards.items()
                     if info.routable)

    def probe_targets(self) -> Tuple[str, ...]:
        """The URLs the health loop should probe (everything not draining —
        DEAD shards keep being probed so they can rejoin automatically)."""
        return tuple(url for url, info in self._shards.items()
                     if info.state != DRAINING)

    def endpoint(self, url: str) -> Tuple[str, int, str]:
        return self._endpoints[url]

    def get(self, url: str) -> ShardInfo:
        return self._require(url.rstrip("/"))

    def __contains__(self, url: str) -> bool:
        return url.rstrip("/") in self._shards

    def __len__(self) -> int:
        return len(self._shards)

    @property
    def live_count(self) -> int:
        return sum(1 for info in self._shards.values() if info.state == LIVE)

    def counts(self) -> Dict[str, int]:
        counts = {state: 0 for state in _STATES}
        for info in self._shards.values():
            counts[info.state] += 1
        return counts

    def snapshot(self) -> Dict[str, object]:
        """The ``/stats`` membership section (JSON-ready, deterministic)."""
        return {
            "dead_after": self.dead_after,
            "counts": self.counts(),
            "shards": {url: info.snapshot()
                       for url, info in self._shards.items()},
        }

    def describe(self) -> str:
        counts = self.counts()
        return (f"shards={counts[LIVE]}/{len(self)} live "
                f"(suspect={counts[SUSPECT]} dead={counts[DEAD]} "
                f"draining={counts[DRAINING]})")


def membership_rows(snapshot: Dict[str, object]) -> List[Dict[str, object]]:
    """Flatten a membership snapshot into table rows for the CLI."""
    shards = snapshot.get("shards", {})
    rows = []
    for url, info in shards.items():
        if not isinstance(info, dict):
            continue
        rows.append({
            "shard": url,
            "state": info.get("state", "?"),
            "consec_failures": info.get("consecutive_failures", 0),
            "probes": info.get("probes", 0),
            "failures": info.get("failures", 0),
            "recoveries": info.get("recoveries", 0),
            "last_error": (info.get("last_error") or "-"),
        })
    return rows
