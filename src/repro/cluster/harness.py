"""An in-process N-shard cluster for tests and benchmarks.

Spinning up "2 serves + 1 router" appears in three places — the cluster
test suite, the cache-peer stress test, and the service load benchmark —
and ``benchmarks/`` cannot import from ``tests/``, so the harness lives in
the package: a real :class:`~repro.cluster.router.ShardRouter` in front of
real :class:`~repro.service.server.ExperimentServer` shards, all on
loopback ephemeral ports inside one background event-loop thread.  This is
the same wire path as a production deployment; only the process boundaries
are collapsed.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import tempfile
import threading
from typing import (Awaitable, Callable, Dict, List, Mapping, Optional,
                    Tuple, Union)

from ..exec.cache import CacheBackend, DirectoryCache
from ..service.executor import ServiceExecutor
from ..service.server import ExperimentServer
from ..service.service import ExperimentService
from .chaos import ChaosProxy, FaultPlan
from .router import ShardRouter

__all__ = ["ClusterHarness"]


class ClusterHarness:
    """Run N serve shards (and optionally a router) on loopback ports.

    Use as a context manager::

        with ClusterHarness(shards=2) as cluster:
            status, body = cluster.request("POST", "/experiments", payload)

    ``request`` talks to the router by default (or to shard 0 when the
    harness was built with ``router=False``); ``shard_request`` targets one
    shard directly.  Each shard gets its own executor and, by default, its
    own private :class:`~repro.exec.cache.DirectoryCache` under a temp
    directory owned by the harness — pass ``cache_factory`` to supply
    backends (or ``None`` for cacheless shards).
    """

    def __init__(self, shards: int = 2, router: bool = True,
                 max_workers: int = 2,
                 cache_factory: Optional[
                     Callable[[int], Optional[CacheBackend]]] = None,
                 max_pending: Optional[int] = None,
                 retry_after: float = 1.0,
                 poll_interval: float = 0.01,
                 start_timeout: float = 120.0,
                 router_options: Optional[Mapping[str, object]] = None,
                 ) -> None:
        if shards < 1:
            raise ValueError("a cluster needs at least one shard")
        self.num_shards = shards
        self.with_router = router
        self.max_workers = max_workers
        self.max_pending = max_pending
        self.retry_after = retry_after
        self.poll_interval = poll_interval
        self.start_timeout = start_timeout
        #: Extra keyword arguments for the :class:`ShardRouter` (e.g.
        #: ``max_attempts``, ``dead_after``, ``rng`` — anything its
        #: constructor takes beyond the shard list and port).
        self.router_options: Dict[str, object] = dict(router_options or {})
        self._cache_factory = cache_factory
        self._fault_plans: Dict[int, FaultPlan] = {}
        self._tempdir: Optional[tempfile.TemporaryDirectory] = None
        self.servers: List[ExperimentServer] = []
        self.proxies: Dict[int, ChaosProxy] = {}
        self.router: Optional[ShardRouter] = None
        self._thread: Optional[threading.Thread] = None
        self._box: dict = {}
        self._started = threading.Event()
        self._failure: Optional[BaseException] = None

    def with_faults(self, plans: Union[FaultPlan,
                                       Mapping[int, FaultPlan]],
                    ) -> "ClusterHarness":
        """Interpose a :class:`ChaosProxy` between router and shard(s).

        ``plans`` is either one :class:`FaultPlan` (applied to shard 0) or
        a ``{shard_index: FaultPlan}`` mapping.  Must be called before
        :meth:`start`.  The router is then pointed at the proxy URL for
        each faulted shard, so its traffic — and only its traffic — flows
        through the fault schedule; direct ``shard_request`` calls and
        cache-peer traffic keep using the real shard port.
        """
        if self._thread is not None or self._started.is_set():
            raise RuntimeError("with_faults() must be called before start()")
        if isinstance(plans, FaultPlan):
            plans = {0: plans}
        for index, plan in plans.items():
            if not 0 <= index < self.num_shards:
                raise ValueError(f"no shard {index} in a "
                                 f"{self.num_shards}-shard cluster")
            if not isinstance(plan, FaultPlan):
                raise TypeError(f"expected a FaultPlan for shard {index}, "
                                f"got {plan!r}")
            self._fault_plans[index] = plan
        return self

    # -- lifecycle -------------------------------------------------------------

    def _build_cache(self, index: int) -> Optional[CacheBackend]:
        if self._cache_factory is not None:
            return self._cache_factory(index)
        if self._tempdir is None:
            self._tempdir = tempfile.TemporaryDirectory(
                prefix="rescq-cluster-")
        return DirectoryCache(f"{self._tempdir.name}/shard{index}")

    def start(self) -> "ClusterHarness":
        for index in range(self.num_shards):
            service = ExperimentService(
                executor=ServiceExecutor(max_workers=self.max_workers,
                                         poll_interval=self.poll_interval),
                cache=self._build_cache(index),
                max_pending=self.max_pending,
                retry_after=self.retry_after)
            self.servers.append(ExperimentServer(service, port=0))

        def runner() -> None:
            async def main() -> None:
                started_servers: List[ExperimentServer] = []
                started_proxies: List[ChaosProxy] = []
                try:
                    for server in self.servers:
                        await server.start()
                        started_servers.append(server)
                    for index, plan in self._fault_plans.items():
                        proxy = ChaosProxy("127.0.0.1",
                                           self.servers[index].port,
                                           plan=plan)
                        await proxy.start()
                        started_proxies.append(proxy)
                        self.proxies[index] = proxy
                    if self.with_router:
                        self.router = ShardRouter(self.routed_urls, port=0,
                                                  **self.router_options)
                        await self.router.start()
                except BaseException as exc:  # noqa: BLE001 - report to caller
                    self._failure = exc
                    for proxy in started_proxies:
                        await proxy.stop()
                    for server in started_servers:
                        await server.stop(drain=False)
                    self._started.set()
                    return
                self._box["loop"] = asyncio.get_event_loop()
                self._box["stop"] = asyncio.Event()
                self._started.set()
                await self._box["stop"].wait()
                if self.router is not None:
                    await self.router.stop()
                for proxy in self.proxies.values():
                    await proxy.stop()
                for server in self.servers:
                    await server.stop(drain=True)
            asyncio.run(main())

        self._thread = threading.Thread(target=runner, daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=self.start_timeout):
            raise RuntimeError("cluster failed to start in time")
        if self._failure is not None:
            raise RuntimeError(
                f"cluster failed to start: {self._failure}") \
                from self._failure
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        if "loop" in self._box:
            self._box["loop"].call_soon_threadsafe(self._box["stop"].set)
        self._thread.join(timeout=self.start_timeout)
        alive = self._thread.is_alive()
        self._thread = None
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None
        if alive:
            raise RuntimeError("cluster failed to stop cleanly")

    def __enter__(self) -> "ClusterHarness":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()

    # -- addressing ------------------------------------------------------------

    @property
    def shard_ports(self) -> List[int]:
        return [server.port for server in self.servers]

    @property
    def shard_urls(self) -> List[str]:
        return [f"http://127.0.0.1:{port}" for port in self.shard_ports]

    @property
    def routed_urls(self) -> List[str]:
        """What the router actually dials: proxy URLs for faulted shards."""
        return [self.proxies[index].url if index in self.proxies
                else url
                for index, url in enumerate(self.shard_urls)]

    @property
    def router_port(self) -> int:
        if self.router is None:
            raise RuntimeError("this harness was built with router=False")
        return self.router.port

    @property
    def router_url(self) -> str:
        return f"http://127.0.0.1:{self.router_port}"

    # -- loop helpers ----------------------------------------------------------

    def call(self, factory: Callable[[], Awaitable], timeout: float = 60.0):
        """Run ``factory()`` (a coroutine) on the cluster's event loop."""
        if "loop" not in self._box:
            raise RuntimeError("cluster is not running")
        future = asyncio.run_coroutine_threadsafe(factory(),
                                                  self._box["loop"])
        return future.result(timeout)

    def probe_once(self) -> dict:
        """Drive one router health-probe round synchronously (no clocks)."""
        if self.router is None:
            raise RuntimeError("this harness was built with router=False")
        return self.call(self.router.probe_once)

    def set_fault_plan(self, index: int, plan: FaultPlan) -> None:
        """Swap the running fault schedule on shard ``index``'s proxy.

        Only shards that had a plan at :meth:`start` time have a proxy to
        swap on; the new plan starts from its own cursor.
        """
        proxy = self.proxies.get(index)
        if proxy is None:
            raise RuntimeError(
                f"shard {index} has no chaos proxy; pass a plan for it in "
                f"with_faults() before start()")
        proxy.plan = plan

    # -- client helpers --------------------------------------------------------

    @staticmethod
    def _request(port: int, method: str, path: str, payload=None,
                 raw: Optional[bytes] = None, timeout: float = 300.0,
                 ) -> Tuple[int, dict, bytes]:
        body = raw if raw is not None else (
            json.dumps(payload).encode("utf-8")
            if payload is not None else None)
        connection = http.client.HTTPConnection("127.0.0.1", port,
                                                timeout=timeout)
        try:
            connection.request(method, path, body=body)
            response = connection.getresponse()
            headers = {name.lower(): value
                       for name, value in response.getheaders()}
            return response.status, headers, response.read()
        finally:
            connection.close()

    def request(self, method: str, path: str, payload=None,
                raw: Optional[bytes] = None, timeout: float = 300.0,
                ) -> Tuple[int, dict, bytes]:
        """One HTTP exchange with the router (or shard 0 without a router).

        Returns ``(status, headers, body)`` with header names lowercased.
        """
        port = (self.router_port if self.router is not None
                else self.shard_ports[0])
        return self._request(port, method, path, payload=payload, raw=raw,
                             timeout=timeout)

    def shard_request(self, index: int, method: str, path: str, payload=None,
                      raw: Optional[bytes] = None, timeout: float = 300.0,
                      ) -> Tuple[int, dict, bytes]:
        """One HTTP exchange with shard ``index`` directly."""
        return self._request(self.shard_ports[index], method, path,
                             payload=payload, raw=raw, timeout=timeout)
