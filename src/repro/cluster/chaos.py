"""Deterministic fault injection: a TCP proxy between router and shard.

Every robustness claim in this package is only as good as the failure it
was tested against, so the failures are *first-class objects*:

* :class:`Fault` — one injectable failure, by kind:

  - ``refuse``   — close the client connection at accept time, before a
    byte is read (the proxy-level stand-in for connect-refused: the
    router's in-flight request dies with an ``OSError``);
  - ``close``    — read the full request, then close without answering
    (accept-then-close);
  - ``truncate`` — proxy the exchange but cut the client off after
    forwarding ``rows`` NDJSON body lines of the response
    (mid-stream shard death, the case the router must re-route);
  - ``stall``    — proxy the exchange after ``delay`` seconds of added
    latency;
  - ``rewrite``  — swallow the exchange and answer with a synthetic
    ``status`` (e.g. 500, or 429 with ``retry_after``) without touching
    the upstream.

* :class:`FaultPlan` — an ordered per-connection schedule of faults.
  Connection *i* through the proxy experiences ``faults[i]``; connections
  past the end of the plan pass through untouched.  A plan is either
  written out explicitly (so every chaos test *names* its exact failure
  sequence) or derived from a seed via :meth:`FaultPlan.seeded` — both are
  fully deterministic.

* :class:`ChaosProxy` — a stdlib-asyncio TCP proxy applying a plan.  The
  cluster harness wires one in front of a shard via
  :meth:`~repro.cluster.harness.ClusterHarness.with_faults`, so chaos
  tests exercise the *real* router/shard wire path with the fault folded
  into the middle.

Nothing here sleeps on hidden clocks or draws from global RNGs: the only
randomness is the explicit seed handed to :meth:`FaultPlan.seeded`.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

__all__ = ["Fault", "FaultPlan", "ChaosProxy"]

FAULT_KINDS = ("refuse", "close", "truncate", "stall", "rewrite")


@dataclass(frozen=True)
class Fault:
    """One injectable failure (see the module docstring for the kinds)."""

    kind: str
    rows: int = 0                       # truncate: body rows forwarded first
    delay: float = 0.0                  # stall: added latency, seconds
    status: int = 500                   # rewrite: synthetic status code
    retry_after: Optional[float] = None  # rewrite 429: Retry-After header

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"kinds: {FAULT_KINDS}")
        if self.rows < 0:
            raise ValueError("truncate rows must be >= 0")
        if self.delay < 0:
            raise ValueError("stall delay must be >= 0")

    def describe(self) -> str:
        if self.kind == "truncate":
            return f"truncate(rows={self.rows})"
        if self.kind == "stall":
            return f"stall(delay={self.delay:g})"
        if self.kind == "rewrite":
            extra = (f",retry_after={self.retry_after:g}"
                     if self.retry_after is not None else "")
            return f"rewrite(status={self.status}{extra})"
        return self.kind


class FaultPlan:
    """An ordered, deterministic per-connection fault schedule.

    ``faults[i]`` is applied to the *i*-th connection accepted by the
    proxy; ``None`` entries (and every connection past the end of the
    plan) pass through cleanly.  The plan is consumed statefully —
    :meth:`reset` rewinds it for reuse across test cases.
    """

    def __init__(self, faults: Sequence[Optional[Fault]] = ()) -> None:
        self.faults: Tuple[Optional[Fault], ...] = tuple(faults)
        self._cursor = 0

    @classmethod
    def none(cls) -> "FaultPlan":
        return cls(())

    @classmethod
    def seeded(cls, seed: int, length: int,
               kinds: Sequence[str] = ("close", "truncate", "stall"),
               rate: float = 0.5, max_rows: int = 3,
               max_delay: float = 0.05) -> "FaultPlan":
        """Derive a reproducible plan from ``seed`` alone.

        Each of the ``length`` slots is independently faulted with
        probability ``rate``; faulted slots draw a kind uniformly from
        ``kinds`` and kind-specific parameters from the same seeded
        stream.  Identical arguments always produce the identical plan.
        """
        rng = random.Random(seed)
        faults: List[Optional[Fault]] = []
        for _ in range(length):
            if rng.random() >= rate:
                faults.append(None)
                continue
            kind = kinds[rng.randrange(len(kinds))]
            if kind == "truncate":
                faults.append(Fault("truncate", rows=rng.randrange(
                    max_rows + 1)))
            elif kind == "stall":
                faults.append(Fault("stall",
                                    delay=rng.random() * max_delay))
            elif kind == "rewrite":
                faults.append(Fault("rewrite", status=500))
            else:
                faults.append(Fault(kind))
        return cls(faults)

    @property
    def fault_count(self) -> int:
        return sum(1 for fault in self.faults if fault is not None)

    def next(self) -> Optional[Fault]:
        """The fault for the next connection (``None`` = pass through)."""
        if self._cursor < len(self.faults):
            fault = self.faults[self._cursor]
            self._cursor += 1
            return fault
        self._cursor += 1
        return None

    def reset(self) -> None:
        self._cursor = 0

    @property
    def connections_seen(self) -> int:
        return self._cursor

    def describe(self) -> str:
        parts = [fault.describe() if fault else "pass"
                 for fault in self.faults]
        return f"plan[{', '.join(parts) or 'empty'}]"


async def _read_raw_request(reader: asyncio.StreamReader) -> bytes:
    """Read one full raw HTTP request (head + Content-Length body).

    Returns whatever arrived if the client hangs up early — the proxy
    never errors on a half request, it just forwards (or drops) it.
    """
    blob = b""
    while b"\r\n\r\n" not in blob:
        chunk = await reader.read(65536)
        if not chunk:
            return blob
        blob += chunk
    head, _sep, body = blob.partition(b"\r\n\r\n")
    length = 0
    for line in head.split(b"\r\n")[1:]:
        name, _sep2, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            try:
                length = int(value.strip())
            except ValueError:
                length = 0
    while len(body) < length:
        chunk = await reader.read(65536)
        if not chunk:
            break
        body += chunk
    return head + b"\r\n\r\n" + body


class ChaosProxy:
    """A TCP proxy in front of one shard, applying a :class:`FaultPlan`.

    ``applied`` records the fault (or ``None``) consumed by each accepted
    connection, in order, so tests can assert the schedule actually fired.
    """

    def __init__(self, upstream_host: str, upstream_port: int,
                 plan: Optional[FaultPlan] = None,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.plan = plan or FaultPlan.none()
        self.host = host
        self.port = port
        self.applied: List[Optional[Fault]] = []
        self._server: Optional[asyncio.AbstractServer] = None
        self._handlers: set = set()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._on_connection, host=self.host, port=self.port)
        for sock in self._server.sockets or ():
            self.port = sock.getsockname()[1]
            break

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._handlers):
            task.cancel()
        if self._handlers:
            await asyncio.gather(*list(self._handlers),
                                 return_exceptions=True)

    # -- connection handling ---------------------------------------------------

    def _on_connection(self, reader: asyncio.StreamReader,
                       writer: asyncio.StreamWriter) -> None:
        fault = self.plan.next()
        self.applied.append(fault)
        task = asyncio.ensure_future(self._handle(reader, writer, fault))
        self._handlers.add(task)
        task.add_done_callback(self._handlers.discard)

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter,
                      fault: Optional[Fault]) -> None:
        upstream_writer: Optional[asyncio.StreamWriter] = None
        try:
            if fault is not None and fault.kind == "refuse":
                return  # close before reading a byte
            request = await _read_raw_request(reader)
            if not request:
                return
            if fault is not None and fault.kind == "close":
                return  # accept-then-close: request read, no answer
            if fault is not None and fault.kind == "rewrite":
                await self._rewrite(writer, fault)
                return
            if fault is not None and fault.kind == "stall":
                await asyncio.sleep(fault.delay)
            upstream_reader, upstream_writer = await asyncio.open_connection(
                self.upstream_host, self.upstream_port)
            upstream_writer.write(request)
            await upstream_writer.drain()
            if fault is not None and fault.kind == "truncate":
                await self._relay_truncated(upstream_reader, writer,
                                            fault.rows)
            else:
                await self._relay(upstream_reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass
        finally:
            for closing in (writer, upstream_writer):
                if closing is None:
                    continue
                try:
                    closing.close()
                    await closing.wait_closed()
                except (ConnectionError, RuntimeError, OSError):
                    pass

    @staticmethod
    async def _rewrite(writer: asyncio.StreamWriter, fault: Fault) -> None:
        body = (b'{"error":"chaos: injected fault"}\n')
        lines = [f"HTTP/1.1 {fault.status} Chaos",
                 "Content-Type: application/json",
                 "Connection: close",
                 f"Content-Length: {len(body)}"]
        if fault.retry_after is not None:
            lines.append(f"Retry-After: {fault.retry_after:g}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
        await writer.drain()

    @staticmethod
    async def _relay(upstream_reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        while True:
            chunk = await upstream_reader.read(65536)
            if not chunk:
                break
            writer.write(chunk)
            await writer.drain()

    @staticmethod
    async def _relay_truncated(upstream_reader: asyncio.StreamReader,
                               writer: asyncio.StreamWriter,
                               rows: int) -> None:
        """Forward the response head plus ``rows`` body lines, then cut.

        The cut lands exactly after the ``rows``-th body newline, so the
        client sees that many complete NDJSON records followed by EOF —
        the shape of a shard dying mid-stream.
        """
        in_body = False
        remaining = rows
        head_buffer = b""
        while True:
            chunk = await upstream_reader.read(65536)
            if not chunk:
                break
            if not in_body:
                head_buffer += chunk
                marker = head_buffer.find(b"\r\n\r\n")
                if marker < 0:
                    continue
                in_body = True
                boundary = marker + 4
                chunk = head_buffer[boundary:]
                writer.write(head_buffer[:boundary])
                await writer.drain()
            cursor = 0
            while remaining > 0:
                newline = chunk.find(b"\n", cursor)
                if newline < 0:
                    break
                cursor = newline + 1
                remaining -= 1
            if remaining == 0:
                writer.write(chunk[:cursor])
                await writer.drain()
                return  # cut: connection closes in the handler's finally
            writer.write(chunk)
            await writer.drain()
