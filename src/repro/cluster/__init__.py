"""repro.cluster: shard a ``rescq serve`` fleet behind one front end.

PR 6's :mod:`repro.service` made a single host deduplicate perfectly; this
package makes N such hosts act as *one* deduplicating service:

* :mod:`~repro.cluster.hashring` — rendezvous (HRW) hashing of job
  fingerprints onto shard URLs, giving a stable, coordination-free
  placement with a natural next-ranked fallback order;
* :mod:`~repro.cluster.router` — the ``rescq route`` asyncio front end:
  expands a spec, fans per-shard sub-plans out over the wire, and merges
  the NDJSON row streams back into one canonical, plan-ordered response;
* :mod:`~repro.cluster.membership` — the live shard set: a
  LIVE/SUSPECT/DEAD/DRAINING state machine fed by health probes and
  connect failures, replacing the static start-up shard list;
* :mod:`~repro.cluster.chaos` — deterministic fault injection: a
  :class:`FaultPlan` schedule applied by a TCP :class:`ChaosProxy`
  between router and shard, so failure handling is *tested*, not hoped;
* :mod:`~repro.cluster.harness` — an in-process N-shard + router cluster
  used by the tests and the service load benchmark (optionally under a
  fault plan via :meth:`ClusterHarness.with_faults`).

Cross-shard result sharing uses the cache peer protocol from
:class:`~repro.exec.cache.HttpCache` / the server's ``/cache`` routes, not
anything in this package: shards stay shared-nothing, the router stays
stateless, and the only coordination point is the write-once cache tier.
"""

from .chaos import ChaosProxy, Fault, FaultPlan
from .harness import ClusterHarness
from .hashring import hrw_score, rank_nodes
from .membership import (DEAD, DRAINING, LIVE, SUSPECT, ShardInfo, ShardSet,
                         membership_rows)
from .router import RouterStats, ShardRouter

__all__ = ["ChaosProxy", "ClusterHarness", "DEAD", "DRAINING", "Fault",
           "FaultPlan", "LIVE", "RouterStats", "ShardInfo", "ShardRouter",
           "ShardSet", "SUSPECT", "hrw_score", "membership_rows",
           "rank_nodes"]
