"""Rendezvous (highest-random-weight) hashing of jobs onto shards.

Every placement decision is a pure function of ``(node, key)``: each node
is scored against the key and the nodes are ranked by descending score.
The winner owns the key; the runner-up is the natural fallback when the
winner is unreachable.  Compared with a consistent-hash ring this needs no
virtual nodes, no ring state and no coordination — every router instance
(and every test) derives the identical ranking from the shard URL list
alone — while still moving only ``~1/N`` of the keys when a shard joins or
leaves.

Scores are the first 8 bytes of ``SHA-256(node || NUL || key)``, so
placement is stable across processes, hosts and Python versions (no
``hash()`` randomisation).
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence

__all__ = ["hrw_score", "rank_nodes"]


def hrw_score(node: str, key: str) -> int:
    """The rendezvous weight of ``node`` for ``key`` (64-bit, deterministic).

    The NUL separator keeps the node/key boundary unambiguous —
    ``("ab", "c")`` and ``("a", "bc")`` hash differently.
    """
    digest = hashlib.sha256(
        node.encode("utf-8") + b"\x00" + key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def rank_nodes(nodes: Sequence[str], key: str) -> List[str]:
    """All ``nodes`` ranked by descending weight for ``key``.

    ``rank_nodes(nodes, key)[0]`` is the owner; successive entries are the
    bounded-retry fallback order.  Ties (astronomically unlikely with
    distinct node names) break on the node name so the ranking stays total
    and deterministic.
    """
    if not nodes:
        raise ValueError("rank_nodes needs at least one node")
    return sorted(nodes, key=lambda node: (hrw_score(node, key), node),
                  reverse=True)
