"""Lowering arbitrary workload circuits into the Clifford+Rz scheduler basis.

The paper compiles every benchmark into the basis ``{Rz, H, X, CNOT}`` with
Qiskit (Section 5.1).  We do not depend on Qiskit; instead this module
implements the standard textbook decompositions for every gate the workload
generators emit, which is sufficient because those generators only use a small
well-known gate vocabulary (rotations, controlled-phase, swap, Toffoli, ...).
"""

from __future__ import annotations

import math
from typing import List

from .circuit import Circuit
from .gates import Gate, GateType

__all__ = ["transpile_to_clifford_rz", "decompose_gate", "BASIS"]

#: Scheduler basis (Section 3).  S/Sdg/T/Tdg/Z are retained because they are
#: Rz rotations by construction and the scheduler classifies them by angle.
BASIS = (GateType.RZ, GateType.H, GateType.X, GateType.CNOT,
         GateType.MEASURE, GateType.BARRIER)


def _rz(qubit: int, theta: float) -> Gate:
    return Gate(GateType.RZ, (qubit,), angle=theta)


def _h(qubit: int) -> Gate:
    return Gate(GateType.H, (qubit,))


def _cx(control: int, target: int) -> Gate:
    return Gate(GateType.CNOT, (control, target))


def decompose_gate(gate: Gate) -> List[Gate]:
    """Decompose a single gate into the ``{Rz, H, X, CNOT}`` basis.

    Decompositions are exact up to global phase.  Gates already in the basis
    are returned unchanged (as a single-element list).
    """
    gtype = gate.gate_type
    qubits = gate.qubits

    if gtype in (GateType.RZ, GateType.H, GateType.X, GateType.CNOT,
                 GateType.MEASURE, GateType.BARRIER):
        return [gate]

    if gtype is GateType.Z:
        return [_rz(qubits[0], math.pi)]
    if gtype is GateType.S:
        return [_rz(qubits[0], math.pi / 2)]
    if gtype is GateType.SDG:
        return [_rz(qubits[0], -math.pi / 2)]
    if gtype is GateType.T:
        return [_rz(qubits[0], math.pi / 4)]
    if gtype is GateType.TDG:
        return [_rz(qubits[0], -math.pi / 4)]
    if gtype is GateType.Y:
        # Y = Z X (up to global phase)
        return [_rz(qubits[0], math.pi), Gate(GateType.X, (qubits[0],))]

    if gtype is GateType.RX:
        # Rx(t) = H Rz(t) H
        q = qubits[0]
        return [_h(q), _rz(q, gate.angle), _h(q)]
    if gtype is GateType.RY:
        # Ry(t) = Sdg H Rz(t) H S  (i.e. Rz(-pi/2) H Rz(t) H Rz(pi/2))
        q = qubits[0]
        return [_rz(q, -math.pi / 2), _h(q), _rz(q, gate.angle), _h(q),
                _rz(q, math.pi / 2)]
    if gtype is GateType.U3:
        # u3(theta, phi, lam) ~ Rz(phi) Ry(theta) Rz(lam); angle stores theta
        # only when emitted by generators we control, so this branch is not
        # produced by the built-in workloads and exists for completeness.
        q = qubits[0]
        theta = gate.angle or 0.0
        return decompose_gate(Gate(GateType.RY, (q,), angle=theta))

    if gtype is GateType.CZ:
        control, target = qubits
        return [_h(target), _cx(control, target), _h(target)]
    if gtype is GateType.SWAP:
        a, b = qubits
        return [_cx(a, b), _cx(b, a), _cx(a, b)]
    if gtype is GateType.RZZ:
        # Rzz(t) = CX . Rz(t) on target . CX
        control, target = qubits
        return [_cx(control, target), _rz(target, gate.angle),
                _cx(control, target)]

    if gtype is GateType.CCX:
        # Standard 6-CNOT Toffoli decomposition with T gates expressed as Rz.
        a, b, c = qubits
        t = math.pi / 4
        return [
            _h(c),
            _cx(b, c), _rz(c, -t),
            _cx(a, c), _rz(c, t),
            _cx(b, c), _rz(c, -t),
            _cx(a, c), _rz(b, t), _rz(c, t),
            _cx(a, b), _h(c),
            _rz(a, t), _rz(b, -t),
            _cx(a, b),
        ]

    raise ValueError(f"no decomposition registered for gate type {gtype!r}")


def transpile_to_clifford_rz(circuit: Circuit,
                             drop_identity: bool = True) -> Circuit:
    """Lower every gate of ``circuit`` into the Clifford+Rz basis.

    Parameters
    ----------
    circuit:
        The input circuit, possibly containing high-level gates (CZ, SWAP,
        RX, RY, RZZ, CCX, ...).
    drop_identity:
        When ``True`` (default), Rz rotations with an angle that is an exact
        multiple of ``2*pi`` are removed entirely.
    """
    out = Circuit(circuit.num_qubits, name=circuit.name)
    for gate in circuit:
        for lowered in decompose_gate(gate):
            if (drop_identity and lowered.gate_type is GateType.RZ
                    and _is_identity_angle(lowered.angle)):
                continue
            out.append(lowered)
    return out


def _is_identity_angle(theta: float) -> bool:
    ratio = theta / (2 * math.pi)
    return abs(ratio - round(ratio)) < 1e-12
