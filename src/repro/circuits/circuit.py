"""The :class:`Circuit` container used throughout the reproduction.

A circuit is an ordered list of :class:`~repro.circuits.gates.Gate` objects on
``num_qubits`` logical qubits.  It intentionally mirrors the minimal text
format described in the paper's artifact appendix (Section B.7): the total
number of gates on the first line followed by one gate per line.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .gates import Gate, GateType, cnot, h, rz, x

__all__ = ["Circuit", "CircuitStats"]


class CircuitStats:
    """Summary statistics of a circuit (the columns of Table 3)."""

    def __init__(self, circuit: "Circuit") -> None:
        self.num_qubits = circuit.num_qubits
        self.total_gates = len(circuit)
        counts: Dict[GateType, int] = {}
        rotation_count = 0
        for gate in circuit:
            counts[gate.gate_type] = counts.get(gate.gate_type, 0) + 1
            if gate.is_rotation:
                rotation_count += 1
        self.gate_counts = counts
        #: Continuous-angle Rz rotations requiring |m_theta> injection.
        self.num_rz = rotation_count
        self.num_cnot = counts.get(GateType.CNOT, 0)
        self.num_h = counts.get(GateType.H, 0)
        self.depth = circuit.depth()

    @property
    def rz_to_cnot_ratio(self) -> float:
        """Ratio of Rz gates to CNOT gates (the axis Table 3 spans, ~1 to ~6.5)."""
        if self.num_cnot == 0:
            return math.inf if self.num_rz else 0.0
        return self.num_rz / self.num_cnot

    def as_row(self) -> Dict[str, object]:
        """Return the Table 3 row for this circuit."""
        return {
            "qubits": self.num_qubits,
            "rz": self.num_rz,
            "cnot": self.num_cnot,
            "total": self.total_gates,
            "depth": self.depth,
            "rz_per_cnot": round(self.rz_to_cnot_ratio, 3),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CircuitStats(qubits={self.num_qubits}, rz={self.num_rz}, "
            f"cnot={self.num_cnot}, depth={self.depth})"
        )


class Circuit:
    """An ordered sequence of gates over ``num_qubits`` logical qubits."""

    def __init__(self, num_qubits: int, name: str = "circuit",
                 gates: Optional[Iterable[Gate]] = None) -> None:
        if num_qubits <= 0:
            raise ValueError("num_qubits must be positive")
        self.num_qubits = int(num_qubits)
        self.name = name
        self._gates: List[Gate] = []
        if gates is not None:
            for gate in gates:
                self.append(gate)

    # -- construction ----------------------------------------------------------

    def append(self, gate: Gate) -> "Circuit":
        """Append ``gate``, validating that its operands are in range."""
        for qubit in gate.qubits:
            if qubit >= self.num_qubits:
                raise ValueError(
                    f"gate {gate} references qubit {qubit} but the circuit "
                    f"has only {self.num_qubits} qubits"
                )
        self._gates.append(gate)
        return self

    def extend(self, gates: Iterable[Gate]) -> "Circuit":
        for gate in gates:
            self.append(gate)
        return self

    # Convenience builders mirroring Qiskit's imperative style --------------

    def rz(self, qubit: int, theta: float) -> "Circuit":
        return self.append(rz(qubit, theta))

    def h(self, qubit: int) -> "Circuit":
        return self.append(h(qubit))

    def x(self, qubit: int) -> "Circuit":
        return self.append(x(qubit))

    def cnot(self, control: int, target: int) -> "Circuit":
        return self.append(cnot(control, target))

    cx = cnot

    # -- container protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __getitem__(self, index: int) -> Gate:
        return self._gates[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Circuit):
            return NotImplemented
        return (self.num_qubits == other.num_qubits
                and self._gates == other._gates)

    @property
    def gates(self) -> Tuple[Gate, ...]:
        return tuple(self._gates)

    # -- analysis ----------------------------------------------------------------

    def stats(self) -> CircuitStats:
        return CircuitStats(self)

    def count(self, gate_type: GateType) -> int:
        return sum(1 for gate in self._gates if gate.gate_type is gate_type)

    def used_qubits(self) -> Tuple[int, ...]:
        seen = set()
        for gate in self._gates:
            seen.update(gate.qubits)
        return tuple(sorted(seen))

    def depth(self) -> int:
        """Logical circuit depth counting every non-barrier gate as one layer unit."""
        frontier = [0] * self.num_qubits
        for gate in self._gates:
            if gate.gate_type is GateType.BARRIER:
                level = max(frontier) if frontier else 0
                frontier = [level] * self.num_qubits
                continue
            level = max(frontier[q] for q in gate.qubits) + 1
            for qubit in gate.qubits:
                frontier[qubit] = level
        return max(frontier) if frontier else 0

    def layers(self) -> List[List[int]]:
        """Greedy ASAP layering; returns lists of gate indices per layer.

        Barriers force synchronisation across all qubits and are not emitted
        as gates themselves.  This layering is what the *static* baseline
        schedulers consume (Section 3.1: "execution of the next layer is
        stalled until the gate with the highest execution time of the current
        layer is completed").
        """
        frontier = [0] * self.num_qubits
        layers: Dict[int, List[int]] = {}
        for index, gate in enumerate(self._gates):
            if gate.gate_type is GateType.BARRIER:
                level = max(frontier) if frontier else 0
                frontier = [level] * self.num_qubits
                continue
            level = max(frontier[q] for q in gate.qubits)
            layers.setdefault(level, []).append(index)
            for qubit in gate.qubits:
                frontier[qubit] = level + 1
        return [layers[level] for level in sorted(layers)]

    def remaining_depth_per_gate(self) -> List[int]:
        """For every gate, the length of the longest dependency chain *after* it.

        RESCQ prioritises gates on qubits with larger remaining circuit depth
        because they are more likely to be on the critical path (Figure 7
        caption).  The value for gate ``i`` counts ``i`` itself.
        """
        remaining = [0] * len(self._gates)
        frontier = [0] * self.num_qubits
        for index in range(len(self._gates) - 1, -1, -1):
            gate = self._gates[index]
            if gate.gate_type is GateType.BARRIER:
                continue
            depth_after = max((frontier[q] for q in gate.qubits), default=0)
            remaining[index] = depth_after + 1
            for qubit in gate.qubits:
                frontier[qubit] = depth_after + 1
        return remaining

    # -- transformation ---------------------------------------------------------

    def without_free_gates(self) -> "Circuit":
        """Return a copy with zero-cost gates (Pauli frame updates) removed."""
        kept = [gate for gate in self._gates if not gate.is_free]
        return Circuit(self.num_qubits, name=self.name, gates=kept)

    def copy(self, name: Optional[str] = None) -> "Circuit":
        return Circuit(self.num_qubits, name=name or self.name,
                       gates=list(self._gates))

    def relabeled(self, mapping: Sequence[int]) -> "Circuit":
        """Return a copy with qubit ``q`` renamed to ``mapping[q]``."""
        if len(mapping) < self.num_qubits:
            raise ValueError("mapping must cover every qubit")
        new_size = max(mapping[: self.num_qubits]) + 1
        out = Circuit(new_size, name=self.name)
        for gate in self._gates:
            new_qubits = tuple(mapping[q] for q in gate.qubits)
            out.append(Gate(gate.gate_type, new_qubits, angle=gate.angle,
                            label=gate.label))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Circuit(name={self.name!r}, qubits={self.num_qubits}, "
                f"gates={len(self._gates)})")
