"""Gate-level intermediate representation for Clifford+Rz programs.

The RESCQ scheduler operates on logical programs expressed in the basis
``{Rz(theta), H, X, CNOT}`` (Section 3 of the paper).  Gates are lightweight
immutable value objects: the simulator never inspects quantum amplitudes, only
gate *types*, *operands* and, for rotations, the *angle* (which determines how
many times the angle can be doubled before the correction becomes a Clifford).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = [
    "GateType",
    "Gate",
    "rz",
    "h",
    "x",
    "z",
    "s",
    "t",
    "cnot",
    "measure",
    "barrier",
    "CLIFFORD_ANGLE_ATOL",
    "is_clifford_angle",
    "doublings_until_clifford",
]


#: Absolute tolerance used when deciding whether a rotation angle is a
#: multiple of pi/2 (i.e. implementable as a Clifford frame update).
CLIFFORD_ANGLE_ATOL = 1e-9


class GateType(enum.Enum):
    """Enumeration of gate types understood by the schedulers.

    Only the members listed in :data:`GateType.BASIS` may appear in a program
    handed to a scheduler; the other members exist so that workload generators
    can build circuits naturally and then lower them via
    :func:`repro.circuits.transpile.transpile_to_clifford_rz`.
    """

    RZ = "rz"
    H = "h"
    X = "x"
    Z = "z"
    S = "s"
    SDG = "sdg"
    T = "t"
    TDG = "tdg"
    Y = "y"
    CNOT = "cx"
    CZ = "cz"
    SWAP = "swap"
    RX = "rx"
    RY = "ry"
    RZZ = "rzz"
    U3 = "u3"
    CCX = "ccx"
    MEASURE = "measure"
    BARRIER = "barrier"

    @property
    def is_two_qubit(self) -> bool:
        return self in _TWO_QUBIT_TYPES

    @property
    def is_three_qubit(self) -> bool:
        return self is GateType.CCX

    @property
    def num_qubits(self) -> int:
        if self is GateType.BARRIER:
            return 0
        if self.is_three_qubit:
            return 3
        return 2 if self.is_two_qubit else 1


_TWO_QUBIT_TYPES = frozenset(
    {GateType.CNOT, GateType.CZ, GateType.SWAP, GateType.RZZ}
)

#: The scheduler-facing basis (Section 3: "We assume all programs have already
#: been synthesized into the appropriate gate set").  MEASURE and BARRIER are
#: tolerated because they are free from the scheduler's point of view.
BASIS_TYPES = frozenset(
    {GateType.RZ, GateType.H, GateType.X, GateType.Z, GateType.S,
     GateType.SDG, GateType.T, GateType.TDG, GateType.CNOT,
     GateType.MEASURE, GateType.BARRIER}
)


def is_clifford_angle(theta: float) -> bool:
    """Return ``True`` when ``Rz(theta)`` is a Clifford gate.

    ``Rz`` is Clifford exactly when ``theta`` is an integer multiple of
    ``pi/2`` (identity, S, Z, Sdg up to global phase).  Clifford rotations do
    not need a magic-state injection and therefore cost zero lattice-surgery
    cycles in the symbolic execution model.
    """
    if theta is None:
        return False
    ratio = theta / (math.pi / 2)
    return abs(ratio - round(ratio)) < CLIFFORD_ANGLE_ATOL


def doublings_until_clifford(theta: float, max_doublings: int = 64) -> int:
    """Number of angle doublings before ``Rz(2^k * theta)`` becomes Clifford.

    The repeat-until-success correction chain doubles the angle on every
    injection failure (Section 3.2).  When a doubled angle lands on a Clifford
    the chain terminates early because the correction can be applied in the
    Pauli/Clifford frame.  Returns ``max_doublings`` when no doubling within
    that horizon produces a Clifford (the generic continuous-angle case).
    """
    angle = theta
    for k in range(max_doublings):
        if is_clifford_angle(angle):
            return k
        angle *= 2.0
    return max_doublings


@dataclass(frozen=True)
class Gate:
    """A single logical gate.

    Attributes
    ----------
    gate_type:
        The :class:`GateType` of the gate.
    qubits:
        Tuple of logical qubit indices the gate acts on.  For CNOT the order
        is ``(control, target)``.
    angle:
        Rotation angle in radians for parameterised gates, ``None`` otherwise.
    label:
        Optional free-form annotation (used by workload generators to tag the
        algorithmic role of a gate, e.g. ``"qft-phase"``).
    """

    gate_type: GateType
    qubits: Tuple[int, ...]
    angle: Optional[float] = None
    label: Optional[str] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.qubits, tuple):
            object.__setattr__(self, "qubits", tuple(self.qubits))
        expected = self.gate_type.num_qubits
        if expected and len(self.qubits) != expected:
            raise ValueError(
                f"{self.gate_type.value} expects {expected} qubit(s), "
                f"got {self.qubits!r}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"duplicate qubit operands in {self.qubits!r}")
        if any(q < 0 for q in self.qubits):
            raise ValueError(f"negative qubit index in {self.qubits!r}")
        if self.gate_type in _PARAMETERISED and self.angle is None:
            raise ValueError(f"{self.gate_type.value} requires an angle")

    # -- convenience accessors -------------------------------------------------

    @property
    def name(self) -> str:
        return self.gate_type.value

    @property
    def is_two_qubit(self) -> bool:
        return self.gate_type.is_two_qubit

    @property
    def control(self) -> int:
        if self.gate_type not in (GateType.CNOT, GateType.CZ, GateType.RZZ):
            raise AttributeError(f"{self.name} has no control qubit")
        return self.qubits[0]

    @property
    def target(self) -> int:
        if not self.is_two_qubit:
            raise AttributeError(f"{self.name} has no target qubit")
        return self.qubits[1]

    @property
    def is_rotation(self) -> bool:
        """True for continuous-angle Rz rotations that need |m_theta> injection."""
        return self.gate_type is GateType.RZ and not is_clifford_angle(self.angle)

    @property
    def is_clifford(self) -> bool:
        """True when the gate can be executed without magic-state injection."""
        if self.gate_type is GateType.RZ:
            return is_clifford_angle(self.angle)
        return self.gate_type in (
            GateType.H, GateType.X, GateType.Z, GateType.S, GateType.SDG,
            GateType.CNOT, GateType.CZ, GateType.SWAP, GateType.Y,
            GateType.MEASURE, GateType.BARRIER,
        )

    @property
    def is_free(self) -> bool:
        """Gates that cost zero lattice-surgery cycles (Pauli-frame updates)."""
        if self.gate_type in (GateType.X, GateType.Z, GateType.Y,
                              GateType.BARRIER, GateType.MEASURE):
            return True
        if self.gate_type is GateType.RZ and is_clifford_angle(self.angle):
            # Clifford Rz rotations (S, Z, ...) are tracked in the Clifford
            # frame by the classical controller.
            return True
        return False

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        operands = " ".join(str(q) for q in self.qubits)
        if self.angle is not None:
            return f"{self.name} {operands} {self.angle:.6g}"
        return f"{self.name} {operands}"


_PARAMETERISED = frozenset(
    {GateType.RZ, GateType.RX, GateType.RY, GateType.RZZ}
)


# -- constructor helpers -------------------------------------------------------

def rz(qubit: int, theta: float, label: Optional[str] = None) -> Gate:
    """Create an ``Rz(theta)`` rotation on ``qubit``."""
    return Gate(GateType.RZ, (qubit,), angle=theta, label=label)


def h(qubit: int) -> Gate:
    """Create a Hadamard gate on ``qubit``."""
    return Gate(GateType.H, (qubit,))


def x(qubit: int) -> Gate:
    """Create a Pauli-X gate on ``qubit``."""
    return Gate(GateType.X, (qubit,))


def z(qubit: int) -> Gate:
    """Create a Pauli-Z gate on ``qubit``."""
    return Gate(GateType.Z, (qubit,))


def s(qubit: int) -> Gate:
    """Create an S gate (Clifford Rz(pi/2)) on ``qubit``."""
    return Gate(GateType.S, (qubit,))


def t(qubit: int) -> Gate:
    """Create a T gate (Rz(pi/4)) on ``qubit``."""
    return Gate(GateType.T, (qubit,))


def cnot(control: int, target: int) -> Gate:
    """Create a CNOT with the given control and target."""
    return Gate(GateType.CNOT, (control, target))


def measure(qubit: int) -> Gate:
    """Create a terminal measurement on ``qubit``."""
    return Gate(GateType.MEASURE, (qubit,))


def barrier() -> Gate:
    """Create a scheduling barrier (used only by workload generators)."""
    return Gate(GateType.BARRIER, ())
