"""Dependency DAG over circuit gates.

The realtime scheduler (RESCQ) does not operate on synchronous layers: a gate
becomes *schedulable* the moment the previous gate on each of its operand
qubits has completed (Section 3.1).  The :class:`GateDependencyGraph` captures
exactly that per-qubit program order and exposes the incremental "release"
interface the simulator drives.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Set, Tuple

from .circuit import Circuit
from .gates import GateType

__all__ = ["GateDependencyGraph"]


class GateDependencyGraph:
    """Per-qubit dependency graph of a circuit.

    Nodes are gate indices into the originating circuit.  There is an edge
    ``i -> j`` when gate ``j`` is the next gate after ``i`` on some shared
    qubit.  Zero-cost gates (Pauli frame updates, barriers, measurements) are
    excluded: they neither occupy hardware nor delay successors.
    """

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        self._successors: Dict[int, Set[int]] = defaultdict(set)
        self._predecessor_count: Dict[int, int] = {}
        self._nodes: List[int] = []
        self._critical_path_length: Dict[int, int] = {}

        last_on_qubit: Dict[int, int] = {}
        for index, gate in enumerate(circuit):
            if gate.is_free or gate.gate_type is GateType.BARRIER:
                continue
            self._nodes.append(index)
            preds: Set[int] = set()
            for qubit in gate.qubits:
                if qubit in last_on_qubit:
                    preds.add(last_on_qubit[qubit])
                last_on_qubit[qubit] = index
            self._predecessor_count[index] = len(preds)
            for pred in preds:
                self._successors[pred].add(index)

        self._compute_critical_paths()
        self._remaining_predecessors = dict(self._predecessor_count)
        self._completed: Set[int] = set()
        self._released: Set[int] = {
            node for node, count in self._remaining_predecessors.items()
            if count == 0
        }

    # -- static structure --------------------------------------------------------

    @property
    def nodes(self) -> Tuple[int, ...]:
        return tuple(self._nodes)

    def successors(self, index: int) -> Tuple[int, ...]:
        return tuple(sorted(self._successors.get(index, ())))

    def predecessor_count(self, index: int) -> int:
        return self._predecessor_count[index]

    def critical_path_length(self, index: int) -> int:
        """Longest chain of dependent gates starting at ``index`` (inclusive).

        Used as the scheduling priority: gates with larger remaining depth are
        more likely to be on the program's critical path.
        """
        return self._critical_path_length[index]

    def _compute_critical_paths(self) -> None:
        for index in reversed(self._nodes):
            best = 0
            for succ in self._successors.get(index, ()):
                best = max(best, self._critical_path_length[succ])
            self._critical_path_length[index] = best + 1

    def topological_order(self) -> List[int]:
        """Return the nodes in program order (which is already topological)."""
        return list(self._nodes)

    # -- incremental release interface -------------------------------------------

    @property
    def ready(self) -> Tuple[int, ...]:
        """Gate indices whose predecessors have all completed, not yet completed."""
        return tuple(sorted(self._released - self._completed))

    def ready_by_priority(self) -> List[int]:
        """Ready gates ordered by descending critical-path length, then index."""
        return sorted(self.ready,
                      key=lambda i: (-self._critical_path_length[i], i))

    def is_ready(self, index: int) -> bool:
        return index in self._released and index not in self._completed

    def is_completed(self, index: int) -> bool:
        return index in self._completed

    def complete(self, index: int) -> List[int]:
        """Mark gate ``index`` completed and return newly released successors."""
        if index not in self._predecessor_count:
            raise KeyError(f"gate {index} is not a node of the dependency graph")
        if index in self._completed:
            raise ValueError(f"gate {index} completed twice")
        if index not in self._released:
            raise ValueError(f"gate {index} completed before its predecessors")
        self._completed.add(index)
        newly_released: List[int] = []
        for succ in sorted(self._successors.get(index, ())):
            self._remaining_predecessors[succ] -= 1
            if self._remaining_predecessors[succ] == 0:
                self._released.add(succ)
                newly_released.append(succ)
        return newly_released

    @property
    def all_completed(self) -> bool:
        return len(self._completed) == len(self._nodes)

    @property
    def num_pending(self) -> int:
        return len(self._nodes) - len(self._completed)

    def pending_nodes(self, limit: Optional[int] = None) -> List[int]:
        """Not-yet-completed node indices in program order.

        ``limit`` caps the scan — diagnostics (e.g. the deadlock message)
        only want the first few stuck gates, not a full-circuit walk.
        """
        result: List[int] = []
        completed = self._completed
        for index in self._nodes:
            if index not in completed:
                result.append(index)
                if limit is not None and len(result) >= limit:
                    break
        return result

    def reset(self) -> None:
        """Restore the graph to its initial (nothing completed) state."""
        self._remaining_predecessors = dict(self._predecessor_count)
        self._completed = set()
        self._released = {
            node for node, count in self._remaining_predecessors.items()
            if count == 0
        }

    # -- convenience -----------------------------------------------------------

    def gates_on_qubit(self, qubit: int) -> List[int]:
        """Program-ordered node indices acting on ``qubit``."""
        result = []
        for index in self._nodes:
            if qubit in self.circuit[index].qubits:
                result.append(index)
        return result

    def __len__(self) -> int:
        return len(self._nodes)
