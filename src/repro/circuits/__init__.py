"""Gate/circuit intermediate representation for Clifford+Rz programs."""

from .gates import (
    Gate,
    GateType,
    barrier,
    cnot,
    doublings_until_clifford,
    h,
    is_clifford_angle,
    measure,
    rz,
    s,
    t,
    x,
    z,
)
from .circuit import Circuit, CircuitStats
from .dag import GateDependencyGraph
from .qasm import QasmImportError, import_qasm_file, parse_qasm
from .textio import (
    from_artifact_format,
    from_qasm,
    to_artifact_format,
    to_qasm,
)
from .transpile import BASIS, decompose_gate, transpile_to_clifford_rz

__all__ = [
    "Gate",
    "GateType",
    "Circuit",
    "CircuitStats",
    "GateDependencyGraph",
    "rz",
    "h",
    "x",
    "z",
    "s",
    "t",
    "cnot",
    "measure",
    "barrier",
    "is_clifford_angle",
    "doublings_until_clifford",
    "to_artifact_format",
    "from_artifact_format",
    "to_qasm",
    "from_qasm",
    "parse_qasm",
    "import_qasm_file",
    "QasmImportError",
    "transpile_to_clifford_rz",
    "decompose_gate",
    "BASIS",
]
