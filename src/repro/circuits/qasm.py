"""OpenQASM 2.0 importer: a lexer/parser front end for :class:`Circuit`.

The paper's Table 3 workloads originate as QASMBench / SupermarQ OpenQASM
files.  This module lets the reproduction consume such files directly instead
of relying on the hand-built generator substitutes: it implements a hand
written lexer and recursive-descent parser for the OpenQASM 2.0 grammar
(Cross et al., "Open Quantum Assembly Language", arXiv:1707.03429) covering

* ``qreg`` / ``creg`` declarations (multiple registers, offset-mapped onto a
  single flat qubit index space in declaration order);
* the builtin ``U(theta, phi, lambda)`` and ``CX`` gates plus the full
  ``qelib1.inc`` standard library (lowered to the reproduction's gate
  vocabulary, see :data:`_BUILTIN_GATES`);
* user-defined ``gate`` macros, expanded recursively at every call site with
  parameter and operand substitution;
* register broadcasting (``h q;`` applies ``h`` to every qubit of ``q``;
  mixed single-qubit/register operands broadcast QASM-style);
* constant angle expressions with ``pi``, the arithmetic operators
  ``+ - * / ^`` and the builtin functions ``sin cos tan exp ln sqrt``;
* ``measure`` (including register-to-register form) and ``barrier``.

Constructs the lattice-surgery execution model cannot represent are rejected
with an actionable :class:`QasmImportError` carrying the source line and
column: ``if`` (classical control), ``reset`` (mid-circuit reinitialisation)
and ``opaque`` gates, plus any ``include`` other than ``qelib1.inc``.

:func:`import_qasm_file` is the one-call entry point used by ``rescq run
path/to/file.qasm``: it parses the file, names the circuit after it and
lowers the result into the scheduler basis through
:func:`~repro.circuits.transpile.transpile_to_clifford_rz`.
"""

from __future__ import annotations

import difflib
import math
import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .circuit import Circuit
from .gates import Gate, GateType
from .transpile import transpile_to_clifford_rz

__all__ = ["QasmImportError", "parse_qasm", "import_qasm_file"]


class QasmImportError(ValueError):
    """A QASM program could not be imported.

    Carries the source position so CLI users can jump to the offending
    statement; ``str()`` renders ``<file>:<line>:<column>: <message>``.
    """

    def __init__(
        self,
        message: str,
        line: Optional[int] = None,
        column: Optional[int] = None,
        filename: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.line = line
        self.column = column
        self.filename = filename

    def __str__(self) -> str:
        prefix = self.filename or "<qasm>"
        if self.line is not None:
            position = f"{prefix}:{self.line}"
            if self.column is not None:
                position += f":{self.column}"
            return f"{position}: {self.message}"
        return f"{prefix}: {self.message}"


# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

_SYMBOLS = ("->", ";", ",", "(", ")", "[", "]", "{", "}", "+", "-", "*", "/", "^", "==")


@dataclass(frozen=True)
class _Token:
    kind: str  # "id", "int", "real", "string", or the symbol itself
    value: str
    line: int
    column: int


def _tokenize(text: str, filename: Optional[str]) -> List[_Token]:
    tokens: List[_Token] = []
    line, column = 1, 1
    index, length = 0, len(text)
    while index < length:
        char = text[index]
        if char == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if text.startswith("//", index):
            newline = text.find("\n", index)
            index = length if newline < 0 else newline
            continue
        if char == '"':
            end = text.find('"', index + 1)
            if end < 0:
                raise QasmImportError(
                    "unterminated string literal", line, column, filename
                )
            tokens.append(_Token("string", text[index + 1 : end], line, column))
            column += end + 1 - index
            index = end + 1
            continue
        if char.isdigit() or (char == "." and index + 1 < length
                              and text[index + 1].isdigit()):
            start = index
            seen_dot = seen_exp = False
            while index < length:
                ch = text[index]
                if ch.isdigit():
                    index += 1
                elif ch == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    index += 1
                elif ch in "eE" and not seen_exp and index > start:
                    seen_exp = True
                    index += 1
                    if index < length and text[index] in "+-":
                        index += 1
                else:
                    break
            lexeme = text[start:index]
            kind = "real" if (seen_dot or seen_exp) else "int"
            if seen_exp and (lexeme[-1] in "eE+-"):
                raise QasmImportError(
                    f"malformed number literal {lexeme!r}: exponent has no "
                    f"digits",
                    line,
                    column,
                    filename,
                )
            tokens.append(_Token(kind, lexeme, line, column))
            column += index - start
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (text[index].isalnum() or text[index] == "_"):
                index += 1
            tokens.append(_Token("id", text[start:index], line, column))
            column += index - start
            continue
        for symbol in _SYMBOLS:
            if text.startswith(symbol, index):
                tokens.append(_Token(symbol, symbol, line, column))
                index += len(symbol)
                column += len(symbol)
                break
        else:
            raise QasmImportError(
                f"unexpected character {char!r}", line, column, filename
            )
    return tokens


# ---------------------------------------------------------------------------
# Builtin gate lowering (qelib1.inc + the OpenQASM builtins U and CX)
# ---------------------------------------------------------------------------

# An emitter appends Gate objects; builders receive (emit, qubits, params).
_Emit = Callable[[Gate], None]


def _g(gate_type: GateType, *qubits: int, angle: Optional[float] = None) -> Gate:
    return Gate(gate_type, tuple(qubits), angle=angle)


def _emit_u3(emit: _Emit, qubit: int, theta: float, phi: float, lam: float) -> None:
    # U(theta, phi, lambda) = Rz(phi) Ry(theta) Rz(lambda) up to global phase.
    emit(_g(GateType.RZ, qubit, angle=lam))
    emit(_g(GateType.RY, qubit, angle=theta))
    emit(_g(GateType.RZ, qubit, angle=phi))


def _build_u(emit: _Emit, qubits: Sequence[int], params: Sequence[float]) -> None:
    _emit_u3(emit, qubits[0], params[0], params[1], params[2])


def _build_u2(emit: _Emit, qubits: Sequence[int], params: Sequence[float]) -> None:
    _emit_u3(emit, qubits[0], math.pi / 2, params[0], params[1])


def _build_u1(emit: _Emit, qubits: Sequence[int], params: Sequence[float]) -> None:
    emit(_g(GateType.RZ, qubits[0], angle=params[0]))


def _build_id(emit: _Emit, qubits: Sequence[int], params: Sequence[float]) -> None:
    pass  # the identity costs nothing in the execution model


def _build_cy(emit: _Emit, qubits: Sequence[int], params: Sequence[float]) -> None:
    control, target = qubits
    emit(_g(GateType.SDG, target))
    emit(_g(GateType.CNOT, control, target))
    emit(_g(GateType.S, target))


def _build_ch(emit: _Emit, qubits: Sequence[int], params: Sequence[float]) -> None:
    # qelib1.inc body, expressed in the reproduction's vocabulary.
    control, target = qubits
    emit(_g(GateType.H, target))
    emit(_g(GateType.SDG, target))
    emit(_g(GateType.CNOT, control, target))
    emit(_g(GateType.H, target))
    emit(_g(GateType.T, target))
    emit(_g(GateType.CNOT, control, target))
    emit(_g(GateType.T, target))
    emit(_g(GateType.H, target))
    emit(_g(GateType.S, target))
    emit(_g(GateType.X, target))
    emit(_g(GateType.S, control))


def _build_crz(emit: _Emit, qubits: Sequence[int], params: Sequence[float]) -> None:
    control, target = qubits
    half = params[0] / 2.0
    emit(_g(GateType.RZ, target, angle=half))
    emit(_g(GateType.CNOT, control, target))
    emit(_g(GateType.RZ, target, angle=-half))
    emit(_g(GateType.CNOT, control, target))


def _build_cu1(emit: _Emit, qubits: Sequence[int], params: Sequence[float]) -> None:
    control, target = qubits
    half = params[0] / 2.0
    emit(_g(GateType.RZ, control, angle=half))
    emit(_g(GateType.CNOT, control, target))
    emit(_g(GateType.RZ, target, angle=-half))
    emit(_g(GateType.CNOT, control, target))
    emit(_g(GateType.RZ, target, angle=half))


def _build_cu3(emit: _Emit, qubits: Sequence[int], params: Sequence[float]) -> None:
    control, target = qubits
    theta, phi, lam = params
    emit(_g(GateType.RZ, target, angle=(lam - phi) / 2.0))
    emit(_g(GateType.CNOT, control, target))
    _emit_u3(emit, target, -theta / 2.0, 0.0, -(phi + lam) / 2.0)
    emit(_g(GateType.CNOT, control, target))
    _emit_u3(emit, target, theta / 2.0, phi, 0.0)
    emit(_g(GateType.RZ, control, angle=(lam + phi) / 2.0))


def _build_cswap(emit: _Emit, qubits: Sequence[int], params: Sequence[float]) -> None:
    control, first, second = qubits
    emit(_g(GateType.CNOT, second, first))
    emit(_g(GateType.CCX, control, first, second))
    emit(_g(GateType.CNOT, second, first))


def _direct(gate_type: GateType, parameterised: bool = False):
    def build(emit: _Emit, qubits: Sequence[int], params: Sequence[float]) -> None:
        angle = params[0] if parameterised else None
        emit(Gate(gate_type, tuple(qubits), angle=angle))

    return build


#: name -> (num_params, num_qubits, builder).  ``p``/``cp`` are the OpenQASM 3
#: spellings of ``u1``/``cu1`` that newer exporters emit into 2.0 files.
_BUILTIN_GATES: Dict[str, Tuple[int, int, Callable]] = {
    "U": (3, 1, _build_u),
    "CX": (0, 2, _direct(GateType.CNOT)),
    "u3": (3, 1, _build_u),
    "u2": (2, 1, _build_u2),
    "u1": (1, 1, _build_u1),
    "u": (3, 1, _build_u),
    "p": (1, 1, _build_u1),
    "id": (0, 1, _build_id),
    "x": (0, 1, _direct(GateType.X)),
    "y": (0, 1, _direct(GateType.Y)),
    "z": (0, 1, _direct(GateType.Z)),
    "h": (0, 1, _direct(GateType.H)),
    "s": (0, 1, _direct(GateType.S)),
    "sdg": (0, 1, _direct(GateType.SDG)),
    "t": (0, 1, _direct(GateType.T)),
    "tdg": (0, 1, _direct(GateType.TDG)),
    "rx": (1, 1, _direct(GateType.RX, parameterised=True)),
    "ry": (1, 1, _direct(GateType.RY, parameterised=True)),
    "rz": (1, 1, _direct(GateType.RZ, parameterised=True)),
    "cx": (0, 2, _direct(GateType.CNOT)),
    "cz": (0, 2, _direct(GateType.CZ)),
    "cy": (0, 2, _build_cy),
    "ch": (0, 2, _build_ch),
    "swap": (0, 2, _direct(GateType.SWAP)),
    "crz": (1, 2, _build_crz),
    "cu1": (1, 2, _build_cu1),
    "cp": (1, 2, _build_cu1),
    "cu3": (3, 2, _build_cu3),
    "rzz": (1, 2, _direct(GateType.RZZ, parameterised=True)),
    "ccx": (0, 3, _direct(GateType.CCX)),
    "cswap": (0, 3, _build_cswap),
}

_ANGLE_FUNCTIONS: Dict[str, Callable[[float], float]] = {
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "exp": math.exp,
    "ln": math.log,
    "sqrt": math.sqrt,
}

#: Expansion depth bound for user-defined gate macros (cycles are an error in
#: OpenQASM 2.0, but a malformed file should fail loudly, not recurse forever).
_MAX_GATE_DEPTH = 64


@dataclass
class _GateDef:
    """A user-defined ``gate`` macro (name, formal params/qubits, body calls)."""

    name: str
    params: Tuple[str, ...]
    qubits: Tuple[str, ...]
    body: List["_Call"]
    line: int


@dataclass
class _Call:
    """One gate application inside a gate body (operands are formal names)."""

    name: str
    params: List[List[_Token]]  # unevaluated expression token runs
    operands: List[str]
    line: int
    column: int


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, text: str, name: str, filename: Optional[str]) -> None:
        self.filename = filename
        self.tokens = _tokenize(text, filename)
        self.position = 0
        self.circuit_name = name
        self.qreg_offsets: Dict[str, int] = {}
        self.qreg_sizes: Dict[str, int] = {}
        self.creg_sizes: Dict[str, int] = {}
        self.gate_defs: Dict[str, _GateDef] = {}
        self.gates: List[Gate] = []

    # -- token plumbing ------------------------------------------------------

    def _peek(self) -> Optional[_Token]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            last = self.tokens[-1] if self.tokens else None
            raise self._error(
                "unexpected end of input",
                last.line if last else 1,
                last.column if last else 1,
            )
        self.position += 1
        return token

    def _expect(self, kind: str, what: Optional[str] = None) -> _Token:
        token = self._next()
        if token.kind != kind:
            raise self._error(
                f"expected {what or kind!r} but found {token.value!r}",
                token.line,
                token.column,
            )
        return token

    def _error(self, message: str, line: int, column: int) -> QasmImportError:
        return QasmImportError(message, line, column, self.filename)

    # -- program -------------------------------------------------------------

    def parse(self) -> Circuit:
        token = self._peek()
        if token is not None and token.kind == "id" and token.value == "OPENQASM":
            self._next()
            version = self._next()
            if version.value not in ("2.0", "2"):
                raise self._error(
                    f"unsupported OpenQASM version {version.value!r}; "
                    f"only 2.0 is supported",
                    version.line,
                    version.column,
                )
            self._expect(";")
        while self._peek() is not None:
            self._statement()
        if not self.qreg_offsets:
            last = self.tokens[-1] if self.tokens else None
            raise QasmImportError(
                "program declares no qreg; add e.g. 'qreg q[4];'",
                last.line if last else 1,
                None,
                self.filename,
            )
        total = sum(self.qreg_sizes.values())
        return Circuit(total, name=self.circuit_name, gates=self.gates)

    def _statement(self) -> None:
        token = self._next()
        if token.kind != "id":
            raise self._error(
                f"expected a statement but found {token.value!r}",
                token.line,
                token.column,
            )
        keyword = token.value
        if keyword == "include":
            self._include(token)
        elif keyword in ("qreg", "creg"):
            self._register(keyword, token)
        elif keyword == "gate":
            self._gate_definition(token)
        elif keyword == "measure":
            self._measure(token)
        elif keyword == "barrier":
            self._barrier()
        elif keyword == "opaque":
            raise self._error(
                "opaque gates have no body to lower into lattice-surgery "
                "operations; define the gate with 'gate' instead",
                token.line,
                token.column,
            )
        elif keyword == "if":
            raise self._error(
                "classically controlled statements (if) are not supported: "
                "the scheduler model has no classical control flow",
                token.line,
                token.column,
            )
        elif keyword == "reset":
            raise self._error(
                "reset is not supported: the execution model has no "
                "mid-circuit reinitialisation; remove it or split the circuit",
                token.line,
                token.column,
            )
        else:
            self._gate_call(token)

    def _include(self, keyword: _Token) -> None:
        target = self._expect("string", "an include file name")
        self._expect(";")
        if target.value != "qelib1.inc":
            raise self._error(
                f"cannot include {target.value!r}: only the standard "
                f"'qelib1.inc' library is available to the importer",
                target.line,
                target.column,
            )

    def _register(self, kind: str, keyword: _Token) -> None:
        name_token = self._expect("id", "a register name")
        self._expect("[")
        size_token = self._expect("int", "a register size")
        self._expect("]")
        self._expect(";")
        size = int(size_token.value)
        if size <= 0:
            raise self._error(
                f"{kind} {name_token.value!r} must have a positive size",
                size_token.line,
                size_token.column,
            )
        name = name_token.value
        if name in self.qreg_sizes or name in self.creg_sizes:
            raise self._error(
                f"register {name!r} is declared twice",
                name_token.line,
                name_token.column,
            )
        if kind == "qreg":
            self.qreg_offsets[name] = sum(self.qreg_sizes.values())
            self.qreg_sizes[name] = size
        else:
            self.creg_sizes[name] = size

    # -- gate definitions ----------------------------------------------------

    def _gate_definition(self, keyword: _Token) -> None:
        name_token = self._expect("id", "a gate name")
        name = name_token.value
        params: List[str] = []
        if self._peek() is not None and self._peek().kind == "(":
            self._next()
            if self._peek() is not None and self._peek().kind != ")":
                params.append(self._expect("id", "a parameter name").value)
                while self._peek() is not None and self._peek().kind == ",":
                    self._next()
                    params.append(self._expect("id", "a parameter name").value)
            self._expect(")")
        qubits = [self._expect("id", "a qubit argument").value]
        while self._peek() is not None and self._peek().kind == ",":
            self._next()
            qubits.append(self._expect("id", "a qubit argument").value)
        self._expect("{")
        body: List[_Call] = []
        while True:
            token = self._peek()
            if token is None:
                raise self._error(
                    f"gate {name!r} body is missing its closing '}}'",
                    name_token.line,
                    name_token.column,
                )
            if token.kind == "}":
                self._next()
                break
            body.append(self._body_call(set(params), set(qubits)))
        if name in self.gate_defs:
            raise self._error(
                f"gate {name!r} is defined twice", name_token.line, name_token.column
            )
        self.gate_defs[name] = _GateDef(
            name=name,
            params=tuple(params),
            qubits=tuple(qubits),
            body=body,
            line=name_token.line,
        )

    def _body_call(self, params: set, qubits: set) -> _Call:
        token = self._expect("id", "a gate call")
        if token.value == "barrier":
            # Barriers inside gate bodies order the body internally; the
            # execution model only honours top-level barriers, so they are
            # recorded and dropped at expansion time.
            while self._next().kind != ";":
                pass
            return _Call(name="barrier", params=[], operands=[], line=token.line,
                         column=token.column)
        call = _Call(name=token.value, params=[], operands=[], line=token.line,
                     column=token.column)
        if self._peek() is not None and self._peek().kind == "(":
            self._next()
            call.params = self._expression_runs()
        operand = self._expect("id", "a qubit argument")
        self._check_body_operand(operand, qubits)
        call.operands.append(operand.value)
        while self._peek() is not None and self._peek().kind == ",":
            self._next()
            operand = self._expect("id", "a qubit argument")
            self._check_body_operand(operand, qubits)
            call.operands.append(operand.value)
        self._expect(";")
        return call

    def _check_body_operand(self, token: _Token, qubits: set) -> None:
        if token.value not in qubits:
            raise self._error(
                f"gate body references unknown qubit argument {token.value!r}",
                token.line,
                token.column,
            )

    def _expression_runs(self) -> List[List[_Token]]:
        """Collect the comma-separated expression token runs up to ')'."""
        runs: List[List[_Token]] = [[]]
        depth = 0
        while True:
            token = self._next()
            if token.kind == "(":
                depth += 1
            elif token.kind == ")":
                if depth == 0:
                    break
                depth -= 1
            elif token.kind == "," and depth == 0:
                runs.append([])
                continue
            runs[-1].append(token)
        if runs == [[]]:
            return []
        return runs

    # -- gate application ----------------------------------------------------

    def _gate_call(self, name_token: _Token) -> None:
        name = name_token.value
        params: List[List[_Token]] = []
        if self._peek() is not None and self._peek().kind == "(":
            self._next()
            params = self._expression_runs()
        operands = [self._operand()]
        while self._peek() is not None and self._peek().kind == ",":
            self._next()
            operands.append(self._operand())
        self._expect(";")
        values = [self._evaluate(run, {}, name_token) for run in params]
        resolved = [self._resolve_operand(register, index, token)
                    for register, index, token in operands]
        for qubit_tuple in self._broadcast(resolved, name_token):
            self._apply(name, values, qubit_tuple, name_token, depth=0)

    def _operand(self) -> Tuple[str, Optional[int], _Token]:
        name_token = self._expect("id", "a register operand")
        index: Optional[int] = None
        if self._peek() is not None and self._peek().kind == "[":
            self._next()
            index_token = self._expect("int", "a qubit index")
            index = int(index_token.value)
            self._expect("]")
        return name_token.value, index, name_token

    def _resolve_operand(
        self, register: str, index: Optional[int], token: _Token
    ) -> List[int]:
        """Map an operand to the flat qubit indices it denotes."""
        if register not in self.qreg_sizes:
            known = sorted(self.qreg_sizes)
            raise self._error(
                f"unknown qreg {register!r}; declared qregs: {known or 'none'}",
                token.line,
                token.column,
            )
        offset = self.qreg_offsets[register]
        size = self.qreg_sizes[register]
        if index is None:
            return [offset + i for i in range(size)]
        if not 0 <= index < size:
            raise self._error(
                f"index {index} is out of range for qreg "
                f"{register}[{size}]",
                token.line,
                token.column,
            )
        return [offset + index]

    def _broadcast(
        self, resolved: List[List[int]], token: _Token
    ) -> List[Tuple[int, ...]]:
        """Expand register operands QASM-style (all registers equal length)."""
        lengths = {len(group) for group in resolved if len(group) > 1}
        if len(lengths) > 1:
            raise self._error(
                f"cannot broadcast over registers of different sizes "
                f"{sorted(lengths)}",
                token.line,
                token.column,
            )
        count = lengths.pop() if lengths else 1
        applications = []
        for position in range(count):
            applications.append(
                tuple(group[position] if len(group) > 1 else group[0]
                      for group in resolved)
            )
        return applications

    def _apply(
        self,
        name: str,
        params: Sequence[float],
        qubits: Tuple[int, ...],
        token: _Token,
        depth: int,
    ) -> None:
        if depth > _MAX_GATE_DEPTH:
            raise self._error(
                f"gate {name!r} expands deeper than {_MAX_GATE_DEPTH} levels; "
                f"gate definitions must not be recursive",
                token.line,
                token.column,
            )
        definition = self.gate_defs.get(name)
        if definition is not None:
            self._apply_definition(definition, params, qubits, token, depth)
            return
        builtin = _BUILTIN_GATES.get(name)
        if builtin is None:
            candidates = sorted(set(_BUILTIN_GATES) | set(self.gate_defs))
            suggestions = difflib.get_close_matches(name, candidates, n=3)
            hint = f"; did you mean {suggestions}?" if suggestions else ""
            raise self._error(
                f"unknown gate {name!r}{hint} (qelib1.inc gates and 'gate' "
                f"definitions from this file are available)",
                token.line,
                token.column,
            )
        num_params, num_qubits, builder = builtin
        if len(params) != num_params:
            raise self._error(
                f"gate {name!r} takes {num_params} parameter(s), "
                f"got {len(params)}",
                token.line,
                token.column,
            )
        if len(qubits) != num_qubits:
            raise self._error(
                f"gate {name!r} acts on {num_qubits} qubit(s), "
                f"got {len(qubits)}",
                token.line,
                token.column,
            )
        if len(set(qubits)) != len(qubits):
            raise self._error(
                f"gate {name!r} applied to duplicate qubit operands {qubits}",
                token.line,
                token.column,
            )
        builder(self.gates.append, qubits, params)

    def _apply_definition(
        self,
        definition: _GateDef,
        params: Sequence[float],
        qubits: Tuple[int, ...],
        token: _Token,
        depth: int,
    ) -> None:
        if len(params) != len(definition.params):
            raise self._error(
                f"gate {definition.name!r} takes {len(definition.params)} "
                f"parameter(s), got {len(params)}",
                token.line,
                token.column,
            )
        if len(qubits) != len(definition.qubits):
            raise self._error(
                f"gate {definition.name!r} acts on {len(definition.qubits)} "
                f"qubit(s), got {len(qubits)}",
                token.line,
                token.column,
            )
        param_env = dict(zip(definition.params, params))
        qubit_env = dict(zip(definition.qubits, qubits))
        for call in definition.body:
            if call.name == "barrier":
                continue
            values = [self._evaluate(run, param_env, token) for run in call.params]
            operand_qubits = tuple(qubit_env[operand] for operand in call.operands)
            self._apply(call.name, values, operand_qubits, token, depth + 1)

    def _measure(self, keyword: _Token) -> None:
        source_register, source_index, source_token = self._operand()
        self._expect("->")
        target_register, target_index, target_token = self._operand()
        self._expect(";")
        if target_register not in self.creg_sizes:
            raise self._error(
                f"measure target {target_register!r} is not a declared creg",
                target_token.line,
                target_token.column,
            )
        qubits = self._resolve_operand(source_register, source_index, source_token)
        target_size = self.creg_sizes[target_register]
        if (source_index is None) != (target_index is None):
            raise self._error(
                "measure operands must both be single bits or both be whole "
                "registers (e.g. 'measure q[0] -> c[0];' or 'measure q -> c;')",
                target_token.line,
                target_token.column,
            )
        if target_index is not None and not 0 <= target_index < target_size:
            raise self._error(
                f"index {target_index} is out of range for creg "
                f"{target_register}[{target_size}]",
                target_token.line,
                target_token.column,
            )
        if target_index is None and target_size < len(qubits):
            raise self._error(
                f"creg {target_register!r} is smaller than qreg "
                f"{source_register!r}",
                target_token.line,
                target_token.column,
            )
        for qubit in qubits:
            self.gates.append(Gate(GateType.MEASURE, (qubit,)))

    def _barrier(self) -> None:
        # Operand list is parsed but the execution model treats every barrier
        # as a global synchronisation point (Circuit.layers semantics).
        while True:
            token = self._next()
            if token.kind == ";":
                break
        self.gates.append(Gate(GateType.BARRIER, ()))

    # -- angle expressions ---------------------------------------------------

    def _evaluate(
        self, run: List[_Token], env: Dict[str, float], context: _Token
    ) -> float:
        if not run:
            raise self._error(
                "empty parameter expression", context.line, context.column
            )
        evaluator = _ExpressionEvaluator(run, env, self.filename)
        value = evaluator.parse()
        if not math.isfinite(value):
            raise self._error(
                f"parameter expression evaluates to {value!r}; angles must "
                f"be finite",
                run[0].line,
                run[0].column,
            )
        return value


class _ExpressionEvaluator:
    """Recursive-descent evaluator for constant QASM angle expressions."""

    def __init__(
        self, tokens: List[_Token], env: Dict[str, float], filename: Optional[str]
    ) -> None:
        self.tokens = tokens
        self.position = 0
        self.env = env
        self.filename = filename

    def parse(self) -> float:
        value = self._expression()
        if self.position != len(self.tokens):
            token = self.tokens[self.position]
            raise QasmImportError(
                f"unexpected {token.value!r} in angle expression",
                token.line,
                token.column,
                self.filename,
            )
        return value

    def _peek(self) -> Optional[_Token]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            last = self.tokens[-1]
            raise QasmImportError(
                "angle expression ends unexpectedly",
                last.line,
                last.column,
                self.filename,
            )
        self.position += 1
        return token

    def _expression(self) -> float:
        value = self._term()
        while self._peek() is not None and self._peek().kind in ("+", "-"):
            operator = self._next().kind
            right = self._term()
            value = value + right if operator == "+" else value - right
        return value

    def _term(self) -> float:
        value = self._factor()
        while self._peek() is not None and self._peek().kind in ("*", "/"):
            operator = self._next()
            right = self._factor()
            if operator.kind == "*":
                value *= right
            else:
                if right == 0:
                    raise QasmImportError(
                        "division by zero in angle expression",
                        operator.line,
                        operator.column,
                        self.filename,
                    )
                value /= right
        return value

    def _factor(self) -> float:
        token = self._peek()
        if token is not None and token.kind in ("+", "-"):
            self._next()
            value = self._factor()
            return value if token.kind == "+" else -value
        value = self._atom()
        if self._peek() is not None and self._peek().kind == "^":
            operator = self._next()
            base = value
            exponent = self._factor()  # right-associative
            try:
                value = base**exponent
            except (ZeroDivisionError, OverflowError) as exc:
                raise QasmImportError(
                    f"{base!r} ^ {exponent!r} is undefined: {exc}",
                    operator.line,
                    operator.column,
                    self.filename,
                ) from None
            if isinstance(value, complex):
                # Negative base with fractional exponent; a rotation angle
                # must be real.
                raise QasmImportError(
                    f"{base!r} ^ {exponent!r} is not a real number",
                    operator.line,
                    operator.column,
                    self.filename,
                )
        return value

    def _atom(self) -> float:
        token = self._next()
        if token.kind in ("int", "real"):
            return float(token.value)
        if token.kind == "(":
            value = self._expression()
            closing = self._next()
            if closing.kind != ")":
                raise QasmImportError(
                    f"expected ')' but found {closing.value!r}",
                    closing.line,
                    closing.column,
                    self.filename,
                )
            return value
        if token.kind == "id":
            if token.value == "pi":
                return math.pi
            if token.value in self.env:
                return self.env[token.value]
            function = _ANGLE_FUNCTIONS.get(token.value)
            if function is not None:
                opening = self._next()
                if opening.kind != "(":
                    raise QasmImportError(
                        f"function {token.value!r} requires parentheses",
                        token.line,
                        token.column,
                        self.filename,
                    )
                argument = self._expression()
                closing = self._next()
                if closing.kind != ")":
                    raise QasmImportError(
                        f"expected ')' but found {closing.value!r}",
                        closing.line,
                        closing.column,
                        self.filename,
                    )
                try:
                    return function(argument)
                except ValueError as exc:
                    raise QasmImportError(
                        f"{token.value}({argument}) is undefined: {exc}",
                        token.line,
                        token.column,
                        self.filename,
                    ) from None
            known = sorted(set(self.env) | set(_ANGLE_FUNCTIONS) | {"pi"})
            raise QasmImportError(
                f"unknown identifier {token.value!r} in angle expression; "
                f"known names: {known}",
                token.line,
                token.column,
                self.filename,
            )
        raise QasmImportError(
            f"unexpected {token.value!r} in angle expression",
            token.line,
            token.column,
            self.filename,
        )


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def parse_qasm(
    text: str, name: str = "circuit", filename: Optional[str] = None
) -> Circuit:
    """Parse OpenQASM 2.0 ``text`` into a :class:`Circuit`.

    The returned circuit uses the importer's full gate vocabulary (it may
    contain CZ, SWAP, RY, CCX, ...); lower it with
    :func:`~repro.circuits.transpile.transpile_to_clifford_rz` before handing
    it to a scheduler, or call :func:`import_qasm_file` which does both.

    Raises :class:`QasmImportError` (a :class:`ValueError`) with source
    line/column on any unsupported or malformed construct.
    """
    return _Parser(text, name, filename).parse()


def import_qasm_file(path: str, transpile: bool = True) -> Circuit:
    """Read, parse and (by default) lower one ``.qasm`` file.

    The circuit is named after the file's base name, so results and cache
    fingerprints key on the file identity plus its full gate content.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise QasmImportError(
            f"cannot read QASM file: {exc}", filename=str(path)
        ) from None
    stem = os.path.splitext(os.path.basename(str(path)))[0] or "circuit"
    circuit = parse_qasm(text, name=stem, filename=str(path))
    if transpile:
        lowered = transpile_to_clifford_rz(circuit)
        lowered.name = circuit.name
        return lowered
    return circuit
