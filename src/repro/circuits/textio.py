"""Text serialisation of circuits.

Two formats are supported:

* the **artifact format** from the paper's appendix B.7 — first line is the
  number of gates, then one gate per line as
  ``<gate name> <qubit(s)> <rotation angle for Rz gates>``;
* **OpenQASM 2.0** — emission lives here (:func:`to_qasm`); parsing is
  delegated to the full lexer/parser in :mod:`repro.circuits.qasm`, so
  :func:`from_qasm` accepts everything the importer does (gate macros,
  register broadcasting, qelib1 gates, angle expressions, ...).
"""

from __future__ import annotations

from typing import List, Optional

from .circuit import Circuit
from .gates import Gate, GateType

__all__ = [
    "to_artifact_format",
    "from_artifact_format",
    "to_qasm",
    "from_qasm",
]


# ---------------------------------------------------------------------------
# Artifact format (appendix B.7)
# ---------------------------------------------------------------------------

def to_artifact_format(circuit: Circuit, include_barriers: bool = False) -> str:
    """Serialise ``circuit`` in the simulator input format from appendix B.7.

    The appendix format omits barriers (they cost no lattice-surgery cycles);
    pass ``include_barriers=True`` for a lossless gate listing — the form the
    execution engine hashes into job fingerprints, where a barrier *does*
    change scheduling behaviour and must change the cache key.
    """
    lines: List[str] = []
    emitted = 0
    for gate in circuit:
        if gate.gate_type is GateType.BARRIER and not include_barriers:
            continue
        qubits = " ".join(str(q) for q in gate.qubits)
        if gate.gate_type is GateType.RZ:
            lines.append(f"rz {qubits} {gate.angle!r}")
        else:
            lines.append(f"{gate.gate_type.value} {qubits}")
        emitted += 1
    return "\n".join([str(emitted)] + lines) + "\n"


def from_artifact_format(text: str, name: str = "circuit",
                         num_qubits: Optional[int] = None) -> Circuit:
    """Parse the appendix B.7 format back into a :class:`Circuit`."""
    lines = [line.strip() for line in text.splitlines() if line.strip()]
    if not lines:
        raise ValueError("empty circuit text")
    try:
        declared = int(lines[0])
    except ValueError as exc:
        raise ValueError("first line must be the total number of gates") from exc
    body = lines[1:]
    if len(body) != declared:
        raise ValueError(
            f"declared {declared} gates but found {len(body)} gate lines")

    gates: List[Gate] = []
    max_qubit = -1
    for line in body:
        parts = line.split()
        gate_name = parts[0].lower()
        try:
            gate_type = GateType(gate_name)
        except ValueError as exc:
            raise ValueError(f"unknown gate {gate_name!r}") from exc
        operand_count = gate_type.num_qubits
        qubits = tuple(int(tok) for tok in parts[1:1 + operand_count])
        angle = None
        if gate_type is GateType.RZ:
            if len(parts) < operand_count + 2:
                raise ValueError(f"rz line missing angle: {line!r}")
            angle = float(parts[operand_count + 1])
        gates.append(Gate(gate_type, qubits, angle=angle))
        if qubits:
            max_qubit = max(max_qubit, max(qubits))

    size = num_qubits if num_qubits is not None else max_qubit + 1
    return Circuit(max(size, 1), name=name, gates=gates)


# ---------------------------------------------------------------------------
# OpenQASM 2.0
# ---------------------------------------------------------------------------

_QASM_HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'


def to_qasm(circuit: Circuit) -> str:
    """Serialise ``circuit`` as OpenQASM 2.0 text."""
    lines = [_QASM_HEADER.rstrip("\n"), f"qreg q[{circuit.num_qubits}];",
             f"creg c[{circuit.num_qubits}];"]
    for gate in circuit:
        if gate.gate_type is GateType.BARRIER:
            lines.append("barrier q;")
            continue
        operands = ",".join(f"q[{q}]" for q in gate.qubits)
        if gate.gate_type is GateType.MEASURE:
            qubit = gate.qubits[0]
            lines.append(f"measure q[{qubit}] -> c[{qubit}];")
        elif gate.angle is not None:
            lines.append(f"{gate.gate_type.value}({gate.angle!r}) {operands};")
        else:
            lines.append(f"{gate.gate_type.value} {operands};")
    return "\n".join(lines) + "\n"


def from_qasm(text: str, name: str = "circuit") -> Circuit:
    """Parse OpenQASM 2.0 ``text`` (full importer; inverse of :func:`to_qasm`).

    Delegates to :func:`repro.circuits.qasm.parse_qasm`, so besides the
    output of :func:`to_qasm` this accepts gate macros, register
    broadcasting, the qelib1 standard gates and constant angle expressions.
    The result keeps the importer's extended vocabulary; lower it with
    :func:`~repro.circuits.transpile.transpile_to_clifford_rz` before
    scheduling.
    """
    from .qasm import parse_qasm
    return parse_qasm(text, name=name)
