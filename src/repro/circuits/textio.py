"""Text serialisation of circuits.

Two formats are supported:

* the **artifact format** from the paper's appendix B.7 — first line is the
  number of gates, then one gate per line as
  ``<gate name> <qubit(s)> <rotation angle for Rz gates>``;
* a pragmatic subset of **OpenQASM 2.0** sufficient to round-trip the circuits
  produced by the workload generators (``qreg``, ``rz``, ``h``, ``x``, ``z``,
  ``s``, ``t``, ``cx``, ``measure``, ``barrier``).
"""

from __future__ import annotations

import math
import re
from typing import List, Optional

from .circuit import Circuit
from .gates import Gate, GateType

__all__ = [
    "to_artifact_format",
    "from_artifact_format",
    "to_qasm",
    "from_qasm",
]


# ---------------------------------------------------------------------------
# Artifact format (appendix B.7)
# ---------------------------------------------------------------------------

def to_artifact_format(circuit: Circuit) -> str:
    """Serialise ``circuit`` in the simulator input format from appendix B.7."""
    lines: List[str] = []
    emitted = 0
    for gate in circuit:
        if gate.gate_type is GateType.BARRIER:
            continue
        qubits = " ".join(str(q) for q in gate.qubits)
        if gate.gate_type is GateType.RZ:
            lines.append(f"rz {qubits} {gate.angle!r}")
        else:
            lines.append(f"{gate.gate_type.value} {qubits}")
        emitted += 1
    return "\n".join([str(emitted)] + lines) + "\n"


def from_artifact_format(text: str, name: str = "circuit",
                         num_qubits: Optional[int] = None) -> Circuit:
    """Parse the appendix B.7 format back into a :class:`Circuit`."""
    lines = [line.strip() for line in text.splitlines() if line.strip()]
    if not lines:
        raise ValueError("empty circuit text")
    try:
        declared = int(lines[0])
    except ValueError as exc:
        raise ValueError("first line must be the total number of gates") from exc
    body = lines[1:]
    if len(body) != declared:
        raise ValueError(
            f"declared {declared} gates but found {len(body)} gate lines")

    gates: List[Gate] = []
    max_qubit = -1
    for line in body:
        parts = line.split()
        gate_name = parts[0].lower()
        try:
            gate_type = GateType(gate_name)
        except ValueError as exc:
            raise ValueError(f"unknown gate {gate_name!r}") from exc
        operand_count = gate_type.num_qubits
        qubits = tuple(int(tok) for tok in parts[1:1 + operand_count])
        angle = None
        if gate_type is GateType.RZ:
            if len(parts) < operand_count + 2:
                raise ValueError(f"rz line missing angle: {line!r}")
            angle = float(parts[operand_count + 1])
        gates.append(Gate(gate_type, qubits, angle=angle))
        if qubits:
            max_qubit = max(max_qubit, max(qubits))

    size = num_qubits if num_qubits is not None else max_qubit + 1
    return Circuit(max(size, 1), name=name, gates=gates)


# ---------------------------------------------------------------------------
# OpenQASM 2.0 subset
# ---------------------------------------------------------------------------

_QASM_HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'
_QREG_RE = re.compile(r"qreg\s+(\w+)\s*\[\s*(\d+)\s*\]")
_GATE_RE = re.compile(
    r"(?P<name>[a-z]+)\s*(\((?P<angle>[^)]*)\))?\s+(?P<operands>[^;]+);")
_OPERAND_RE = re.compile(r"(\w+)\s*\[\s*(\d+)\s*\]")

_QASM_NAMES = {
    "rz": GateType.RZ, "h": GateType.H, "x": GateType.X, "z": GateType.Z,
    "s": GateType.S, "sdg": GateType.SDG, "t": GateType.T, "tdg": GateType.TDG,
    "y": GateType.Y, "cx": GateType.CNOT, "cz": GateType.CZ,
    "swap": GateType.SWAP, "rx": GateType.RX, "ry": GateType.RY,
    "rzz": GateType.RZZ, "measure": GateType.MEASURE,
}


def to_qasm(circuit: Circuit) -> str:
    """Serialise ``circuit`` as OpenQASM 2.0 text."""
    lines = [_QASM_HEADER.rstrip("\n"), f"qreg q[{circuit.num_qubits}];",
             f"creg c[{circuit.num_qubits}];"]
    for gate in circuit:
        if gate.gate_type is GateType.BARRIER:
            lines.append("barrier q;")
            continue
        operands = ",".join(f"q[{q}]" for q in gate.qubits)
        if gate.gate_type is GateType.MEASURE:
            qubit = gate.qubits[0]
            lines.append(f"measure q[{qubit}] -> c[{qubit}];")
        elif gate.angle is not None:
            lines.append(f"{gate.gate_type.value}({gate.angle!r}) {operands};")
        else:
            lines.append(f"{gate.gate_type.value} {operands};")
    return "\n".join(lines) + "\n"


def _parse_angle(expression: str) -> float:
    """Evaluate the restricted arithmetic allowed in QASM angle expressions."""
    allowed = {"pi": math.pi}
    cleaned = expression.strip()
    if not re.fullmatch(r"[0-9eE\.\+\-\*/\(\)\s]*|.*pi.*", cleaned):
        raise ValueError(f"unsupported angle expression {expression!r}")
    if re.search(r"[^0-9eE\.\+\-\*/\(\)\spi]", cleaned):
        raise ValueError(f"unsupported angle expression {expression!r}")
    return float(eval(cleaned, {"__builtins__": {}}, allowed))  # noqa: S307


def from_qasm(text: str, name: str = "circuit") -> Circuit:
    """Parse the OpenQASM 2.0 subset emitted by :func:`to_qasm`."""
    num_qubits = None
    for match in _QREG_RE.finditer(text):
        size = int(match.group(2))
        num_qubits = size if num_qubits is None else num_qubits + size
    if num_qubits is None:
        raise ValueError("QASM text does not declare a qreg")

    circuit = Circuit(num_qubits, name=name)
    for raw_line in text.splitlines():
        line = raw_line.split("//")[0].strip()
        if (not line or line.startswith("OPENQASM") or line.startswith("include")
                or line.startswith("qreg") or line.startswith("creg")):
            continue
        if line.startswith("barrier"):
            circuit.append(Gate(GateType.BARRIER, ()))
            continue
        if line.startswith("measure"):
            operands = _OPERAND_RE.findall(line)
            if operands:
                circuit.append(Gate(GateType.MEASURE, (int(operands[0][1]),)))
            continue
        match = _GATE_RE.match(line)
        if not match:
            raise ValueError(f"cannot parse QASM line {raw_line!r}")
        gate_name = match.group("name")
        if gate_name not in _QASM_NAMES:
            raise ValueError(f"unsupported QASM gate {gate_name!r}")
        gate_type = _QASM_NAMES[gate_name]
        qubits = tuple(int(idx) for _, idx in _OPERAND_RE.findall(
            match.group("operands")))
        angle = None
        if match.group("angle") is not None:
            angle = _parse_angle(match.group("angle"))
        circuit.append(Gate(gate_type, qubits, angle=angle))
    return circuit
