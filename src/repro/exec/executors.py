"""Executors: strategies for running a list of :class:`SimJob` records.

Both executors are order-preserving — ``run_jobs(jobs)[i]`` is always the
result of ``jobs[i]`` — and each job seeds its own RNG, so serial and
parallel execution of the same job list produce identical results.
"""

from __future__ import annotations

import abc
import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence

from .jobs import SimJob
from ..sim.results import SimulationResult

__all__ = ["Executor", "SerialExecutor", "ParallelExecutor"]


def _run_job(job: SimJob) -> SimulationResult:
    """Module-level worker entry point (must be picklable by name)."""
    return job.run()


class Executor(abc.ABC):
    """Something that can turn a job list into a result list, in order."""

    @abc.abstractmethod
    def run_jobs(self, jobs: Sequence[SimJob]) -> List[SimulationResult]:
        """Execute every job and return results in job order."""

    def describe(self) -> str:
        return type(self).__name__


class SerialExecutor(Executor):
    """Run jobs one after another in the current process.

    The deterministic reference implementation: no pickling, no worker
    processes, results materialise in submission order by construction.
    """

    def run_jobs(self, jobs: Sequence[SimJob]) -> List[SimulationResult]:
        return [_run_job(job) for job in jobs]

    def describe(self) -> str:
        return "serial"


class ParallelExecutor(Executor):
    """Fan jobs out over a ``ProcessPoolExecutor``.

    Parameters
    ----------
    max_workers:
        Worker process count; defaults to ``os.cpu_count()``.
    chunksize:
        Jobs handed to a worker per round-trip.  Defaults to an even split of
        the job list over ``4 * max_workers`` slices, which amortises IPC for
        large sweeps while keeping the pool load-balanced.

    Falls back to in-process serial execution (with a warning) when the
    platform cannot spawn worker processes — sandboxes without ``fork``, for
    example — so callers never have to special-case the environment.
    """

    def __init__(self, max_workers: Optional[int] = None,
                 chunksize: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers or os.cpu_count() or 1
        if chunksize is not None and chunksize < 1:
            raise ValueError("chunksize must be >= 1")
        self.chunksize = chunksize

    def _chunksize_for(self, num_jobs: int) -> int:
        if self.chunksize is not None:
            return self.chunksize
        return max(1, num_jobs // (self.max_workers * 4))

    def run_jobs(self, jobs: Sequence[SimJob]) -> List[SimulationResult]:
        jobs = list(jobs)
        if not jobs:
            return []
        if self.max_workers == 1 or len(jobs) == 1:
            return [_run_job(job) for job in jobs]
        workers = min(self.max_workers, len(jobs))
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                # Executor.map preserves input order.
                return list(pool.map(_run_job, jobs,
                                     chunksize=self._chunksize_for(len(jobs))))
        except (OSError, PermissionError) as exc:
            warnings.warn(
                f"ParallelExecutor could not start worker processes ({exc}); "
                "falling back to serial execution", RuntimeWarning,
                stacklevel=2)
            return [_run_job(job) for job in jobs]

    def describe(self) -> str:
        return f"parallel[{self.max_workers}]"
