"""The execution engine: cache lookup + executor dispatch for job plans.

:class:`ExecutionEngine` is the single object the rest of the codebase deals
with.  Callers plan a list of :class:`~repro.exec.jobs.SimJob` records and
hand it to :meth:`ExecutionEngine.run`; the engine resolves each job from the
cache when possible, fans the misses out through its executor, stores fresh
results back, and returns results in job order — so callers can slice the
result list positionally against their plan regardless of how (or whether)
the work was parallelised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from .cache import CacheBackend
from .executors import Executor, SerialExecutor
from .jobs import SimJob
from ..sim.results import SimulationResult

__all__ = ["ExecutionEngine", "EngineStats"]


@dataclass
class EngineStats:
    """Cumulative accounting over an engine's lifetime."""

    jobs: int = 0
    executed: int = 0
    cache_hits: int = 0

    def describe(self) -> str:
        return (f"jobs={self.jobs} executed={self.executed} "
                f"cache_hits={self.cache_hits}")


class ExecutionEngine:
    """Runs job plans through an executor with optional result caching.

    Parameters
    ----------
    executor:
        How cache misses are executed; defaults to :class:`SerialExecutor`.
    cache:
        Optional :class:`~repro.exec.cache.CacheBackend` (directory or
        SQLite).  When set, every job is first looked up by fingerprint and
        every fresh result is stored back.
    """

    def __init__(self, executor: Optional[Executor] = None,
                 cache: Optional[CacheBackend] = None) -> None:
        self.executor = executor or SerialExecutor()
        self.cache = cache
        self.stats = EngineStats()

    def run(self, jobs: Sequence[SimJob]) -> List[SimulationResult]:
        """Execute ``jobs`` and return their results in job order."""
        jobs = list(jobs)
        self.stats.jobs += len(jobs)
        if not jobs:
            return []

        results: List[Optional[SimulationResult]] = [None] * len(jobs)
        pending: List[int] = []
        if self.cache is not None:
            for index, job in enumerate(jobs):
                cached = self.cache.get(job.fingerprint())
                if cached is not None:
                    results[index] = cached
                else:
                    pending.append(index)
            self.stats.cache_hits += len(jobs) - len(pending)
        else:
            pending = list(range(len(jobs)))

        if pending:
            fresh = self.executor.run_jobs([jobs[index] for index in pending])
            self.stats.executed += len(pending)
            for index, result in zip(pending, fresh):
                results[index] = result
                if self.cache is not None:
                    self.cache.put(jobs[index].fingerprint(), result)

        return results  # type: ignore[return-value]

    def run_one(self, job: SimJob) -> SimulationResult:
        """Convenience wrapper for a single job."""
        return self.run([job])[0]

    def describe(self) -> str:
        text = f"[exec] {self.stats.describe()}"
        if self.cache is not None:
            text += f" {self.cache.stats.describe()}"
        return text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cache = "on" if self.cache is not None else "off"
        return (f"ExecutionEngine(executor={self.executor.describe()}, "
                f"cache={cache})")
