"""Simulation jobs: the unit of work the execution engine schedules.

A :class:`SimJob` freezes everything one scheduler run depends on — the
circuit, the scheduler instance, the simulation configuration, the layout and
the seed — so the run can be shipped to a worker process or looked up in a
result cache.  The cache key is :meth:`SimJob.fingerprint`, a SHA-256 over a
canonical JSON description of those inputs.  The fingerprint deliberately
avoids Python's randomised ``hash()`` and any ``id()``/``repr``-of-object
content, so it is stable across interpreter processes and sessions.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

from ..canonical import canonical_dumps
from ..circuits import Circuit
from ..circuits.textio import to_artifact_format
from ..fabric.layout import GridLayout
from ..sim.config import SimulationConfig
from ..sim.results import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..scheduling.base import Scheduler

__all__ = ["SimJob", "job_fingerprint", "plan_jobs"]


def _canonical(value):
    """Reduce a value to JSON-serialisable data with a stable ordering."""
    if isinstance(value, enum.Enum):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {name: _canonical(getattr(value, name))
                for name in sorted(f.name for f in dataclasses.fields(value))}
    if isinstance(value, dict):
        return {str(key): _canonical(item)
                for key, item in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def _circuit_descriptor(circuit: Circuit) -> Dict[str, object]:
    # include_barriers=True: the appendix B.7 format drops barriers, but a
    # barrier changes layer structure and hence scheduling behaviour, so two
    # circuits differing only in barriers must not share a cache entry.
    # Imported .qasm files and generated scenarios are fingerprinted by this
    # full gate content (plus the circuit name), so editing a file or changing
    # a generator seed/parameter always misses the cache.
    return {
        "name": circuit.name,
        "num_qubits": circuit.num_qubits,
        "gates": to_artifact_format(circuit, include_barriers=True),
    }


def _scheduler_descriptor(scheduler: "Scheduler") -> Dict[str, object]:
    return {
        "class": type(scheduler).__name__,
        "name": scheduler.name,
        "params": _canonical(dict(vars(scheduler))),
    }


_TILE_CHARS = {"data": "d", "ancilla": "a", "disabled": "x"}


def _layout_descriptor(layout: GridLayout) -> Dict[str, object]:
    tile_rows = []
    for row in range(layout.rows):
        # One char per tile: 'd'ata, 'a'ncilla, 'x' disabled.
        tile_rows.append("".join(
            _TILE_CHARS[layout.tile_type((row, col)).value]
            for col in range(layout.cols)))
    return {
        "rows": layout.rows,
        "cols": layout.cols,
        "tiles": tile_rows,
        "data_positions": {str(qubit): list(position) for qubit, position
                           in sorted(layout.data_positions.items())},
    }


def job_fingerprint(circuit: Circuit, scheduler: "Scheduler",
                    config: SimulationConfig, layout: GridLayout,
                    seed: int) -> str:
    """Content hash of one simulation point, stable across processes."""
    payload = {
        "circuit": _circuit_descriptor(circuit),
        "scheduler": _scheduler_descriptor(scheduler),
        "config": _canonical(config),
        "layout": _layout_descriptor(layout),
        "seed": int(seed),
    }
    # canonical_dumps == json.dumps(sort_keys=True, compact separators) for
    # every valid payload, so fingerprints are unchanged from earlier
    # releases — but a NaN smuggled into a config now fails loudly instead
    # of silently producing a fingerprint no other host can reproduce.
    text = canonical_dumps(payload)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass
class SimJob:
    """One (circuit, scheduler, config, layout, seed) simulation point.

    Jobs are plain picklable records: :class:`ParallelExecutor` ships them to
    worker processes whole, and :meth:`run` is all a worker needs to call.
    """

    circuit: Circuit
    scheduler: "Scheduler"
    config: SimulationConfig
    layout: GridLayout
    seed: int
    #: Free-form labels attached by the planner (e.g. the grid-point values a
    #: spec expansion produced this job for).  Tags are carried alongside the
    #: job but are *not* part of its identity: they are excluded from
    #: comparison and from :meth:`fingerprint`, so tagging a job never
    #: invalidates its cache entry.
    tags: Dict[str, object] = field(default_factory=dict, repr=False,
                                    compare=False)
    _fingerprint: Optional[str] = field(default=None, repr=False, compare=False)

    @property
    def benchmark(self) -> str:
        return self.circuit.name

    @property
    def scheduler_name(self) -> str:
        return self.scheduler.name

    def fingerprint(self) -> str:
        """SHA-256 cache key over the job's full content (memoised)."""
        if self._fingerprint is None:
            self._fingerprint = job_fingerprint(
                self.circuit, self.scheduler, self.config, self.layout,
                self.seed)
        return self._fingerprint

    def run(self) -> SimulationResult:
        """Execute the job in the current process."""
        return self.scheduler.run(self.circuit, self.layout, self.config,
                                  seed=self.seed)

    def describe(self) -> str:
        return (f"{self.benchmark}/{self.scheduler_name}"
                f"[{self.config.describe()}] seed={self.seed}")


def plan_jobs(schedulers: Sequence["Scheduler"], circuit: Circuit,
              config: SimulationConfig, layout: GridLayout,
              seeds: Union[int, Sequence[int]],
              tags: Optional[Dict[str, object]] = None) -> List[SimJob]:
    """Expand one comparison point into its scheduler x seed job list.

    ``seeds`` accepts either an integer (meaning seeds ``0..n-1``) or an
    explicit sequence of seed values.  Jobs
    are emitted scheduler-major with seeds ascending, which is the order every
    executor preserves.  ``tags`` (copied per job) label every emitted job,
    e.g. with the grid-point values an experiment spec expanded.
    """
    if isinstance(seeds, int):
        seed_list: Sequence[int] = range(seeds)
    else:
        seed_list = seeds
    return [SimJob(circuit=circuit, scheduler=scheduler, config=config,
                   layout=layout, seed=seed, tags=dict(tags or {}))
            for scheduler in schedulers for seed in seed_list]
