"""Job-based experiment execution: planning, executors, and result caching.

Every sweep and comparison in the reproduction reduces to running a set of
independent (circuit, scheduler, config, layout, seed) points.  This package
makes that explicit:

* :mod:`repro.exec.jobs` — :class:`SimJob`, an immutable description of one
  simulation point with a stable content-hash fingerprint, plus planning
  helpers;
* :mod:`repro.exec.executors` — pluggable strategies for running a list of
  jobs: :class:`SerialExecutor` (the deterministic reference) and
  :class:`ParallelExecutor` (a ``ProcessPoolExecutor`` fan-out);
* :mod:`repro.exec.cache` — the :class:`CacheBackend` protocol and its two
  concurrent-safe implementations, :class:`DirectoryCache` (write-once
  JSON files; ``ResultCache`` is its historical alias) and
  :class:`SQLiteCache` (single file, WAL mode), so repeated sweeps — and
  concurrent ``rescq serve`` submissions — skip already-measured points;
* :mod:`repro.exec.engine` — :class:`ExecutionEngine`, which ties an executor
  and an optional cache together and is the object the runner, sweeps, CLI
  (``--jobs`` / ``--cache``) and benchmark harnesses all accept.

Executors preserve job order, and scheduler runs are seeded per job, so for
the same job list every executor produces the same list of
:class:`~repro.sim.results.SimulationResult` objects.
"""

from .cache import (
    CacheBackend,
    CacheCheck,
    CacheEntry,
    CacheStats,
    DirectoryCache,
    ResultCache,
    SQLiteCache,
    open_cache_backend,
)
from .engine import EngineStats, ExecutionEngine
from .executors import Executor, ParallelExecutor, SerialExecutor
from .jobs import SimJob, job_fingerprint, plan_jobs

__all__ = [
    "SimJob",
    "job_fingerprint",
    "plan_jobs",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "CacheBackend",
    "CacheEntry",
    "CacheCheck",
    "DirectoryCache",
    "SQLiteCache",
    "ResultCache",
    "CacheStats",
    "open_cache_backend",
    "ExecutionEngine",
    "EngineStats",
]
