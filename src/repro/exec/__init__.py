"""Job-based experiment execution: planning, executors, and result caching.

Every sweep and comparison in the reproduction reduces to running a set of
independent (circuit, scheduler, config, layout, seed) points.  This package
makes that explicit:

* :mod:`repro.exec.jobs` — :class:`SimJob`, an immutable description of one
  simulation point with a stable content-hash fingerprint, plus planning
  helpers;
* :mod:`repro.exec.executors` — pluggable strategies for running a list of
  jobs: :class:`SerialExecutor` (the deterministic reference) and
  :class:`ParallelExecutor` (a ``ProcessPoolExecutor`` fan-out);
* :mod:`repro.exec.cache` — :class:`ResultCache`, a JSON-on-disk memo of
  finished jobs keyed by fingerprint, so repeated sweeps skip
  already-measured points;
* :mod:`repro.exec.engine` — :class:`ExecutionEngine`, which ties an executor
  and an optional cache together and is the object the runner, sweeps, CLI
  (``--jobs`` / ``--cache``) and benchmark harnesses all accept.

Executors preserve job order, and scheduler runs are seeded per job, so for
the same job list every executor produces the same list of
:class:`~repro.sim.results.SimulationResult` objects.
"""

from .cache import CacheStats, ResultCache
from .engine import EngineStats, ExecutionEngine
from .executors import Executor, ParallelExecutor, SerialExecutor
from .jobs import SimJob, job_fingerprint, plan_jobs

__all__ = [
    "SimJob",
    "job_fingerprint",
    "plan_jobs",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "ResultCache",
    "CacheStats",
    "ExecutionEngine",
    "EngineStats",
]
