"""Concurrent-safe result-cache backends keyed by job fingerprint.

A cache maps a :func:`repro.exec.jobs.job_fingerprint` content hash to a
finished :class:`~repro.sim.results.SimulationResult`.  Fingerprints are
stable across interpreter processes and hosts, so a cache can be shared
between the CLI, benchmarks, notebooks and the ``rescq serve`` experiment
service: any submission that revisits a measured point skips the scheduler
run entirely.

Two backends implement the :class:`CacheBackend` protocol:

* :class:`DirectoryCache` — one canonical-JSON file per entry.  Writes are
  **write-once**: the payload lands in a temp file and is hard-linked into
  place, so concurrent writers race benignly (exactly one wins, every reader
  sees either a miss or a complete entry, never a torn file).  Reads are
  lock-free.
* :class:`SQLiteCache` — a single SQLite database in WAL mode, safe under
  concurrent reader/writer *processes*.  Write-once via
  ``INSERT OR IGNORE``; richer stats/GC/integrity queries come for free
  from SQL.
* :class:`HttpCache` — a client for the ``/cache/<fingerprint>`` peer
  protocol served by :class:`~repro.service.server.ExperimentServer`.  The
  peer's local backend enforces write-once, so N processes (or N cluster
  shards) sharing one peer keep the exactly-once store guarantee over the
  network.
* :class:`TieredCache` — read-through/write-through composition of a near
  (usually local) and a far (usually shared/network) tier; the far tier is
  authoritative for write-once verdicts and listings.

:func:`open_cache_backend` picks a backend from a CLI-friendly spec string
(``.sqlite``/``.db`` suffix, an explicit ``sqlite:``/``dir:`` prefix, an
``http://`` peer URL, or a ``near|far`` tier composition), so every
``--cache`` flag accepts every backend uniformly.
"""

from __future__ import annotations

import abc
import http.client
import json
import os
import random
import re
import sqlite3
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union
from urllib.parse import urlsplit

from ..canonical import canonical_dumps
from ..sim.results import SimulationResult

__all__ = [
    "CacheBackend",
    "CacheEntry",
    "CacheCheck",
    "CacheStats",
    "DirectoryCache",
    "HttpCache",
    "ResultCache",
    "SQLiteCache",
    "TieredCache",
    "open_cache_backend",
]

#: Fingerprints are SHA-256 hex digests; the peer protocol rejects anything
#: else before it touches the path namespace.
FINGERPRINT_PATTERN = re.compile(r"^[0-9a-f]{6,128}$")


@dataclass
class CacheStats:
    """Hit/miss/store counters accumulated over a cache's lifetime.

    The failure counters separate *why* a read degraded to a miss:
    ``connect_errors`` (the peer was unreachable or answered a non-2xx)
    versus ``corrupt_payloads`` (the peer answered but the payload did not
    deserialise — a short read or bit-rot).  ``read_retries`` counts the
    extra read attempts spent before giving up.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    connect_errors: int = 0
    corrupt_payloads: int = 0
    read_retries: int = 0

    def describe(self) -> str:
        text = f"hits={self.hits} misses={self.misses} stores={self.stores}"
        if self.connect_errors:
            text += f" connect_errors={self.connect_errors}"
        if self.corrupt_payloads:
            text += f" corrupt={self.corrupt_payloads}"
        if self.read_retries:
            text += f" read_retries={self.read_retries}"
        return text


@dataclass(frozen=True)
class CacheEntry:
    """One stored result, as reported by :meth:`CacheBackend.entries`."""

    fingerprint: str
    size_bytes: int
    stored_at: float  # seconds since the epoch


@dataclass
class CacheCheck:
    """Outcome of :meth:`CacheBackend.verify`."""

    entries: int = 0
    ok: int = 0
    corrupt: List[str] = field(default_factory=list)

    @property
    def is_healthy(self) -> bool:
        return not self.corrupt

    def describe(self) -> str:
        state = "ok" if self.is_healthy else f"CORRUPT({len(self.corrupt)})"
        return f"entries={self.entries} ok={self.ok} {state}"


def _serialise(result: SimulationResult) -> str:
    # Imported lazily: repro.analysis imports repro.sim, which is still
    # mid-initialisation when this module first loads.
    from ..analysis.export import result_to_dict
    return canonical_dumps(result_to_dict(result))


def _deserialise(text: str) -> SimulationResult:
    from ..analysis.export import result_from_dict
    return result_from_dict(json.loads(text))


class CacheBackend(abc.ABC):
    """The ``fingerprint -> SimulationResult`` store contract.

    Implementations must be safe under concurrent writers — multiple
    processes storing the same fingerprint concurrently must leave exactly
    one complete entry, and readers must never observe a torn entry.  ``put``
    is write-once: the first store wins and returns ``True``; later stores
    of the same fingerprint are no-ops returning ``False`` (entries are
    content-addressed, so "losing" writers were writing identical bytes
    anyway).
    """

    stats: CacheStats

    @abc.abstractmethod
    def get(self, fingerprint: str) -> Optional[SimulationResult]:
        """Return the cached result for ``fingerprint``, or ``None`` on miss.

        Unreadable or corrupt entries count as misses.
        """

    @abc.abstractmethod
    def put(self, fingerprint: str, result: SimulationResult) -> bool:
        """Store ``result`` under ``fingerprint`` (atomic, write-once).

        Returns ``True`` if this call created the entry, ``False`` if a
        complete entry already existed.
        """

    @abc.abstractmethod
    def __contains__(self, fingerprint: str) -> bool: ...

    @abc.abstractmethod
    def __len__(self) -> int: ...

    @abc.abstractmethod
    def entries(self) -> Iterator[CacheEntry]:
        """Iterate over stored entries (order unspecified)."""

    @abc.abstractmethod
    def clear(self) -> int:
        """Delete every entry; returns the number of entries removed."""

    @abc.abstractmethod
    def gc(self, older_than: float) -> int:
        """Delete entries stored more than ``older_than`` seconds ago.

        Returns the number of entries removed.
        """

    @abc.abstractmethod
    def verify(self) -> CacheCheck:
        """Check every entry deserialises; report corrupt fingerprints."""

    def close(self) -> None:
        """Release backend resources (connections, handles).  Idempotent."""

    def size_bytes(self) -> int:
        """Total payload bytes across entries."""
        return sum(entry.size_bytes for entry in self.entries())

    @abc.abstractmethod
    def describe(self) -> str: ...


class DirectoryCache(CacheBackend):
    """A directory of ``<fingerprint>.json`` files, one per completed job.

    Concurrent-writer hardening: payloads are written to a private temp file
    and hard-linked to the final name, which is atomic and *write-once* on
    every POSIX filesystem — the first writer creates the entry, later
    writers see ``EEXIST`` and back off.  Readers open the final name only,
    so they see either nothing or a complete payload; there is no lock on
    either path.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()

    def _path(self, fingerprint: str) -> Path:
        return self.directory / f"{fingerprint}.json"

    def get(self, fingerprint: str) -> Optional[SimulationResult]:
        path = self._path(fingerprint)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                result = _deserialise(handle.read())
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Corrupt entry: evict it so the write-once `put` of the re-run
            # result can land.
            try:
                path.unlink()
            except OSError:
                pass
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, fingerprint: str, result: SimulationResult) -> bool:
        payload = _serialise(result)
        target = self._path(fingerprint)
        if target.exists():
            return False
        fd, tmp_name = tempfile.mkstemp(dir=str(self.directory),
                                        suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            try:
                # Atomic write-once: linking fails iff the entry exists.
                os.link(tmp_name, target)
            except FileExistsError:
                return False
            except OSError:
                # Filesystem without hard links: fall back to an atomic
                # rename (still never torn; last writer wins with identical
                # bytes, since entries are content-addressed).
                os.replace(tmp_name, target)
                tmp_name = None
        finally:
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
        self.stats.stores += 1
        return True

    def __contains__(self, fingerprint: str) -> bool:
        return self._path(fingerprint).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))

    def entries(self) -> Iterator[CacheEntry]:
        for path in sorted(self.directory.glob("*.json")):
            try:
                stat = path.stat()
            except OSError:
                continue
            yield CacheEntry(fingerprint=path.stem, size_bytes=stat.st_size,
                             stored_at=stat.st_mtime)

    def clear(self) -> int:
        removed = 0
        for path in self.directory.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def gc(self, older_than: float) -> int:
        cutoff = time.time() - older_than
        removed = 0
        for entry in list(self.entries()):
            if entry.stored_at < cutoff:
                try:
                    self._path(entry.fingerprint).unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def verify(self) -> CacheCheck:
        check = CacheCheck()
        for entry in self.entries():
            check.entries += 1
            try:
                with open(self._path(entry.fingerprint), "r",
                          encoding="utf-8") as handle:
                    _deserialise(handle.read())
            except (OSError, ValueError, KeyError, TypeError):
                check.corrupt.append(entry.fingerprint)
            else:
                check.ok += 1
        return check

    def describe(self) -> str:
        return f"cache[{self.directory}] {self.stats.describe()}"


#: Historical name for the directory backend, kept for existing callers.
ResultCache = DirectoryCache


class SQLiteCache(CacheBackend):
    """A single-file SQLite store, safe under concurrent processes.

    WAL journaling lets readers proceed while a writer commits; a generous
    busy timeout serialises concurrent writers instead of erroring.  Each
    :class:`SQLiteCache` instance owns one connection guarded by a lock, so
    an instance may be shared between threads; separate *processes* simply
    open their own instance against the same path.
    """

    _SCHEMA = """
        CREATE TABLE IF NOT EXISTS results (
            fingerprint TEXT PRIMARY KEY,
            payload     TEXT NOT NULL,
            size_bytes  INTEGER NOT NULL,
            stored_at   REAL NOT NULL
        )
    """

    def __init__(self, path: Union[str, Path], timeout: float = 30.0) -> None:
        self.path = Path(path)
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(str(self.path), timeout=timeout,
                                     check_same_thread=False)
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute(self._SCHEMA)
            self._conn.commit()

    def get(self, fingerprint: str) -> Optional[SimulationResult]:
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM results WHERE fingerprint = ?",
                (fingerprint,)).fetchone()
        if row is None:
            self.stats.misses += 1
            return None
        try:
            result = _deserialise(row[0])
        except (ValueError, KeyError, TypeError):
            # Corrupt entry: evict it so the write-once `put` of the re-run
            # result can land.
            with self._lock:
                self._conn.execute(
                    "DELETE FROM results WHERE fingerprint = ?",
                    (fingerprint,))
                self._conn.commit()
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, fingerprint: str, result: SimulationResult) -> bool:
        payload = _serialise(result)
        with self._lock:
            cursor = self._conn.execute(
                "INSERT OR IGNORE INTO results "
                "(fingerprint, payload, size_bytes, stored_at) "
                "VALUES (?, ?, ?, ?)",
                (fingerprint, payload, len(payload.encode("utf-8")),
                 time.time()))
            self._conn.commit()
        stored = cursor.rowcount == 1
        if stored:
            self.stats.stores += 1
        return stored

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM results WHERE fingerprint = ?",
                (fingerprint,)).fetchone()
        return row is not None

    def __len__(self) -> int:
        with self._lock:
            (count,) = self._conn.execute(
                "SELECT COUNT(*) FROM results").fetchone()
        return int(count)

    def entries(self) -> Iterator[CacheEntry]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT fingerprint, size_bytes, stored_at FROM results "
                "ORDER BY fingerprint").fetchall()
        for fingerprint, size_bytes, stored_at in rows:
            yield CacheEntry(fingerprint=fingerprint,
                             size_bytes=int(size_bytes),
                             stored_at=float(stored_at))

    def clear(self) -> int:
        with self._lock:
            cursor = self._conn.execute("DELETE FROM results")
            self._conn.commit()
        return cursor.rowcount

    def gc(self, older_than: float) -> int:
        cutoff = time.time() - older_than
        with self._lock:
            cursor = self._conn.execute(
                "DELETE FROM results WHERE stored_at < ?", (cutoff,))
            self._conn.commit()
        return cursor.rowcount

    def verify(self) -> CacheCheck:
        check = CacheCheck()
        with self._lock:
            integrity = self._conn.execute(
                "PRAGMA integrity_check").fetchone()
        if integrity and integrity[0] != "ok":  # pragma: no cover - disk fault
            check.corrupt.append(f"<database: {integrity[0]}>")
        with self._lock:
            rows = self._conn.execute(
                "SELECT fingerprint, payload FROM results "
                "ORDER BY fingerprint").fetchall()
        for fingerprint, payload in rows:
            check.entries += 1
            try:
                _deserialise(payload)
            except (ValueError, KeyError, TypeError):
                check.corrupt.append(fingerprint)
            else:
                check.ok += 1
        return check

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def describe(self) -> str:
        return f"cache[sqlite:{self.path}] {self.stats.describe()}"


class HttpCache(CacheBackend):
    """A client for the ``/cache/<fingerprint>`` peer protocol.

    Points at an :class:`~repro.service.server.ExperimentServer` started
    with a cache backend; that peer's *local* backend enforces the
    write-once guarantee, so any number of processes or cluster shards
    sharing one peer still store each fingerprint exactly once (``put``
    returns ``True`` iff the peer answered ``201 Created``).

    One request per call over a fresh connection (the peer speaks
    ``Connection: close``), synchronous on purpose: cache calls happen on
    executor threads, never on the event loop.  A dead peer degrades
    *reads* to misses — a cluster keeps computing without its shared tier —
    while mutation calls raise ``OSError`` so callers notice lost writes.

    Reads fail soft but not blind: a read that degrades to a miss is
    classified (``connect_errors`` vs ``corrupt_payloads`` in ``stats``)
    and retried up to ``read_retries`` extra times with a small jittered
    backoff, so one dropped packet does not force a re-execution.  A clean
    404 is an authoritative miss and is never retried.
    """

    def __init__(self, url: str, timeout: float = 10.0,
                 read_retries: int = 2, retry_backoff: float = 0.05,
                 rng: Optional[random.Random] = None) -> None:
        self.url = url
        self.host, self.port, self.base = self._parse(url)
        self.timeout = timeout
        if read_retries < 0:
            raise ValueError("read_retries must be >= 0")
        self.read_retries = read_retries
        self.retry_backoff = retry_backoff
        self._rng = rng if rng is not None else random.Random()
        self.stats = CacheStats()

    @staticmethod
    def _parse(url: str) -> Tuple[str, int, str]:
        split = urlsplit(url)
        if split.scheme != "http":
            raise ValueError(
                f"cache peer URLs must use http:// (the peer protocol is "
                f"loopback/LAN plumbing), got {url!r}")
        if not split.hostname:
            raise ValueError(f"cache peer URL {url!r} has no host")
        port = split.port if split.port is not None else 80
        return split.hostname, port, split.path.rstrip("/")

    def _request(self, method: str, path: str,
                 body: Optional[bytes] = None) -> Tuple[int, bytes]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        try:
            headers = {"Connection": "close"}
            if body is not None:
                headers["Content-Type"] = "application/json"
            connection.request(method, self.base + path, body=body,
                               headers=headers)
            response = connection.getresponse()
            return response.status, response.read()
        except http.client.HTTPException as exc:
            raise OSError(f"cache peer {self.url} protocol error: "
                          f"{exc}") from exc
        finally:
            connection.close()

    def _check(self, fingerprint: str) -> str:
        if not FINGERPRINT_PATTERN.match(fingerprint):
            raise ValueError(f"malformed cache fingerprint {fingerprint!r} "
                             f"(want lowercase hex)")
        return fingerprint

    def get(self, fingerprint: str) -> Optional[SimulationResult]:
        path = f"/cache/{self._check(fingerprint)}"
        for attempt in range(self.read_retries + 1):
            if attempt > 0:
                self.stats.read_retries += 1
                # Full jitter keeps concurrent readers decorrelated; the
                # RNG is injectable so tests stay deterministic.
                delay = self._rng.random() * min(
                    0.5, self.retry_backoff * (2 ** (attempt - 1)))
                if delay > 0:
                    time.sleep(delay)
            try:
                status, data = self._request("GET", path)
            except OSError:
                # Peer unreachable (or protocol error): maybe transient.
                self.stats.connect_errors += 1
                continue
            if status == 404:
                # An authoritative answer: the peer does not have it.
                self.stats.misses += 1
                return None
            if status != 200:
                self.stats.connect_errors += 1
                continue
            try:
                result = _deserialise(data.decode("utf-8"))
            except (UnicodeDecodeError, ValueError, KeyError, TypeError):
                # Answered, but the payload is short or mangled.
                self.stats.corrupt_payloads += 1
                continue
            self.stats.hits += 1
            return result
        self.stats.misses += 1
        return None

    def put(self, fingerprint: str, result: SimulationResult) -> bool:
        payload = _serialise(result).encode("utf-8")
        status, data = self._request(
            "PUT", f"/cache/{self._check(fingerprint)}", body=payload)
        if status not in (200, 201):
            raise OSError(f"cache peer {self.url} refused the store "
                          f"({status}): {data[:200].decode('utf-8', 'replace')}")
        stored = status == 201
        if stored:
            self.stats.stores += 1
        return stored

    def __contains__(self, fingerprint: str) -> bool:
        try:
            status, _data = self._request(
                "HEAD", f"/cache/{self._check(fingerprint)}")
        except OSError:
            return False
        return status == 200

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    def entries(self) -> Iterator[CacheEntry]:
        status, data = self._request("GET", "/cache")
        if status != 200:
            raise OSError(f"cache peer {self.url} listing failed ({status})")
        for item in json.loads(data.decode("utf-8")).get("entries", []):
            yield CacheEntry(fingerprint=str(item["fingerprint"]),
                             size_bytes=int(item["size_bytes"]),
                             stored_at=float(item["stored_at"]))

    def clear(self) -> int:
        status, data = self._request("DELETE", "/cache")
        if status != 200:
            raise OSError(f"cache peer {self.url} clear failed ({status})")
        return int(json.loads(data.decode("utf-8"))["removed"])

    def gc(self, older_than: float) -> int:
        body = canonical_dumps({"older_than": older_than}).encode("utf-8")
        status, data = self._request("POST", "/cache/gc", body=body)
        if status != 200:
            raise OSError(f"cache peer {self.url} gc failed ({status})")
        return int(json.loads(data.decode("utf-8"))["removed"])

    def verify(self) -> CacheCheck:
        status, data = self._request("POST", "/cache/verify")
        if status != 200:
            raise OSError(f"cache peer {self.url} verify failed ({status})")
        payload = json.loads(data.decode("utf-8"))
        return CacheCheck(entries=int(payload["entries"]),
                          ok=int(payload["ok"]),
                          corrupt=[str(f) for f in payload["corrupt"]])

    def describe(self) -> str:
        return f"cache[{self.url}] {self.stats.describe()}"


class TieredCache(CacheBackend):
    """Read-through/write-through composition of a near and a far tier.

    The canonical cluster arrangement is ``near`` = a private local backend
    (fast, per-shard) and ``far`` = a shared :class:`HttpCache` peer.  Reads
    try ``near`` first and backfill it from ``far`` on a far hit; writes go
    to both tiers.  The **far tier is authoritative**: ``put``'s write-once
    verdict, ``entries``/``len`` and ``verify`` all come from ``far``, so
    racing writers behind separate :class:`TieredCache` instances sharing
    one far tier still report exactly one creating store between them.
    """

    def __init__(self, near: CacheBackend, far: CacheBackend) -> None:
        self.near = near
        self.far = far
        self.stats = CacheStats()

    def get(self, fingerprint: str) -> Optional[SimulationResult]:
        result = self.near.get(fingerprint)
        if result is not None:
            self.stats.hits += 1
            return result
        result = self.far.get(fingerprint)
        if result is None:
            self.stats.misses += 1
            return None
        try:
            self.near.put(fingerprint, result)
        except Exception:  # noqa: BLE001 - backfill is best-effort
            pass
        self.stats.hits += 1
        return result

    def put(self, fingerprint: str, result: SimulationResult) -> bool:
        try:
            self.near.put(fingerprint, result)
        except Exception:  # noqa: BLE001 - near tier is an optimisation
            pass
        stored = self.far.put(fingerprint, result)
        if stored:
            self.stats.stores += 1
        return stored

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.near or fingerprint in self.far

    def __len__(self) -> int:
        return len(self.far)

    def entries(self) -> Iterator[CacheEntry]:
        return self.far.entries()

    def clear(self) -> int:
        self.near.clear()
        return self.far.clear()

    def gc(self, older_than: float) -> int:
        self.near.gc(older_than)
        return self.far.gc(older_than)

    def verify(self) -> CacheCheck:
        return self.far.verify()

    def close(self) -> None:
        self.near.close()
        self.far.close()

    def describe(self) -> str:
        return (f"cache[tiered near=({self.near.describe()}) "
                f"far=({self.far.describe()})] {self.stats.describe()}")


def open_cache_backend(spec: Union[str, Path, CacheBackend]) -> CacheBackend:
    """Build a backend from a ``--cache`` spec string.

    ``sqlite:PATH`` and ``dir:PATH`` select a backend explicitly; a bare
    path ending in ``.sqlite``/``.sqlite3``/``.db`` opens the SQLite
    backend, anything else the directory backend.  ``http://host:port``
    opens the network peer client.  ``NEAR|FAR`` composes two backends into
    a :class:`TieredCache` (e.g. ``dir:/tmp/near|http://127.0.0.1:8765``).
    A :class:`CacheBackend` instance passes through unchanged, so
    programmatic callers can hand a pre-built backend to the same entry
    points.
    """
    if isinstance(spec, CacheBackend):
        return spec
    text = str(spec)
    if "|" in text:
        near_spec, _sep, far_spec = text.partition("|")
        if not near_spec or not far_spec or "|" in far_spec:
            raise ValueError(
                f"tiered cache spec must be exactly 'NEAR|FAR', got "
                f"{text!r}")
        return TieredCache(near=open_cache_backend(near_spec),
                           far=open_cache_backend(far_spec))
    if text.startswith("http://"):
        return HttpCache(text)
    if text.startswith("https://"):
        raise ValueError("cache peers speak plain http:// only (the peer "
                         "protocol is loopback/LAN plumbing)")
    if text.startswith("sqlite:"):
        return SQLiteCache(text[len("sqlite:"):])
    if text.startswith("dir:"):
        return DirectoryCache(text[len("dir:"):])
    if text.endswith((".sqlite", ".sqlite3", ".db")):
        return SQLiteCache(text)
    return DirectoryCache(text)
