"""On-disk memoisation of finished simulation jobs.

The cache is a directory of ``<fingerprint>.json`` files, one per completed
job, in the same JSON schema as :mod:`repro.analysis.export`.  Fingerprints
are content hashes of the full job description (see
:func:`repro.exec.jobs.job_fingerprint`), so a cache survives process
restarts and can be shared between the CLI, benchmarks and notebooks: any
sweep that revisits a measured point skips the scheduler run entirely.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from ..sim.results import SimulationResult

__all__ = ["ResultCache", "CacheStats"]


@dataclass
class CacheStats:
    """Hit/miss/store counters accumulated over a cache's lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def describe(self) -> str:
        return f"hits={self.hits} misses={self.misses} stores={self.stores}"


class ResultCache:
    """A directory-backed ``fingerprint -> SimulationResult`` store."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()

    def _path(self, fingerprint: str) -> Path:
        return self.directory / f"{fingerprint}.json"

    def get(self, fingerprint: str) -> Optional[SimulationResult]:
        """Return the cached result for ``fingerprint``, or ``None`` on miss.

        Unreadable or corrupt entries count as misses; they are overwritten
        the next time the job runs.
        """
        # Imported lazily: repro.analysis imports repro.sim, which is still
        # mid-initialisation when this module first loads.
        from ..analysis.export import result_from_dict
        path = self._path(fingerprint)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            result = result_from_dict(payload)
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, fingerprint: str, result: SimulationResult) -> None:
        """Store ``result`` under ``fingerprint`` (atomic write)."""
        from ..analysis.export import result_to_dict
        payload = json.dumps(result_to_dict(result), indent=None,
                             separators=(",", ":"))
        fd, tmp_name = tempfile.mkstemp(dir=str(self.directory),
                                        suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp_name, self._path(fingerprint))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    def __contains__(self, fingerprint: str) -> bool:
        return self._path(fingerprint).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number of entries removed."""
        removed = 0
        for path in self.directory.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def describe(self) -> str:
        return f"cache[{self.directory}] {self.stats.describe()}"
