"""Tests for the artifact text format and the OpenQASM subset."""

import math

import pytest

from repro.circuits import (
    Circuit,
    GateType,
    from_artifact_format,
    from_qasm,
    to_artifact_format,
    to_qasm,
)


def sample_circuit() -> Circuit:
    circuit = Circuit(3, name="sample")
    circuit.h(0)
    circuit.rz(0, 0.375)
    circuit.cnot(0, 1)
    circuit.x(2)
    circuit.rz(2, -1.25)
    return circuit


class TestArtifactFormat:
    def test_round_trip(self):
        original = sample_circuit()
        text = to_artifact_format(original)
        parsed = from_artifact_format(text, num_qubits=3)
        assert len(parsed) == len(original)
        for a, b in zip(parsed, original):
            assert a.gate_type is b.gate_type
            assert a.qubits == b.qubits
            if a.angle is not None:
                assert a.angle == pytest.approx(b.angle)

    def test_first_line_is_gate_count(self):
        text = to_artifact_format(sample_circuit())
        assert text.splitlines()[0] == "5"

    def test_declared_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            from_artifact_format("2\nh 0\n")

    def test_unknown_gate_rejected(self):
        with pytest.raises(ValueError):
            from_artifact_format("1\nfoo 0\n")

    def test_rz_without_angle_rejected(self):
        with pytest.raises(ValueError):
            from_artifact_format("1\nrz 0\n")

    def test_empty_text_rejected(self):
        with pytest.raises(ValueError):
            from_artifact_format("   \n")

    def test_qubit_count_inferred_when_not_given(self):
        parsed = from_artifact_format("1\ncx 2 5\n")
        assert parsed.num_qubits == 6


class TestQasm:
    def test_round_trip(self):
        original = sample_circuit()
        parsed = from_qasm(to_qasm(original))
        assert parsed.num_qubits == 3
        assert [g.gate_type for g in parsed] == [g.gate_type for g in original]
        assert parsed[1].angle == pytest.approx(0.375)

    def test_parses_pi_expressions(self):
        text = 'OPENQASM 2.0;\nqreg q[1];\nrz(pi/4) q[0];\n'
        parsed = from_qasm(text)
        assert parsed[0].angle == pytest.approx(math.pi / 4)

    def test_measure_and_barrier(self):
        text = ('OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\n'
                'h q[0];\nbarrier q;\nmeasure q[0] -> c[0];\n')
        parsed = from_qasm(text)
        kinds = [g.gate_type for g in parsed]
        assert GateType.BARRIER in kinds
        assert GateType.MEASURE in kinds

    def test_missing_qreg_rejected(self):
        with pytest.raises(ValueError):
            from_qasm("OPENQASM 2.0;\nh q[0];\n")

    def test_unknown_gate_rejected(self):
        with pytest.raises(ValueError):
            from_qasm("OPENQASM 2.0;\nqreg q[1];\nmystery q[0];\n")

    def test_comments_ignored(self):
        text = 'OPENQASM 2.0;\nqreg q[1];\n// a comment\nh q[0]; // trailing\n'
        parsed = from_qasm(text)
        assert len(parsed) == 1
