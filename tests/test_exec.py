"""Tests for the execution engine: jobs, executors, caching, determinism."""

import json
from concurrent.futures import ProcessPoolExecutor

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SimulationConfig, default_layout
from repro.exec import (
    ExecutionEngine,
    ParallelExecutor,
    ResultCache,
    SerialExecutor,
    SimJob,
    job_fingerprint,
    plan_jobs,
)
from repro.scheduling import AutoBraidScheduler, GreedyScheduler, RescqScheduler
from repro.sim import aggregate_comparison
from repro.workloads import qft_circuit

FAST = SimulationConfig(mst_period=10, mst_latency=10)


def make_jobs(num_seeds=2, num_qubits=5):
    circuit = qft_circuit(num_qubits)
    layout = default_layout(circuit)
    return plan_jobs([AutoBraidScheduler(), RescqScheduler()], circuit, FAST,
                     layout, num_seeds)


def fingerprint_of(distance, mst_period, seed):
    """Build a job from scratch and return its fingerprint.

    Module-level so it can be pickled into a worker process: the test for
    cross-process stability runs this exact function in a child interpreter.
    """
    circuit = qft_circuit(4)
    config = SimulationConfig(distance=distance, mst_period=mst_period,
                              mst_latency=10)
    layout = default_layout(circuit)
    return job_fingerprint(circuit, RescqScheduler(), config, layout, seed)


class TestSimJob:
    def test_run_matches_direct_scheduler_call(self):
        job = make_jobs(num_seeds=1)[0]
        direct = job.scheduler.run(job.circuit, job.layout, job.config,
                                   seed=job.seed)
        assert job.run() == direct

    def test_plan_jobs_order_is_scheduler_major_seed_ascending(self):
        jobs = make_jobs(num_seeds=3)
        assert [(job.scheduler_name, job.seed) for job in jobs] == [
            ("autobraid", 0), ("autobraid", 1), ("autobraid", 2),
            ("rescq", 0), ("rescq", 1), ("rescq", 2)]

    def test_plan_jobs_explicit_seed_sequence(self):
        circuit = qft_circuit(4)
        jobs = plan_jobs([RescqScheduler()], circuit, FAST,
                         default_layout(circuit), [7, 3])
        assert [job.seed for job in jobs] == [7, 3]

    def test_fingerprint_is_content_addressed(self):
        first, second = make_jobs(num_seeds=1)[0], make_jobs(num_seeds=1)[0]
        assert first is not second
        assert first.fingerprint() == second.fingerprint()

    def test_fingerprint_varies_with_every_input(self):
        base = make_jobs(num_seeds=1)[0]
        variants = [
            SimJob(base.circuit, base.scheduler, base.config, base.layout, 99),
            SimJob(base.circuit, base.scheduler,
                   base.config.with_updates(distance=9), base.layout,
                   base.seed),
            SimJob(qft_circuit(6), base.scheduler, base.config,
                   default_layout(qft_circuit(6)), base.seed),
            SimJob(base.circuit, GreedyScheduler(), base.config, base.layout,
                   base.seed),
        ]
        fingerprints = {job.fingerprint() for job in variants}
        assert base.fingerprint() not in fingerprints
        assert len(fingerprints) == len(variants)

    def test_fingerprint_sees_barriers(self):
        from repro.circuits import Circuit, barrier as make_barrier

        def build(with_barrier):
            circuit = Circuit(2, name="fenced")
            circuit.h(0)
            if with_barrier:
                circuit.append(make_barrier())
            circuit.h(1)
            return circuit

        plain, fenced = build(False), build(True)
        layout = default_layout(plain)
        prints = {job_fingerprint(circuit, RescqScheduler(), FAST, layout, 0)
                  for circuit in (plain, fenced)}
        # A barrier changes layer structure (and thus static scheduling), so
        # circuits differing only by a barrier must not share a cache entry.
        assert len(prints) == 2

    def test_fingerprint_sees_scheduler_parameters(self):
        base = make_jobs(num_seeds=1)[0]
        ablated = SimJob(base.circuit,
                         RescqScheduler(lookahead_preparation=False),
                         base.config, base.layout, base.seed)
        renamed = SimJob(base.circuit, RescqScheduler(name="rescq-v2"),
                         base.config, base.layout, base.seed)
        assert len({base.fingerprint(), ablated.fingerprint(),
                    renamed.fingerprint()}) == 3

    @settings(max_examples=10, deadline=None)
    @given(distance=st.sampled_from([3, 5, 7, 9]),
           mst_period=st.integers(min_value=5, max_value=200),
           seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_fingerprint_stable_across_processes(self, pool, distance,
                                                 mst_period, seed):
        """Property: a worker process derives the exact same fingerprint."""
        parent = fingerprint_of(distance, mst_period, seed)
        child = pool.submit(fingerprint_of, distance, mst_period,
                            seed).result()
        assert parent == child


@pytest.fixture(scope="module")
def pool():
    with ProcessPoolExecutor(max_workers=1) as executor:
        yield executor


class TestExecutors:
    def test_serial_preserves_job_order(self):
        jobs = make_jobs()
        results = SerialExecutor().run_jobs(jobs)
        assert [(r.scheduler, r.seed) for r in results] == [
            (job.scheduler_name, job.seed) for job in jobs]

    def test_parallel_equals_serial(self):
        """The headline guarantee: same jobs -> identical results."""
        jobs = make_jobs(num_seeds=2)
        serial = SerialExecutor().run_jobs(jobs)
        parallel = ParallelExecutor(max_workers=2,
                                    chunksize=1).run_jobs(jobs)
        assert serial == parallel

    def test_parallel_single_worker_runs_inline(self):
        jobs = make_jobs(num_seeds=1)
        assert (ParallelExecutor(max_workers=1).run_jobs(jobs)
                == SerialExecutor().run_jobs(jobs))

    def test_parallel_empty_job_list(self):
        assert ParallelExecutor(max_workers=2).run_jobs([]) == []

    def test_parallel_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            ParallelExecutor(max_workers=0)
        with pytest.raises(ValueError):
            ParallelExecutor(chunksize=0)


class TestResultCache:
    def test_miss_then_hit_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        job = make_jobs(num_seeds=1)[0]
        key = job.fingerprint()
        assert cache.get(key) is None
        result = job.run()
        cache.put(key, result)
        assert key in cache
        assert cache.get(key) == result
        assert cache.stats.describe() == "hits=1 misses=1 stores=1"

    def test_corrupt_entry_counts_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = tmp_path / ("a" * 64 + ".json")
        path.write_text("{not json")
        assert cache.get("a" * 64) is None
        assert cache.stats.misses == 1

    def test_len_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = make_jobs(num_seeds=1)[0]
        cache.put(job.fingerprint(), job.run())
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_entries_are_valid_json(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = make_jobs(num_seeds=1)[0]
        cache.put(job.fingerprint(), job.run())
        payload = json.loads(
            (tmp_path / f"{job.fingerprint()}.json").read_text())
        assert payload["scheduler"] == job.scheduler_name


class TestExecutionEngine:
    def test_results_in_job_order(self):
        jobs = make_jobs()
        engine = ExecutionEngine()
        results = engine.run(jobs)
        assert [(r.scheduler, r.seed) for r in results] == [
            (job.scheduler_name, job.seed) for job in jobs]
        assert engine.stats.jobs == engine.stats.executed == len(jobs)

    def test_second_run_is_fully_cached(self, tmp_path):
        jobs = make_jobs()
        first_engine = ExecutionEngine(cache=ResultCache(tmp_path))
        first = first_engine.run(jobs)
        second_engine = ExecutionEngine(cache=ResultCache(tmp_path))
        second = second_engine.run(make_jobs())
        assert second == first
        assert second_engine.stats.executed == 0
        assert second_engine.stats.cache_hits == len(jobs)

    def test_partial_cache_executes_only_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        jobs = make_jobs(num_seeds=2)
        cache.put(jobs[0].fingerprint(), jobs[0].run())
        engine = ExecutionEngine(cache=cache)
        results = engine.run(jobs)
        assert engine.stats.cache_hits == 1
        assert engine.stats.executed == len(jobs) - 1
        assert results == SerialExecutor().run_jobs(jobs)

    def test_parallel_cached_engine_matches_serial_uncached(self, tmp_path):
        jobs = make_jobs(num_seeds=2)
        reference = ExecutionEngine().run(jobs)
        fancy = ExecutionEngine(
            executor=ParallelExecutor(max_workers=2),
            cache=ResultCache(tmp_path))
        assert fancy.run(make_jobs(num_seeds=2)) == reference
        # And again, now entirely from cache.
        assert fancy.run(make_jobs(num_seeds=2)) == reference
        assert fancy.stats.executed == len(jobs)

    def test_describe_reports_counters(self, tmp_path):
        engine = ExecutionEngine(cache=ResultCache(tmp_path))
        engine.run(make_jobs(num_seeds=1))
        text = engine.describe()
        assert text.startswith("[exec] jobs=2 executed=2 cache_hits=0")
        assert "stores=2" in text


class TestRunnerIntegration:
    def test_engine_choice_does_not_change_results(self):
        circuit = qft_circuit(5)
        jobs = plan_jobs([RescqScheduler()], circuit, FAST,
                         default_layout(circuit), 2)
        default = ExecutionEngine().run(jobs)
        engineered = ExecutionEngine(
            executor=ParallelExecutor(max_workers=2)).run(jobs)
        assert default == engineered

    def test_comparison_rows_sorted_by_name(self):
        circuit = qft_circuit(5)
        jobs = plan_jobs(
            [RescqScheduler(), GreedyScheduler(), AutoBraidScheduler()],
            circuit, FAST, default_layout(circuit), 1)
        rows = aggregate_comparison(jobs, ExecutionEngine().run(jobs))
        assert list(rows) == ["autobraid", "greedy", "rescq"]

    def test_comparison_results_sorted_by_seed(self):
        circuit = qft_circuit(5)
        jobs = plan_jobs([RescqScheduler()], circuit, FAST,
                         default_layout(circuit), [2, 0, 1])
        rows = aggregate_comparison(jobs, ExecutionEngine().run(jobs))
        assert [r.seed for r in rows["rescq"].results] == [0, 1, 2]

    def test_comparison_identical_across_engines(self, tmp_path):
        circuit = qft_circuit(5)
        jobs = plan_jobs([AutoBraidScheduler(), RescqScheduler()], circuit,
                         FAST, default_layout(circuit), 2)

        def run(engine=None):
            engine = engine or ExecutionEngine()
            return aggregate_comparison(jobs, engine.run(jobs))

        reference = run()
        parallel = run(ExecutionEngine(
            executor=ParallelExecutor(max_workers=2)))
        cached_engine = ExecutionEngine(cache=ResultCache(tmp_path))
        run(cached_engine)          # populate
        cached = run(cached_engine)  # replay
        for rows in (parallel, cached):
            assert list(rows) == list(reference)
            for name in reference:
                assert rows[name] == reference[name]
