"""Tests for the declarative experiment API (repro.api)."""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import (
    BENCHMARKS,
    LAYOUTS,
    SCHEDULERS,
    SWEEP_AXES,
    DuplicateEntryError,
    ExperimentSpec,
    Registry,
    ResultSet,
    SpecValidationError,
    UnknownEntryError,
    build_engine,
    run_experiment,
)
from repro.api.axes import get_axis
from repro.exec import ExecutionEngine, ParallelExecutor
from repro.scheduling import RescqScheduler
from repro.sim import SimulationConfig
from repro.sim.runner import aggregate_comparison
from repro.workloads import BenchmarkSpec, register_benchmark
from repro.workloads.qft import qft_circuit


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_register_and_get(self):
        registry = Registry("widget")
        registry.register("a", 1)
        assert registry.get("a") == 1
        assert "a" in registry and "b" not in registry

    def test_decorator_form_returns_object(self):
        registry = Registry("widget")

        @registry.register("cls")
        class Widget:
            pass

        assert registry.get("cls") is Widget
        assert Widget.__name__ == "Widget"

    def test_duplicate_name_rejected(self):
        registry = Registry("widget")
        registry.register("a", 1)
        with pytest.raises(DuplicateEntryError) as excinfo:
            registry.register("a", 2)
        assert "duplicate widget name 'a'" in str(excinfo.value)

    def test_unknown_name_lists_known(self):
        registry = Registry("widget")
        registry.register("alpha", 1)
        registry.register("beta", 2)
        with pytest.raises(UnknownEntryError) as excinfo:
            registry.get("gamma")
        message = str(excinfo.value)
        assert "gamma" in message and "alpha" in message and "beta" in message

    def test_unknown_name_is_a_key_error(self):
        with pytest.raises(KeyError):
            Registry("widget").get("missing")

    def test_names_sorted(self):
        registry = Registry("widget")
        for name in ("zeta", "alpha", "mid"):
            registry.register(name, name)
        assert registry.names() == ["alpha", "mid", "zeta"]
        assert [name for name, _entry in registry.items()] == registry.names()

    def test_invalid_name_rejected(self):
        with pytest.raises(Exception):
            Registry("widget").register("", 1)

    def test_create_calls_factory(self):
        registry = Registry("factory")
        registry.register("list", list)
        assert registry.create("list", "ab") == ["a", "b"]


class TestBuiltinRegistries:
    def test_schedulers_registered(self):
        assert SCHEDULERS.names() == ["autobraid", "greedy", "rescq"]
        assert isinstance(SCHEDULERS.create("rescq"), RescqScheduler)

    def test_benchmarks_cover_table3(self):
        assert len(BENCHMARKS) >= 23
        assert "qft_n18" in BENCHMARKS and "VQE_n13" in BENCHMARKS

    def test_layouts_cover_star_variants(self):
        assert LAYOUTS.names() == ["compact", "compressed", "star"]

    def test_sweep_axes_registered(self):
        assert SWEEP_AXES.names() == ["compression", "distance", "error-rate",
                                      "mst-period"]

    def test_get_axis_by_parameter_name(self):
        assert get_axis("physical_error_rate").name == "error-rate"
        assert get_axis("distance").parameter == "distance"
        with pytest.raises(UnknownEntryError):
            get_axis("no_such_axis")

    def test_register_custom_benchmark_and_duplicate(self):
        name = "unit_test_bench_n4"
        if name not in BENCHMARKS:
            register_benchmark(BenchmarkSpec(
                name=name, suite="test", num_qubits=4, paper_rz=0,
                paper_cnot=0, builder=lambda: qft_circuit(4)))
        assert BENCHMARKS.get(name).build().num_qubits == 4
        with pytest.raises(DuplicateEntryError):
            register_benchmark(BenchmarkSpec(
                name=name, suite="test", num_qubits=4, paper_rz=0,
                paper_cnot=0, builder=lambda: qft_circuit(4)))


# ---------------------------------------------------------------------------
# ExperimentSpec
# ---------------------------------------------------------------------------

def small_spec(**overrides):
    payload = dict(name="unit", benchmarks=("VQE_n13",),
                   schedulers=("autobraid", "rescq"), seeds=1)
    payload.update(overrides)
    return ExperimentSpec(**payload)


class TestExperimentSpec:
    def test_round_trip_dict(self):
        spec = small_spec(config={"distance": 9},
                          grid={"mst_period": (25, 50)},
                          compression=0.25, layout_seed=13)
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_round_trip_json(self):
        spec = small_spec(grid={"physical_error_rate": (1e-3, 1e-4)})
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_round_trip_file(self, tmp_path):
        spec = small_spec(seeds=(3, 7))
        path = tmp_path / "spec.json"
        spec.save(path)
        assert ExperimentSpec.load(path) == spec

    def test_seed_count_normalises_to_range(self):
        assert small_spec(seeds=3).seeds == (0, 1, 2)
        assert small_spec(seeds=[5, 2]).seeds == (5, 2)

    def test_list_vs_tuple_spelling_is_equal(self):
        assert small_spec() == ExperimentSpec(
            name="unit", benchmarks=["VQE_n13"],
            schedulers=["autobraid", "rescq"], seeds=[0])

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(SpecValidationError) as excinfo:
            ExperimentSpec.from_dict({"benchmarks": ["VQE_n13"],
                                      "shedulers": ["rescq"]})
        assert "shedulers" in str(excinfo.value)

    def test_from_dict_requires_benchmarks(self):
        with pytest.raises(SpecValidationError):
            ExperimentSpec.from_dict({"schedulers": ["rescq"]})

    @pytest.mark.parametrize("overrides,needle", [
        (dict(benchmarks=()), "no benchmarks"),
        (dict(benchmarks=("nope_n99",)), "nope_n99"),
        (dict(schedulers=("warp",)), "warp"),
        (dict(layout="donut"), "donut"),
        (dict(config={"quux": 1}), "quux"),
        (dict(grid={"distance": ()}), "no values"),
        (dict(config={"distance": 9}, grid={"distance": (5, 7)}), "both"),
        (dict(compression=1.5), "compression"),
        (dict(compression="lots"), "number"),
        (dict(grid={"distance": ("seven",)}), "non-numeric"),
        (dict(layout_seed="x"), "layout_seed"),
        (dict(config={"distance": 4}), "SimulationConfig"),
    ])
    def test_validation_errors_are_actionable(self, overrides, needle):
        with pytest.raises(SpecValidationError) as excinfo:
            small_spec(**overrides).validate()
        assert needle in str(excinfo.value)

    def test_seeds_must_be_integers(self):
        with pytest.raises(SpecValidationError):
            small_spec(seeds=(1, "two")).validate()

    def test_grid_points_product_order(self):
        spec = small_spec(grid={"distance": (5, 7), "mst_period": (25, 50)})
        points = spec.grid_points()
        assert points == [
            {"distance": 5, "mst_period": 25},
            {"distance": 5, "mst_period": 50},
            {"distance": 7, "mst_period": 25},
            {"distance": 7, "mst_period": 50},
        ]

    def test_config_for_casts_axis_values(self):
        spec = small_spec(grid={"distance": (5.0,)})
        config = spec.config_for({"distance": 5.0})
        assert config.distance == 5 and isinstance(config.distance, int)

    def test_expand_tags_and_count(self):
        spec = small_spec(grid={"mst_period": (25, 50)}, seeds=2)
        jobs = spec.expand()
        assert len(jobs) == spec.job_count() == 1 * 2 * 2 * 2
        assert jobs[0].tags == {"mst_period": 25}
        assert jobs[-1].tags == {"mst_period": 50}
        # scheduler-major within a point, seeds ascending
        assert [job.seed for job in jobs[:4]] == [0, 1, 0, 1]

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        n_benchmarks=st.integers(min_value=1, max_value=3),
        schedulers=st.lists(st.sampled_from(["greedy", "autobraid", "rescq"]),
                            min_size=1, max_size=3, unique=True),
        axis_sizes=st.lists(st.integers(min_value=1, max_value=3),
                            min_size=0, max_size=2),
        n_seeds=st.integers(min_value=1, max_value=4),
    )
    def test_expansion_count_property(self, n_benchmarks, schedulers,
                                      axis_sizes, n_seeds):
        """len(expand()) == benchmarks x grid product x schedulers x seeds."""
        axis_names = ["mst_period", "distance"]
        grid = {}
        if axis_sizes and axis_sizes[0]:
            grid["mst_period"] = tuple((25, 50, 100)[:axis_sizes[0]])
        if len(axis_sizes) > 1 and axis_sizes[1]:
            grid["distance"] = tuple((5, 7, 9)[:axis_sizes[1]])
        benchmarks = ("VQE_n13", "qft_n18", "wstate_n27")[:n_benchmarks]
        spec = ExperimentSpec(benchmarks=benchmarks,
                              schedulers=tuple(schedulers),
                              grid=grid, seeds=n_seeds)
        expected = n_benchmarks * len(schedulers) * n_seeds
        for values in grid.values():
            expected *= len(values)
        jobs = spec.expand()
        assert len(jobs) == expected == spec.job_count()
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_describe_mentions_job_count(self):
        spec = small_spec(grid={"distance": (5, 7)})
        assert str(spec.job_count()) in spec.describe()


# ---------------------------------------------------------------------------
# ResultSet
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def sweep_results():
    spec = ExperimentSpec(name="rs", benchmarks=("VQE_n13",),
                          schedulers=("autobraid", "rescq"),
                          grid={"mst_period": (25, 50)}, seeds=2)
    return spec, run_experiment(spec)


class TestResultSet:
    def test_lengths_and_fields(self, sweep_results):
        spec, results = sweep_results
        assert len(results) == spec.job_count() == 8
        assert results.benchmarks() == ["VQE_n13"]
        assert results.parameters() == ["mst_period"]
        assert all(row.total_cycles > 0 for row in results)

    def test_filter_by_field_and_param(self, sweep_results):
        _spec, results = sweep_results
        rescq = results.filter(scheduler="rescq")
        assert len(rescq) == 4
        point = results.filter(scheduler="rescq", mst_period=25)
        assert len(point) == 2
        assert point.mean_cycles() > 0
        assert len(results.filter(lambda row: row.seed == 0)) == 4
        assert len(results.filter(scheduler="nope")) == 0

    def test_group_by_and_aggregate(self, sweep_results):
        _spec, results = sweep_results
        groups = results.group_by("scheduler", "mst_period")
        assert len(groups) == 4
        assert all(len(group) == 2 for group in groups.values())
        summary = results.aggregate("scheduler")
        assert [row["scheduler"] for row in summary] == ["autobraid", "rescq"]
        assert all(row["runs"] == 4 for row in summary)
        assert all(row["min_cycles"] <= row["mean_cycles"] <= row["max_cycles"]
                   for row in summary)

    def test_comparison_rows_match_legacy_aggregation(self):
        spec = small_spec(seeds=2)
        jobs = spec.expand()
        results = ExecutionEngine().run(jobs)
        legacy = aggregate_comparison(jobs, results)
        modern = ResultSet.from_jobs(jobs, results).comparison_rows()
        assert list(legacy) == list(modern)
        for name in legacy:
            assert legacy[name].mean_cycles == modern[name].mean_cycles
            assert legacy[name].min_cycles == modern[name].min_cycles
            assert legacy[name].max_cycles == modern[name].max_cycles
            assert legacy[name].runs == modern[name].runs

    def test_sweep_rows_order_and_values(self, sweep_results):
        _spec, results = sweep_results
        rows = results.sweep_rows("mst_period")
        assert [(row.value, row.scheduler) for row in rows] == [
            (25, "autobraid"), (25, "rescq"), (50, "autobraid"), (50, "rescq")]
        assert all(row.parameter == "mst_period" for row in rows)

    def test_grid_rows_round_like_sweep_rows(self, sweep_results):
        _spec, results = sweep_results
        grid = results.grid_rows(["mst_period"])
        sweep = [row.as_dict() for row in results.sweep_rows("mst_period")]
        assert grid == sweep

    def test_to_csv_and_json(self, sweep_results):
        _spec, results = sweep_results
        csv_text = results.to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == ("benchmark,scheduler,seed,mst_period,"
                            "total_cycles,idle_fraction")
        assert len(lines) == len(results) + 1
        rows = json.loads(results.to_json())
        assert len(rows) == len(results)
        assert rows[0]["benchmark"] == "VQE_n13"
        traced = json.loads(results.to_json(include_traces=True))
        assert "traces" in traced[0]["result"]

    def test_concatenation(self, sweep_results):
        _spec, results = sweep_results
        doubled = results + results
        assert len(doubled) == 2 * len(results)

    def test_unknown_key_is_actionable(self, sweep_results):
        _spec, results = sweep_results
        with pytest.raises(ValueError):
            results.group_by()
        with pytest.raises(KeyError) as excinfo:
            results.group_by("nope")
        assert "benchmark" in str(excinfo.value)


# ---------------------------------------------------------------------------
# Engines: serial, parallel and cached runs agree
# ---------------------------------------------------------------------------

class TestEngines:
    def test_build_engine_shapes(self, tmp_path):
        serial = build_engine()
        assert serial.cache is None
        cached = build_engine(jobs=1, cache=str(tmp_path / "cache"))
        assert cached.cache is not None
        parallel = build_engine(jobs=4)
        assert isinstance(parallel.executor, ParallelExecutor)
        with pytest.raises(ValueError):
            build_engine(jobs=-1)

    def test_parallel_run_matches_serial(self):
        spec = small_spec(seeds=2)
        serial = run_experiment(spec)
        parallel = run_experiment(
            spec, ExecutionEngine(executor=ParallelExecutor(max_workers=4)))
        assert [row.summary() for row in serial] == \
               [row.summary() for row in parallel]

    def test_cached_rerun_executes_nothing(self, tmp_path):
        spec = small_spec()
        engine = build_engine(cache=str(tmp_path / "cache"))
        first = run_experiment(spec, engine)
        assert engine.stats.executed == len(first)
        second = run_experiment(spec, engine)
        assert engine.stats.executed == len(first)  # unchanged: all hits
        assert [row.summary() for row in first] == \
               [row.summary() for row in second]
