"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import SimulationConfig, default_layout
from repro.circuits import (
    Circuit,
    Gate,
    GateDependencyGraph,
    GateType,
    from_artifact_format,
    to_artifact_format,
    transpile_to_clifford_rz,
)
from repro.fabric import StarVariant, compress_layout, star_layout
from repro.fabric.compression import ancilla_subgraph_connected
from repro.rus import InjectionModel, PreparationModel, expected_injections
from repro.scheduling import ActivityTracker, AncillaMst, RescqScheduler
from repro.scheduling.static import AutoBraidScheduler


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

def random_circuits(min_qubits=2, max_qubits=6, max_gates=25):
    """Strategy producing random Clifford+Rz circuits."""

    @st.composite
    def build(draw):
        num_qubits = draw(st.integers(min_qubits, max_qubits))
        num_gates = draw(st.integers(1, max_gates))
        circuit = Circuit(num_qubits, name="random")
        for _ in range(num_gates):
            kind = draw(st.sampled_from(["rz", "h", "x", "cnot"]))
            if kind == "cnot" and num_qubits >= 2:
                control = draw(st.integers(0, num_qubits - 1))
                target = draw(st.integers(0, num_qubits - 1).filter(
                    lambda t: t != control))
                circuit.cnot(control, target)
            elif kind == "rz":
                qubit = draw(st.integers(0, num_qubits - 1))
                angle = draw(st.floats(0.05, 3.0, allow_nan=False))
                circuit.rz(qubit, angle)
            elif kind == "h":
                circuit.h(draw(st.integers(0, num_qubits - 1)))
            else:
                circuit.x(draw(st.integers(0, num_qubits - 1)))
        return circuit

    return build()


# ---------------------------------------------------------------------------
# Circuit-level properties
# ---------------------------------------------------------------------------

class TestCircuitProperties:
    @given(random_circuits())
    @settings(max_examples=40, deadline=None)
    def test_artifact_format_round_trip(self, circuit):
        text = to_artifact_format(circuit)
        parsed = from_artifact_format(text, num_qubits=circuit.num_qubits)
        assert len(parsed) == len(circuit)
        for a, b in zip(parsed, circuit):
            assert a.gate_type is b.gate_type
            assert a.qubits == b.qubits

    @given(random_circuits())
    @settings(max_examples=40, deadline=None)
    def test_depth_never_exceeds_gate_count(self, circuit):
        assert 0 <= circuit.depth() <= len(circuit)

    @given(random_circuits())
    @settings(max_examples=40, deadline=None)
    def test_layers_partition_the_schedulable_gates(self, circuit):
        layers = circuit.layers()
        flattened = [index for layer in layers for index in layer]
        assert sorted(flattened) == list(range(len(circuit)))
        # Within a layer no two gates share a qubit.
        for layer in layers:
            seen = set()
            for index in layer:
                qubits = set(circuit[index].qubits)
                assert not (qubits & seen)
                seen |= qubits

    @given(random_circuits())
    @settings(max_examples=40, deadline=None)
    def test_dag_release_order_is_a_valid_topological_execution(self, circuit):
        dag = GateDependencyGraph(circuit)
        executed = []
        while not dag.all_completed:
            ready = dag.ready_by_priority()
            assert ready, "DAG starved before completing all gates"
            gate = ready[0]
            executed.append(gate)
            dag.complete(gate)
        assert len(executed) == len(dag)
        position = {gate: i for i, gate in enumerate(executed)}
        for gate in dag.nodes:
            for successor in dag.successors(gate):
                assert position[gate] < position[successor]


# ---------------------------------------------------------------------------
# Transpilation properties
# ---------------------------------------------------------------------------

_HIGH_LEVEL = [GateType.RX, GateType.RY, GateType.RZZ, GateType.CZ,
               GateType.SWAP, GateType.CCX]


class TestTranspileProperties:
    @given(st.lists(st.tuples(st.sampled_from(_HIGH_LEVEL),
                              st.floats(0.1, 3.0)), min_size=1, max_size=15))
    @settings(max_examples=40, deadline=None)
    def test_transpiled_circuits_contain_only_basis_gates(self, spec):
        circuit = Circuit(4)
        for gtype, angle in spec:
            if gtype is GateType.CCX:
                circuit.append(Gate(gtype, (0, 1, 2)))
            elif gtype.num_qubits == 2:
                circuit.append(Gate(gtype, (0, 1),
                                    angle=angle if gtype is GateType.RZZ else None))
            else:
                circuit.append(Gate(gtype, (0,), angle=angle))
        lowered = transpile_to_clifford_rz(circuit)
        allowed = {GateType.RZ, GateType.H, GateType.X, GateType.CNOT}
        assert all(gate.gate_type in allowed for gate in lowered)


# ---------------------------------------------------------------------------
# Stochastic model properties
# ---------------------------------------------------------------------------

class TestRusProperties:
    @given(st.sampled_from([3, 5, 7, 9, 11, 13]),
           st.floats(1e-5, 5e-3))
    @settings(max_examples=60, deadline=None)
    def test_preparation_probabilities_and_expectations_are_sane(self, d, p):
        model = PreparationModel(d, p)
        assert 0.0 < model.attempt_success_probability <= 1.0
        assert model.expected_attempts() >= 1.0
        assert model.expected_cycles() > 0.0
        assert model.expected_cycles_parallel(4) <= model.expected_cycles() + 1e-9

    @given(st.floats(0.01, 3.1))
    @settings(max_examples=60, deadline=None)
    def test_expected_injections_never_exceed_two(self, theta):
        assert 0.0 <= expected_injections(theta) <= 2.0 + 1e-9

    @given(st.integers(0, 2 ** 32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_injection_sampling_is_positive_and_bounded(self, seed):
        model = InjectionModel()
        rng = np.random.default_rng(seed)
        count = model.sample_injection_count(rng, theta=0.37)
        assert 1 <= count <= model.max_doublings


# ---------------------------------------------------------------------------
# Fabric properties
# ---------------------------------------------------------------------------

class TestFabricProperties:
    @given(st.integers(2, 30))
    @settings(max_examples=30, deadline=None)
    def test_star_layout_invariants(self, num_qubits):
        layout = star_layout(num_qubits, StarVariant.STAR)
        assert layout.num_data_qubits == num_qubits
        # Non-square counts add whole filler blocks of ancilla.
        assert layout.num_ancilla >= 3 * num_qubits
        assert layout.every_data_qubit_has_ancilla_neighbor()
        assert ancilla_subgraph_connected(layout)

    @given(st.integers(4, 20), st.floats(0.0, 1.0), st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_compression_preserves_invariants(self, num_qubits, fraction, seed):
        layout = star_layout(num_qubits, StarVariant.STAR)
        compressed, report = compress_layout(layout, fraction, seed=seed)
        assert ancilla_subgraph_connected(compressed)
        assert compressed.every_data_qubit_has_ancilla_neighbor()
        assert compressed.num_ancilla <= layout.num_ancilla
        assert 0.0 <= report.achieved_fraction <= 1.0

    @given(st.integers(4, 16), st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_mst_paths_stay_on_ancillas(self, num_qubits, seed):
        layout = star_layout(num_qubits, StarVariant.STAR)
        rng = np.random.default_rng(seed)
        activity = {pos: float(rng.random())
                    for pos in layout.ancilla_positions()}
        mst = AncillaMst(layout, activity)
        ancillas = layout.ancilla_positions()
        start = ancillas[int(rng.integers(len(ancillas)))]
        goal = ancillas[int(rng.integers(len(ancillas)))]
        path = mst.path(start, goal)
        assert path is not None
        assert all(layout.is_ancilla(pos) for pos in path)


# ---------------------------------------------------------------------------
# Activity tracker properties
# ---------------------------------------------------------------------------

class TestActivityProperties:
    @given(st.lists(st.tuples(st.integers(0, 200), st.integers(1, 20)),
                    min_size=0, max_size=30),
           st.integers(1, 100))
    @settings(max_examples=50, deadline=None)
    def test_activity_always_within_unit_interval(self, intervals, window):
        tracker = ActivityTracker(window=window)
        now = 0
        for start, length in intervals:
            tracker.record_busy((0, 0), start, start + length)
            now = max(now, start + length)
        assert 0.0 <= tracker.activity((0, 0), now=now) <= 1.0


# ---------------------------------------------------------------------------
# Scheduler end-to-end properties
# ---------------------------------------------------------------------------

class TestSchedulerProperties:
    @given(random_circuits(max_qubits=5, max_gates=15),
           st.integers(0, 1000))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_rescq_executes_every_gate_and_respects_dependencies(self, circuit,
                                                                 seed):
        config = SimulationConfig(mst_period=10, mst_latency=10)
        layout = default_layout(circuit)
        result = RescqScheduler().run(circuit, layout, config, seed=seed)
        filtered = circuit.without_free_gates()
        assert result.num_gates == len(filtered)
        end_by_gate = {t.gate_index: t.end_cycle for t in result.traces}
        scheduled_by_gate = {t.gate_index: t.scheduled_cycle
                             for t in result.traces}
        dag = GateDependencyGraph(filtered)
        for gate in dag.nodes:
            for successor in dag.successors(gate):
                # A successor is only *released* once its predecessor retired
                # (its preparation may start earlier - that is the lookahead
                # optimisation) and must retire strictly later.
                assert scheduled_by_gate[successor] >= end_by_gate[gate]
                assert end_by_gate[successor] > end_by_gate[gate]

    @given(random_circuits(max_qubits=4, max_gates=12), st.integers(0, 100))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_clifford_only_circuits_are_deterministic(self, circuit, seed):
        """With every rotation snapped to a Clifford angle there is no
        stochastic protocol left, so both schedulers must be seed-independent
        and report zero injections."""
        clifford = Circuit(circuit.num_qubits, name="clifford")
        for gate in circuit:
            if gate.gate_type is GateType.RZ:
                clifford.rz(gate.qubits[0], math.pi / 2)
            else:
                clifford.append(gate)
        config = SimulationConfig(mst_period=10, mst_latency=10)
        layout = default_layout(clifford)
        for scheduler in (RescqScheduler(), AutoBraidScheduler()):
            first = scheduler.run(clifford, layout, config, seed=seed)
            second = scheduler.run(clifford, layout, config, seed=seed + 1)
            assert first.total_cycles == second.total_cycles
            assert first.total_injections() == 0
