"""Unit tests for the gate IR."""

import math

import pytest

from repro.circuits import (
    Gate,
    GateType,
    cnot,
    doublings_until_clifford,
    h,
    is_clifford_angle,
    rz,
    t,
    x,
)


class TestGateConstruction:
    def test_rz_requires_angle(self):
        with pytest.raises(ValueError):
            Gate(GateType.RZ, (0,))

    def test_rz_constructor(self):
        gate = rz(2, 0.5)
        assert gate.gate_type is GateType.RZ
        assert gate.qubits == (2,)
        assert gate.angle == 0.5

    def test_cnot_control_target(self):
        gate = cnot(3, 5)
        assert gate.control == 3
        assert gate.target == 5
        assert gate.is_two_qubit

    def test_wrong_operand_count_rejected(self):
        with pytest.raises(ValueError):
            Gate(GateType.CNOT, (1,))
        with pytest.raises(ValueError):
            Gate(GateType.H, (1, 2))

    def test_duplicate_operands_rejected(self):
        with pytest.raises(ValueError):
            Gate(GateType.CNOT, (1, 1))

    def test_negative_qubit_rejected(self):
        with pytest.raises(ValueError):
            Gate(GateType.H, (-1,))

    def test_single_qubit_gate_has_no_control(self):
        with pytest.raises(AttributeError):
            _ = h(0).control

    def test_qubits_normalised_to_tuple(self):
        gate = Gate(GateType.CNOT, [0, 1])
        assert isinstance(gate.qubits, tuple)

    def test_gates_are_hashable_value_objects(self):
        assert rz(0, 0.5) == rz(0, 0.5)
        assert rz(0, 0.5) != rz(0, 0.6)
        assert len({cnot(0, 1), cnot(0, 1), cnot(1, 0)}) == 2


class TestCliffordClassification:
    @pytest.mark.parametrize("theta", [0.0, math.pi / 2, math.pi, -math.pi / 2,
                                       2 * math.pi, 3 * math.pi / 2])
    def test_clifford_angles(self, theta):
        assert is_clifford_angle(theta)

    @pytest.mark.parametrize("theta", [math.pi / 4, 0.3, 1.0, math.pi / 3])
    def test_non_clifford_angles(self, theta):
        assert not is_clifford_angle(theta)

    def test_t_gate_needs_one_doubling(self):
        # T = Rz(pi/4); one doubling gives Rz(pi/2) = S, a Clifford.
        assert doublings_until_clifford(math.pi / 4) == 1

    def test_sqrt_t_needs_two_doublings(self):
        assert doublings_until_clifford(math.pi / 8) == 2

    def test_generic_angle_hits_horizon(self):
        assert doublings_until_clifford(0.3, max_doublings=40) == 40

    def test_clifford_angle_needs_zero_doublings(self):
        assert doublings_until_clifford(math.pi / 2) == 0

    def test_rz_is_rotation_only_when_non_clifford(self):
        assert rz(0, 0.3).is_rotation
        assert not rz(0, math.pi).is_rotation

    def test_clifford_rz_is_free(self):
        assert rz(0, math.pi / 2).is_free
        assert not rz(0, 0.4).is_free

    def test_pauli_gates_are_free(self):
        assert x(0).is_free
        assert not h(0).is_free
        assert not cnot(0, 1).is_free

    def test_t_gate_is_not_clifford(self):
        assert not t(0).is_clifford
        assert h(0).is_clifford
