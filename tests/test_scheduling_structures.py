"""Tests for activity tracking, ancilla queues and MST maintenance."""

import networkx as nx
import pytest

from repro.fabric import StarVariant, star_layout
from repro.scheduling import (
    ActivityTracker,
    AncillaMst,
    AncillaRole,
    AsyncMstPipeline,
    IncrementalMst,
    QueueEntry,
    QueueSet,
    build_activity_graph,
)


class TestActivityTracker:
    def test_activity_zero_before_any_work(self):
        tracker = ActivityTracker(window=100)
        assert tracker.activity((0, 0), now=50) == 0.0

    def test_activity_ratio(self):
        tracker = ActivityTracker(window=100)
        tracker.record_busy((0, 0), 0, 30)
        assert tracker.activity((0, 0), now=100) == pytest.approx(0.3)

    def test_old_intervals_fall_out_of_window(self):
        tracker = ActivityTracker(window=10)
        tracker.record_busy((0, 0), 0, 5)
        assert tracker.activity((0, 0), now=100) == 0.0

    def test_partial_overlap_with_window(self):
        tracker = ActivityTracker(window=10)
        tracker.record_busy((0, 0), 0, 15)
        # window is [10, 20): 5 busy cycles
        assert tracker.activity((0, 0), now=20) == pytest.approx(0.5)

    def test_activity_clamped_to_one(self):
        tracker = ActivityTracker(window=10)
        tracker.record_busy((0, 0), 0, 10)
        tracker.record_busy((0, 0), 0, 10)
        assert tracker.activity((0, 0), now=10) == 1.0

    def test_early_window_uses_elapsed_time(self):
        tracker = ActivityTracker(window=100)
        tracker.record_busy((0, 0), 0, 5)
        assert tracker.activity((0, 0), now=10) == pytest.approx(0.5)

    def test_empty_interval_ignored(self):
        tracker = ActivityTracker(window=10)
        tracker.record_busy((0, 0), 5, 5)
        assert tracker.activity((0, 0), now=10) == 0.0

    def test_snapshot(self):
        tracker = ActivityTracker(window=10)
        tracker.record_busy((0, 0), 0, 10)
        snap = tracker.snapshot([(0, 0), (0, 1)], now=10)
        assert snap[(0, 0)] == 1.0 and snap[(0, 1)] == 0.0

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            ActivityTracker(window=0)


class TestQueues:
    def test_enqueue_and_head(self):
        queues = QueueSet([(0, 0), (0, 1)])
        entry = queues.enqueue((0, 0), QueueEntry(5, "rz", (1,), AncillaRole.PREPARE))
        assert queues[(0, 0)].head is entry
        assert queues[(0, 0)].is_at_head(5)
        assert not queues[(0, 1)].is_at_head(5)

    def test_sequence_numbers_are_monotonic(self):
        queues = QueueSet([(0, 0)])
        first = queues.enqueue((0, 0), QueueEntry(1, "rz", (0,), AncillaRole.PREPARE))
        second = queues.enqueue((0, 0), QueueEntry(2, "cnot", (0, 1),
                                                   AncillaRole.ROUTE))
        assert second.sequence > first.sequence

    def test_seniority_order_preserved(self):
        queues = QueueSet([(0, 0)])
        queues.enqueue((0, 0), QueueEntry(1, "rz", (0,), AncillaRole.PREPARE))
        queues.enqueue((0, 0), QueueEntry(2, "cnot", (0, 1), AncillaRole.ROUTE))
        assert [e.gate_index for e in queues[(0, 0)]] == [1, 2]

    def test_remove_gate_everywhere(self):
        queues = QueueSet([(0, 0), (0, 1)])
        for pos in ((0, 0), (0, 1)):
            queues.enqueue(pos, QueueEntry(7, "rz", (0,), AncillaRole.PREPARE))
        removed = queues.remove_gate_everywhere(7)
        assert removed == 2
        assert queues.total_enqueued() == 0

    def test_in_place_angle_level_update(self):
        queues = QueueSet([(0, 0)])
        queues.enqueue((0, 0), QueueEntry(3, "rz", (0,), AncillaRole.PREPARE))
        updated = queues[(0, 0)].update_angle_level(3, 2)
        assert updated == 1
        assert queues[(0, 0)].head.angle_level == 2
        # A lower level never overwrites a higher one.
        assert queues[(0, 0)].update_angle_level(3, 1) == 0

    def test_pop_from_empty_raises(self):
        queues = QueueSet([(0, 0)])
        with pytest.raises(IndexError):
            queues[(0, 0)].pop_head()

    def test_position_of_gate(self):
        queues = QueueSet([(0, 0)])
        queues.enqueue((0, 0), QueueEntry(1, "rz", (0,), AncillaRole.PREPARE))
        queues.enqueue((0, 0), QueueEntry(2, "h", (1,), AncillaRole.HELPER))
        assert queues[(0, 0)].position_of_gate(2) == 1
        assert queues[(0, 0)].position_of_gate(9) is None


class TestMst:
    def layout(self):
        return star_layout(9, StarVariant.STAR)

    def test_activity_graph_covers_all_ancillas(self):
        layout = self.layout()
        graph = build_activity_graph(layout, {})
        assert graph.number_of_nodes() == layout.num_ancilla
        assert nx.is_connected(graph)

    def test_mst_is_spanning_tree(self):
        layout = self.layout()
        mst = AncillaMst(layout, {})
        assert mst.tree.number_of_edges() == layout.num_ancilla - 1
        assert nx.is_connected(mst.tree)

    def test_path_query_endpoints(self):
        layout = self.layout()
        mst = AncillaMst(layout, {})
        start, goal = (0, 1), (4, 5)
        path = mst.path(start, goal)
        assert path[0] == start and path[-1] == goal
        # every hop is grid-adjacent
        for a, b in zip(path, path[1:]):
            assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1

    def test_path_to_unknown_node_is_none(self):
        layout = self.layout()
        mst = AncillaMst(layout, {})
        assert mst.path((0, 1), (99, 99)) is None

    def test_mst_avoids_high_activity_edges(self):
        """The minimax property: the bottleneck activity along the MST path is
        never worse than the direct (shortest) route through a hot ancilla."""
        layout = self.layout()
        activity = {pos: 0.0 for pos in layout.ancilla_positions()}
        hot = (2, 1)
        activity[hot] = 1.0
        mst = AncillaMst(layout, activity)
        # (1, 1) and (3, 1) have a direct route through the hot tile and a
        # detour around it; the minimax tree must pick the detour.
        bottleneck = mst.bottleneck_activity((1, 1), (3, 1))
        assert bottleneck < 1.0

    def test_async_pipeline_latency(self):
        layout = self.layout()
        pipeline = AsyncMstPipeline(layout, period=25, latency=50)
        pipeline.tick(0, {})
        assert pipeline.current is None
        pipeline.tick(25, {})
        assert pipeline.current is None  # first result lands at t=50
        pipeline.tick(50, {})
        assert pipeline.current is not None
        assert pipeline.current.snapshot_cycle == 0
        assert pipeline.computations_started >= 2

    def test_async_pipeline_uses_stale_snapshot(self):
        layout = self.layout()
        pipeline = AsyncMstPipeline(layout, period=10, latency=30)
        pipeline.tick(0, {pos: 0.0 for pos in layout.ancilla_positions()})
        for cycle in range(10, 80, 10):
            pipeline.tick(cycle, {pos: 0.9 for pos in layout.ancilla_positions()})
        # The currently available tree corresponds to a snapshot taken
        # latency cycles before it became available.
        assert pipeline.current.snapshot_cycle <= 80 - 30

    def test_pipeline_rejects_bad_parameters(self):
        layout = self.layout()
        with pytest.raises(ValueError):
            AsyncMstPipeline(layout, period=0, latency=10)
        with pytest.raises(ValueError):
            AsyncMstPipeline(layout, period=10, latency=-1)

    def test_incremental_update_matches_recompute(self):
        layout = self.layout()
        activity = {pos: 0.1 for pos in layout.ancilla_positions()}
        incremental = IncrementalMst(layout, activity)
        edges = list(incremental.graph.edges())[:20]
        import numpy as np
        rng = np.random.default_rng(0)
        for u, v in edges:
            incremental.update_edge(u, v, float(rng.random()))
            assert incremental.matches_full_recompute()

    def test_incremental_update_unknown_edge_rejected(self):
        layout = self.layout()
        incremental = IncrementalMst(layout)
        with pytest.raises(KeyError):
            incremental.update_edge((0, 1), (5, 5), 0.3)
