"""Tests for lattice-surgery costs, orientation tracking and routing."""

import pytest

from repro.fabric import Edge, StarVariant, star_layout
from repro.lattice import (
    DEFAULT_COSTS,
    OrientationTracker,
    RoutePlan,
    bfs_ancilla_path,
    enumerate_cnot_plans,
    find_shortest_cnot_plan,
)


class TestCosts:
    def test_defaults_match_paper(self):
        assert DEFAULT_COSTS.cnot_cycles == 2
        assert DEFAULT_COSTS.edge_rotation_cycles == 3
        assert DEFAULT_COSTS.zz_injection_cycles == 1
        assert DEFAULT_COSTS.cnot_injection_cycles == 2

    def test_injection_cycles_lookup(self):
        assert DEFAULT_COSTS.injection_cycles("zz") == 1
        assert DEFAULT_COSTS.injection_cycles("cnot") == 2
        with pytest.raises(ValueError):
            DEFAULT_COSTS.injection_cycles("teleport")


class TestOrientation:
    def test_default_orientation(self):
        tracker = OrientationTracker(2)
        assert tracker.edge_pauli(0, Edge.NORTH) == "Z"
        assert tracker.edge_pauli(0, Edge.EAST) == "X"

    def test_rotation_swaps_edges(self):
        tracker = OrientationTracker(1)
        tracker.rotate(0)
        assert tracker.edge_pauli(0, Edge.NORTH) == "X"
        assert tracker.edge_pauli(0, Edge.EAST) == "Z"
        tracker.rotate(0)
        assert tracker.edge_pauli(0, Edge.NORTH) == "Z"

    def test_edges_exposing(self):
        tracker = OrientationTracker(1)
        assert set(tracker.edges_exposing(0, "Z")) == {Edge.NORTH, Edge.SOUTH}
        assert set(tracker.edges_exposing(0, "X")) == {Edge.EAST, Edge.WEST}

    def test_neighbors_on_pauli_edge(self):
        layout = star_layout(4, StarVariant.STAR)
        tracker = OrientationTracker(4)
        # Qubit 3 sits at (2, 2): it has ancilla neighbours north and west too.
        z_neighbors = tracker.neighbors_on_pauli_edge(layout, 3, "Z")
        assert all(layout.is_ancilla(pos) for pos in z_neighbors)
        assert all(pos[1] == 2 for pos in z_neighbors)  # directly above/below


class TestBfsPath:
    def test_path_between_adjacent_ancillas(self):
        layout = star_layout(4, StarVariant.STAR)
        path = bfs_ancilla_path(layout, (0, 1), (1, 1))
        assert path == [(0, 1), (1, 1)]

    def test_path_avoids_blocked_tiles(self):
        layout = star_layout(9, StarVariant.STAR)
        free_path = bfs_ancilla_path(layout, (1, 1), (3, 1))
        blocked = bfs_ancilla_path(layout, (1, 1), (3, 1), blocked={(2, 1)})
        assert free_path is not None and blocked is not None
        assert (2, 1) not in blocked
        assert len(blocked) >= len(free_path)

    def test_no_path_returns_none(self):
        layout = star_layout(4, StarVariant.STAR)
        blocked = {(1, 0), (1, 1), (0, 1), (1, 2), (1, 3)}
        assert bfs_ancilla_path(layout, (0, 1), (3, 3), blocked=blocked) is None

    def test_endpoints_must_be_ancilla(self):
        layout = star_layout(4, StarVariant.STAR)
        assert bfs_ancilla_path(layout, (0, 0), (0, 1)) is None

    def test_same_start_and_goal(self):
        layout = star_layout(4, StarVariant.STAR)
        assert bfs_ancilla_path(layout, (0, 1), (0, 1)) == [(0, 1)]


class TestCnotPlans:
    def test_plans_exist_for_every_pair(self):
        layout = star_layout(9, StarVariant.STAR)
        tracker = OrientationTracker(9)
        for control in range(9):
            for target in range(9):
                if control == target:
                    continue
                plans = enumerate_cnot_plans(layout, tracker, control, target)
                assert plans, (control, target)

    def test_rotation_free_plan_found_for_aligned_pair(self):
        layout = star_layout(9, StarVariant.STAR)
        tracker = OrientationTracker(9)
        # qubits 0 and 3 are vertically adjacent blocks: control Z edge faces
        # south, target X edge faces east/west — a 2-cycle plan must exist.
        plan = find_shortest_cnot_plan(layout, tracker, 3, 4)
        assert plan is not None
        assert plan.duration() >= 2

    def test_duration_model(self):
        plan = RoutePlan(0, 1, ((0, 1),), control_rotation=True,
                         target_rotation=True,
                         rotation_ancilla_control=(0, 1),
                         rotation_ancilla_target=(0, 1))
        # Shared rotation ancilla: rotations serialise -> 3 + 3 + 2 = 8.
        assert plan.duration() == 8
        parallel = RoutePlan(0, 1, ((0, 1), (1, 1)), control_rotation=True,
                             target_rotation=True,
                             rotation_ancilla_control=(0, 1),
                             rotation_ancilla_target=(1, 1))
        assert parallel.duration() == 5

    def test_plan_without_rotations_takes_two_cycles(self):
        plan = RoutePlan(0, 1, ((0, 1), (1, 1)))
        assert plan.duration() == 2
        assert plan.num_rotations == 0

    def test_ancillas_used_includes_rotation_helpers(self):
        plan = RoutePlan(0, 1, ((0, 1),), control_rotation=True,
                         rotation_ancilla_control=(1, 0))
        assert set(plan.ancillas_used) == {(0, 1), (1, 0)}

    def test_blocked_attachments_are_skipped(self):
        layout = star_layout(4, StarVariant.STAR)
        tracker = OrientationTracker(4)
        all_plans = enumerate_cnot_plans(layout, tracker, 0, 3)
        attachments = {plan.path[0] for plan in all_plans}
        blocked_tile = next(iter(attachments))
        remaining = enumerate_cnot_plans(layout, tracker, 0, 3,
                                         blocked={blocked_tile})
        assert all(blocked_tile not in plan.path for plan in remaining)

    def test_shortest_plan_prefers_no_rotation(self):
        layout = star_layout(9, StarVariant.STAR)
        tracker = OrientationTracker(9)
        plan = find_shortest_cnot_plan(layout, tracker, 0, 1)
        best_possible = min(p.duration() for p in
                            enumerate_cnot_plans(layout, tracker, 0, 1))
        assert plan.duration() == best_possible
