"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "qft_n18"])
        assert args.benchmark == "qft_n18"
        assert args.distance == 7
        assert args.seeds == 3

    def test_sweep_kinds(self):
        args = build_parser().parse_args(["sweep", "mst-period", "qft_n18"])
        assert args.kind == "mst-period"

    def test_version_reports_package_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("rescq ")
        assert out.strip().split()[-1][0].isdigit()


class TestCommands:
    def test_list_prints_table3(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "qft_n160" in out
        assert "paper_rz" in out

    def test_list_is_sorted_by_name(self, capsys):
        assert main(["list"]) == 0
        lines = capsys.readouterr().out.splitlines()
        names = [line.split()[0] for line in lines[3:] if line.strip()]
        assert names == sorted(names)

    def test_prep_prints_figure16_table(self, capsys):
        assert main(["prep", "--distances", "5,7", "--error-rates", "1e-3"]) == 0
        out = capsys.readouterr().out
        assert "expected_attempts" in out
        assert out.count("\n") >= 4

    def test_run_small_benchmark(self, capsys):
        code = main(["run", "VQE_n13", "--schedulers", "autobraid,rescq",
                     "--seeds", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "rescq" in out and "autobraid" in out
        assert "mean_cycles" in out

    def test_run_rejects_unknown_scheduler(self):
        with pytest.raises(SystemExit):
            main(["run", "VQE_n13", "--schedulers", "magic"])

    def test_run_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "not_a_benchmark"])
        assert "not_a_benchmark" in str(excinfo.value)


class TestExpCommand:
    def spec_payload(self):
        return {
            "name": "cli-exp-test",
            "benchmarks": ["VQE_n13"],
            "schedulers": ["autobraid", "rescq"],
            "seeds": 1,
        }

    def write_spec(self, tmp_path, payload):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(payload))
        return str(path)

    def test_exp_runs_spec_file(self, tmp_path, capsys):
        assert main(["exp", self.write_spec(tmp_path, self.spec_payload())]) == 0
        out = capsys.readouterr().out
        assert "rescq" in out and "autobraid" in out
        assert "[exec] jobs=2 executed=2" in out

    def test_exp_matches_equivalent_run_byte_for_byte(self, tmp_path, capsys):
        payload = self.spec_payload()
        payload["name"] = "VQE_n13"
        assert main(["exp", self.write_spec(tmp_path, payload)]) == 0
        exp_out = capsys.readouterr().out
        assert main(["run", "VQE_n13", "--schedulers", "autobraid,rescq",
                     "--seeds", "1"]) == 0
        run_out = capsys.readouterr().out
        assert exp_out == run_out

    def test_exp_writes_csv_and_json(self, tmp_path, capsys):
        spec = self.write_spec(tmp_path, self.spec_payload())
        csv_path = tmp_path / "rows.csv"
        json_path = tmp_path / "rows.json"
        assert main(["exp", spec, "--csv", str(csv_path),
                     "--json", str(json_path)]) == 0
        capsys.readouterr()
        header = csv_path.read_text().splitlines()[0]
        assert header.startswith("benchmark,scheduler,seed")
        rows = json.loads(json_path.read_text())
        assert len(rows) == 2
        assert {row["scheduler"] for row in rows} == {"autobraid", "rescq"}

    def test_exp_cached_rerun_executes_zero_jobs(self, tmp_path, capsys):
        spec = self.write_spec(tmp_path, self.spec_payload())
        cache = str(tmp_path / "cache")
        assert main(["exp", spec, "--cache", cache]) == 0
        first = capsys.readouterr().out
        assert main(["exp", spec, "--cache", cache]) == 0
        second = capsys.readouterr().out
        assert "executed=0" in second

        def table(text):
            return [line for line in text.splitlines()
                    if not line.startswith("[exec]")]
        assert table(first) == table(second)

    def test_exp_missing_file_errors(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["exp", str(tmp_path / "nope.json")])
        assert "cannot read spec" in str(excinfo.value)

    def test_exp_invalid_spec_errors(self, tmp_path):
        payload = self.spec_payload()
        payload["schedulers"] = ["warp-drive"]
        with pytest.raises(SystemExit) as excinfo:
            main(["exp", self.write_spec(tmp_path, payload)])
        assert "warp-drive" in str(excinfo.value)

    def test_exp_sweep_spec_prints_sweep_table(self, tmp_path, capsys):
        payload = self.spec_payload()
        payload["grid"] = {"mst_period": [25, 50]}
        payload["schedulers"] = ["rescq"]
        assert main(["exp", self.write_spec(tmp_path, payload)]) == 0
        out = capsys.readouterr().out
        assert "mst-period sweep for VQE_n13" in out
        assert "mst_period" in out


class TestGenCommand:
    def test_gen_list_prints_families(self, capsys):
        assert main(["gen", "--list"]) == 0
        out = capsys.readouterr().out
        assert "clifford_t" in out and "congestion" in out
        assert "t_density" in out

    def test_gen_without_family_errors(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["gen"])
        assert "--list" in str(excinfo.value)

    def test_gen_emits_qasm_to_stdout(self, capsys):
        assert main(["gen", "clifford_t", "--set", "n=4", "--set", "depth=3",
                     "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("OPENQASM 2.0;")
        assert "qreg q[4];" in out

    def test_gen_is_deterministic(self, capsys):
        argv = ["gen", "clifford_rz", "--set", "n=5", "--set", "depth=4",
                "--seed", "3"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_gen_artifact_format(self, capsys):
        assert main(["gen", "clifford_t", "--set", "n=4", "--set", "depth=2",
                     "--format", "artifact"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].isdigit()

    def test_gen_writes_file_and_run_consumes_it(self, tmp_path, capsys):
        path = tmp_path / "scenario.qasm"
        assert main(["gen", "congestion", "--set", "n=6", "--set", "layers=2",
                     "--out", str(path), "--stats"]) == 0
        captured = capsys.readouterr()
        assert f"wrote {path}" in captured.out
        assert "rz_per_cnot" in captured.err  # --stats table goes to stderr
        assert main(["run", str(path), "--schedulers", "rescq",
                     "--seeds", "1"]) == 0
        run_out = capsys.readouterr().out
        assert "mean_cycles" in run_out

    def test_gen_stats_keeps_stdout_a_valid_circuit(self, capsys):
        assert main(["gen", "clifford_t", "--set", "n=4", "--set", "depth=2",
                     "--stats"]) == 0
        captured = capsys.readouterr()
        from repro.circuits import from_qasm
        assert len(from_qasm(captured.out)) > 0  # stdout parses cleanly
        assert "rz_per_cnot" in captured.err

    def test_gen_seed_flag_conflicts_with_set_seed(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["gen", "clifford_t", "--set", "seed=1", "--seed", "2"])
        assert "use one" in str(excinfo.value)

    @pytest.mark.parametrize("argv,needle", [
        (["gen", "warp_core"], "unknown scenario family"),
        (["gen", "clifford_t", "--set", "depth"], "KEY=VALUE"),
        (["gen", "clifford_t", "--set", "n=0"], ">= 2"),
        (["gen", "clifford_t", "--set", "t_density=2"], "<= 1.0"),
        (["gen", "clifford_t", "--set", "n=2", "--set", "n=3"], "twice"),
        (["gen", "clifford_t", "--set", "warp=1"], "no parameter"),
    ])
    def test_gen_invalid_parameters_error(self, argv, needle):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert needle in str(excinfo.value)


class TestRunErrorPaths:
    def test_run_scenario_benchmark(self, capsys):
        assert main(["run", "scenario:clifford_t:n=5,depth=3,seed=1",
                     "--schedulers", "greedy", "--seeds", "1"]) == 0
        assert "mean_cycles" in capsys.readouterr().out

    def test_run_malformed_qasm_reports_position(self, tmp_path):
        path = tmp_path / "broken.qasm"
        path.write_text("OPENQASM 2.0;\nqreg q[1];\nif (c==1) x q[0];\n")
        with pytest.raises(SystemExit) as excinfo:
            main(["run", str(path)])
        message = str(excinfo.value)
        assert "broken.qasm:3" in message
        assert "classical" in message

    def test_run_missing_qasm_file_errors(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", str(tmp_path / "absent.qasm")])
        assert "cannot read" in str(excinfo.value)

    def test_run_bad_scenario_errors(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "scenario:clifford_t:n=1"])
        assert ">= 2" in str(excinfo.value)


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8765
        assert args.jobs is None
        assert args.cache is None
        assert args.max_attempts == 2

    def test_serve_accepts_port_zero(self):
        args = build_parser().parse_args(["serve", "--port", "0",
                                          "--jobs", "2"])
        assert args.port == 0 and args.jobs == 2

    def test_serve_rejects_zero_jobs(self):
        with pytest.raises(SystemExit, match="--jobs"):
            main(["serve", "--jobs", "0"])


class TestParseAge:
    @pytest.mark.parametrize("text,expected", [
        ("90", 90.0), ("30s", 30.0), ("5m", 300.0), ("2h", 7200.0),
        ("1d", 86400.0), ("1.5h", 5400.0), ("0", 0.0),
    ])
    def test_valid_ages(self, text, expected):
        from repro.cli import _parse_age
        assert _parse_age(text) == expected

    @pytest.mark.parametrize("text", ["", "soon", "1w", "-5m"])
    def test_invalid_ages(self, text):
        from repro.cli import _parse_age
        with pytest.raises(SystemExit, match="cache gc"):
            _parse_age(text)


class TestCacheCommand:
    def populate(self, spec):
        from repro.exec.cache import open_cache_backend
        from repro.sim import SimulationResult
        backend = open_cache_backend(spec)
        for seed in range(2):
            backend.put(f"{seed:064x}", SimulationResult(
                "bench", "rescq", seed=seed, total_cycles=10, num_qubits=2,
                traces=[], data_busy_cycles={}))
        backend.close()
        return spec

    def test_stats_counts_entries(self, tmp_path, capsys):
        spec = self.populate(str(tmp_path / "cache"))
        assert main(["cache", "stats", spec]) == 0
        out = capsys.readouterr().out
        assert "2 entries" in out and "bytes" in out

    def test_stats_on_sqlite_backend(self, tmp_path, capsys):
        spec = self.populate(str(tmp_path / "cache.sqlite"))
        assert main(["cache", "stats", spec]) == 0
        assert "2 entries" in capsys.readouterr().out

    def test_verify_healthy_exits_zero(self, tmp_path, capsys):
        spec = self.populate(str(tmp_path / "cache"))
        assert main(["cache", "verify", spec]) == 0
        assert "entries=2 ok=2 ok" in capsys.readouterr().out

    def test_verify_corrupt_exits_one(self, tmp_path, capsys):
        spec = self.populate(str(tmp_path / "cache"))
        (tmp_path / "cache" / ("b" * 64 + ".json")).write_text("{broken")
        assert main(["cache", "verify", spec]) == 1
        out = capsys.readouterr().out
        assert "CORRUPT(1)" in out
        assert f"corrupt: {'b' * 64}" in out

    def test_gc_requires_older_than(self, tmp_path):
        spec = self.populate(str(tmp_path / "cache"))
        with pytest.raises(SystemExit, match="--older-than"):
            main(["cache", "gc", spec])

    def test_gc_with_large_age_keeps_everything(self, tmp_path, capsys):
        spec = self.populate(str(tmp_path / "cache"))
        assert main(["cache", "gc", spec, "--older-than", "7d"]) == 0
        assert "removed 0 entries" in capsys.readouterr().out
        assert main(["cache", "stats", spec]) == 0
        assert "2 entries" in capsys.readouterr().out

    def test_gc_with_zero_age_removes_everything(self, tmp_path, capsys):
        spec = self.populate(str(tmp_path / "cache.sqlite"))
        assert main(["cache", "gc", spec, "--older-than", "0s"]) == 0
        assert "removed 2 entries" in capsys.readouterr().out

    def test_missing_path_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="no cache at"):
            main(["cache", "stats", str(tmp_path / "absent")])

    def test_prefixed_spec_checks_the_real_location(self, tmp_path):
        with pytest.raises(SystemExit, match="no cache at"):
            main(["cache", "stats", f"sqlite:{tmp_path / 'absent.sqlite'}"])


class TestProcessExitCodes:
    """The satellite contract: error paths exit non-zero with stderr text."""

    def run_cli(self, *argv):
        import os
        import subprocess
        import sys
        repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = (os.path.join(repo_root, "src")
                             + os.pathsep + env.get("PYTHONPATH", ""))
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            capture_output=True, text=True, env=env, cwd=repo_root)

    def test_malformed_qasm_input(self, tmp_path):
        path = tmp_path / "broken.qasm"
        path.write_text("OPENQASM 2.0;\nqreg q[2];\nreset q[0];\n")
        proc = self.run_cli("run", str(path))
        assert proc.returncode == 1
        assert "broken.qasm:3" in proc.stderr
        assert "reset is not supported" in proc.stderr

    def test_unknown_benchmark_name(self):
        proc = self.run_cli("run", "not_a_benchmark")
        assert proc.returncode == 1
        assert "unknown benchmark 'not_a_benchmark'" in proc.stderr
        assert "scenario:<family>" in proc.stderr

    def test_invalid_gen_parameters(self):
        proc = self.run_cli("gen", "clifford_t", "--set", "depth=-3")
        assert proc.returncode == 1
        assert "must be >= 1" in proc.stderr

    def test_invalid_gen_choice_uses_argparse_exit_code(self):
        proc = self.run_cli("gen", "clifford_t", "--format", "midi")
        assert proc.returncode == 2
        assert "invalid choice" in proc.stderr
