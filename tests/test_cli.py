"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "qft_n18"])
        assert args.benchmark == "qft_n18"
        assert args.distance == 7
        assert args.seeds == 3

    def test_sweep_kinds(self):
        args = build_parser().parse_args(["sweep", "mst-period", "qft_n18"])
        assert args.kind == "mst-period"

    def test_version_reports_package_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("rescq ")
        assert out.strip().split()[-1][0].isdigit()


class TestCommands:
    def test_list_prints_table3(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "qft_n160" in out
        assert "paper_rz" in out

    def test_list_is_sorted_by_name(self, capsys):
        assert main(["list"]) == 0
        lines = capsys.readouterr().out.splitlines()
        names = [line.split()[0] for line in lines[3:] if line.strip()]
        assert names == sorted(names)

    def test_prep_prints_figure16_table(self, capsys):
        assert main(["prep", "--distances", "5,7", "--error-rates", "1e-3"]) == 0
        out = capsys.readouterr().out
        assert "expected_attempts" in out
        assert out.count("\n") >= 4

    def test_run_small_benchmark(self, capsys):
        code = main(["run", "VQE_n13", "--schedulers", "autobraid,rescq",
                     "--seeds", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "rescq" in out and "autobraid" in out
        assert "mean_cycles" in out

    def test_run_rejects_unknown_scheduler(self):
        with pytest.raises(SystemExit):
            main(["run", "VQE_n13", "--schedulers", "magic"])

    def test_run_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "not_a_benchmark"])
        assert "not_a_benchmark" in str(excinfo.value)


class TestExpCommand:
    def spec_payload(self):
        return {
            "name": "cli-exp-test",
            "benchmarks": ["VQE_n13"],
            "schedulers": ["autobraid", "rescq"],
            "seeds": 1,
        }

    def write_spec(self, tmp_path, payload):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(payload))
        return str(path)

    def test_exp_runs_spec_file(self, tmp_path, capsys):
        assert main(["exp", self.write_spec(tmp_path, self.spec_payload())]) == 0
        out = capsys.readouterr().out
        assert "rescq" in out and "autobraid" in out
        assert "[exec] jobs=2 executed=2" in out

    def test_exp_matches_equivalent_run_byte_for_byte(self, tmp_path, capsys):
        payload = self.spec_payload()
        payload["name"] = "VQE_n13"
        assert main(["exp", self.write_spec(tmp_path, payload)]) == 0
        exp_out = capsys.readouterr().out
        assert main(["run", "VQE_n13", "--schedulers", "autobraid,rescq",
                     "--seeds", "1"]) == 0
        run_out = capsys.readouterr().out
        assert exp_out == run_out

    def test_exp_writes_csv_and_json(self, tmp_path, capsys):
        spec = self.write_spec(tmp_path, self.spec_payload())
        csv_path = tmp_path / "rows.csv"
        json_path = tmp_path / "rows.json"
        assert main(["exp", spec, "--csv", str(csv_path),
                     "--json", str(json_path)]) == 0
        capsys.readouterr()
        header = csv_path.read_text().splitlines()[0]
        assert header.startswith("benchmark,scheduler,seed")
        rows = json.loads(json_path.read_text())
        assert len(rows) == 2
        assert {row["scheduler"] for row in rows} == {"autobraid", "rescq"}

    def test_exp_cached_rerun_executes_zero_jobs(self, tmp_path, capsys):
        spec = self.write_spec(tmp_path, self.spec_payload())
        cache = str(tmp_path / "cache")
        assert main(["exp", spec, "--cache", cache]) == 0
        first = capsys.readouterr().out
        assert main(["exp", spec, "--cache", cache]) == 0
        second = capsys.readouterr().out
        assert "executed=0" in second

        def table(text):
            return [line for line in text.splitlines()
                    if not line.startswith("[exec]")]
        assert table(first) == table(second)

    def test_exp_missing_file_errors(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["exp", str(tmp_path / "nope.json")])
        assert "cannot read spec" in str(excinfo.value)

    def test_exp_invalid_spec_errors(self, tmp_path):
        payload = self.spec_payload()
        payload["schedulers"] = ["warp-drive"]
        with pytest.raises(SystemExit) as excinfo:
            main(["exp", self.write_spec(tmp_path, payload)])
        assert "warp-drive" in str(excinfo.value)

    def test_exp_sweep_spec_prints_sweep_table(self, tmp_path, capsys):
        payload = self.spec_payload()
        payload["grid"] = {"mst_period": [25, 50]}
        payload["schedulers"] = ["rescq"]
        assert main(["exp", self.write_spec(tmp_path, payload)]) == 0
        out = capsys.readouterr().out
        assert "mst-period sweep for VQE_n13" in out
        assert "mst_period" in out
