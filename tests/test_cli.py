"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "qft_n18"])
        assert args.benchmark == "qft_n18"
        assert args.distance == 7
        assert args.seeds == 3

    def test_sweep_kinds(self):
        args = build_parser().parse_args(["sweep", "mst-period", "qft_n18"])
        assert args.kind == "mst-period"


class TestCommands:
    def test_list_prints_table3(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "qft_n160" in out
        assert "paper_rz" in out

    def test_prep_prints_figure16_table(self, capsys):
        assert main(["prep", "--distances", "5,7", "--error-rates", "1e-3"]) == 0
        out = capsys.readouterr().out
        assert "expected_attempts" in out
        assert out.count("\n") >= 4

    def test_run_small_benchmark(self, capsys):
        code = main(["run", "VQE_n13", "--schedulers", "autobraid,rescq",
                     "--seeds", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "rescq" in out and "autobraid" in out
        assert "mean_cycles" in out

    def test_run_rejects_unknown_scheduler(self):
        with pytest.raises(SystemExit):
            main(["run", "VQE_n13", "--schedulers", "magic"])

    def test_run_rejects_unknown_benchmark(self):
        with pytest.raises(KeyError):
            main(["run", "not_a_benchmark"])
