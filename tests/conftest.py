"""Shared fixtures for the test suite."""

from __future__ import annotations


import pytest

from repro import SimulationConfig
from repro.circuits import Circuit
from repro.fabric import StarVariant, star_layout
from repro.scheduling import AutoBraidScheduler, GreedyScheduler, RescqScheduler
from repro.workloads import dnn_circuit, qft_circuit


@pytest.fixture
def small_circuit() -> Circuit:
    """A tiny 3-qubit Clifford+Rz circuit with all gate kinds."""
    circuit = Circuit(3, name="small")
    circuit.h(0)
    circuit.rz(0, 0.3)
    circuit.cnot(0, 1)
    circuit.rz(1, 0.7)
    circuit.cnot(1, 2)
    circuit.h(2)
    circuit.rz(2, 1.1)
    return circuit


@pytest.fixture
def qft6() -> Circuit:
    return qft_circuit(6)


@pytest.fixture
def dnn6() -> Circuit:
    return dnn_circuit(6, layers=2)


@pytest.fixture
def fast_config() -> SimulationConfig:
    """A configuration with a short MST latency to exercise the pipeline quickly."""
    return SimulationConfig(distance=7, physical_error_rate=1e-4,
                            mst_period=10, mst_latency=20)


@pytest.fixture
def star9():
    """A 9-data-qubit uncompressed STAR layout (6x6 tiles)."""
    return star_layout(9, StarVariant.STAR)


@pytest.fixture
def all_schedulers():
    return [GreedyScheduler(), AutoBraidScheduler(), RescqScheduler()]
