"""Tests for tiles, layouts, STAR builders and grid compression."""

import pytest

from repro.fabric import (
    Edge,
    GridLayout,
    StarVariant,
    Tile,
    TileType,
    ancilla_subgraph_connected,
    block_ancillas,
    block_grid_shape,
    compress_layout,
    manhattan,
    star_layout,
)


class TestTileAndEdge:
    def test_edge_between_adjacent_positions(self):
        assert Edge.between((1, 1), (0, 1)) is Edge.NORTH
        assert Edge.between((1, 1), (1, 2)) is Edge.EAST

    def test_edge_between_non_adjacent_raises(self):
        with pytest.raises(ValueError):
            Edge.between((0, 0), (2, 0))

    def test_edge_neighbor(self):
        assert Edge.SOUTH.neighbor((3, 4)) == (4, 4)

    def test_horizontal_boundary_classification(self):
        assert Edge.NORTH.is_horizontal_boundary
        assert Edge.SOUTH.is_horizontal_boundary
        assert not Edge.EAST.is_horizontal_boundary

    def test_manhattan(self):
        assert manhattan((0, 0), (2, 3)) == 5

    def test_tile_predicates(self):
        tile = Tile((0, 0), TileType.DATA, data_index=4)
        assert tile.is_data and not tile.is_ancilla


class TestGridLayout:
    def test_rejects_out_of_bounds_data(self):
        with pytest.raises(ValueError):
            GridLayout(2, 2, {0: (5, 5)})

    def test_rejects_duplicate_positions(self):
        with pytest.raises(ValueError):
            GridLayout(2, 2, {0: (0, 0), 1: (0, 0)})

    def test_tile_classification(self):
        layout = GridLayout(2, 2, {0: (0, 0)})
        assert layout.is_data((0, 0))
        assert layout.is_ancilla((0, 1))
        assert layout.num_ancilla == 3

    def test_neighbors_respect_bounds(self):
        layout = GridLayout(2, 2, {0: (0, 0)})
        assert set(layout.neighbors((0, 0))) == {(0, 1), (1, 0)}

    def test_disable_and_enable(self):
        layout = GridLayout(2, 2, {0: (0, 0)})
        layout.disable((1, 1))
        assert layout.is_disabled((1, 1))
        assert layout.num_ancilla == 2
        layout.enable_ancilla((1, 1))
        assert layout.is_ancilla((1, 1))

    def test_cannot_disable_data(self):
        layout = GridLayout(2, 2, {0: (0, 0)})
        with pytest.raises(ValueError):
            layout.disable((0, 0))

    def test_connectivity_detection(self):
        layout = GridLayout(1, 3, {0: (0, 0)})
        assert layout.is_connected()
        layout.disable((0, 1))
        assert not layout.is_connected()

    def test_copy_preserves_disabled(self):
        layout = GridLayout(2, 2, {0: (0, 0)})
        layout.disable((1, 1))
        clone = layout.copy()
        assert clone.is_disabled((1, 1))
        clone.enable_ancilla((1, 1))
        assert layout.is_disabled((1, 1))

    def test_ascii_art_shape(self):
        art = GridLayout(2, 3, {0: (0, 0)}).ascii_art()
        assert art.splitlines()[0].startswith("D")
        assert len(art.splitlines()) == 2


class TestStarLayouts:
    def test_block_grid_shape(self):
        rows, cols = block_grid_shape(9)
        assert rows * cols >= 9
        assert cols == 3

    def test_star_layout_ancilla_ratio(self):
        layout = star_layout(9, StarVariant.STAR)
        assert layout.num_data_qubits == 9
        assert layout.ancilla_per_data == pytest.approx(3.0)

    def test_star_layout_data_positions_are_block_corners(self):
        layout = star_layout(4, StarVariant.STAR)
        assert layout.data_position(0) == (0, 0)
        assert layout.data_position(3) == (2, 2)

    def test_every_data_qubit_has_ancilla_neighbor(self):
        for count in (1, 4, 9, 16):
            layout = star_layout(count, StarVariant.STAR)
            assert layout.every_data_qubit_has_ancilla_neighbor()

    def test_compact_and_compressed_reduce_ancilla(self):
        star = star_layout(16, StarVariant.STAR)
        compact = star_layout(16, StarVariant.COMPACT)
        compressed = star_layout(16, StarVariant.COMPRESSED)
        assert compact.num_ancilla < star.num_ancilla
        assert compressed.num_ancilla <= compact.num_ancilla

    def test_variant_layouts_keep_ancilla_connected(self):
        for variant in StarVariant:
            layout = star_layout(12, variant)
            assert ancilla_subgraph_connected(layout)
            assert layout.every_data_qubit_has_ancilla_neighbor()

    def test_variant_block_shapes(self):
        assert StarVariant.STAR.ancilla_per_data == 3
        assert StarVariant.COMPACT.ancilla_per_data == 2
        assert StarVariant.COMPRESSED.ancilla_per_data == 1


class TestCompression:
    def test_zero_fraction_is_identity(self):
        layout = star_layout(9, StarVariant.STAR)
        compressed, report = compress_layout(layout, 0.0)
        assert compressed.num_ancilla == layout.num_ancilla
        assert report.removed_positions == ()

    def test_full_compression_reduces_ancilla_but_stays_connected(self):
        layout = star_layout(16, StarVariant.STAR)
        compressed, report = compress_layout(layout, 1.0, seed=3)
        assert compressed.num_ancilla < layout.num_ancilla
        assert ancilla_subgraph_connected(compressed)
        assert compressed.every_data_qubit_has_ancilla_neighbor()
        assert 0.0 < report.achieved_fraction <= 1.0

    def test_compression_monotone_in_fraction(self):
        layout = star_layout(16, StarVariant.STAR)
        counts = []
        for fraction in (0.0, 0.25, 0.5, 0.75, 1.0):
            compressed, _ = compress_layout(layout, fraction, seed=1)
            counts.append(compressed.num_ancilla)
        assert counts == sorted(counts, reverse=True)

    def test_original_layout_untouched(self):
        layout = star_layout(9, StarVariant.STAR)
        before = layout.num_ancilla
        compress_layout(layout, 1.0)
        assert layout.num_ancilla == before

    def test_invalid_fraction_rejected(self):
        layout = star_layout(4, StarVariant.STAR)
        with pytest.raises(ValueError):
            compress_layout(layout, 1.5)
        with pytest.raises(ValueError):
            compress_layout(layout, 0.5, ancillas_to_remove_per_block=3)

    def test_report_selected_count_matches_fraction(self):
        layout = star_layout(16, StarVariant.STAR)
        _, report = compress_layout(layout, 0.5, seed=0)
        assert len(report.selected_qubits) == 8

    def test_block_ancillas_of_interior_qubit(self):
        layout = star_layout(9, StarVariant.STAR)
        assert len(block_ancillas(layout, 0)) == 3

    def test_compression_is_seed_deterministic(self):
        layout = star_layout(16, StarVariant.STAR)
        a, _ = compress_layout(layout, 0.5, seed=7)
        b, _ = compress_layout(layout, 0.5, seed=7)
        assert a.ancilla_positions() == b.ancilla_positions()
