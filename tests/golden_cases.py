"""Golden-trace case definitions shared by the capture tool and the tests.

The golden suite pins the exact per-gate traces of every scheduler on a set
of small circuits.  The JSON files under ``tests/golden/`` were captured at
the commit immediately before the kernel extraction (PR 3) and must stay
byte-identical: any diff means the refactor changed scheduler behaviour.

Regenerate (only when a change is *intentionally* behaviour-altering) with::

    PYTHONPATH=src python tests/capture_golden.py
"""

from __future__ import annotations

import json
import math
import os
from typing import Dict, List, Tuple

from repro.circuits import Circuit
from repro.fabric import StarVariant, compress_layout, star_layout
from repro.scheduling import SCHEDULER_REGISTRY
from repro.sim.config import SimulationConfig
from repro.workloads import dnn_circuit, ising_circuit, qft_circuit, wstate_circuit
from repro.workloads.scenarios import clifford_rz_circuit

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

#: Exercise the MST pipeline on short runs: small period and latency.
GOLDEN_CONFIG = SimulationConfig(distance=7, physical_error_rate=1e-4,
                                 mst_period=10, mst_latency=20)
GOLDEN_SEEDS = (0, 1)
GOLDEN_SCHEDULERS = ("greedy", "autobraid", "rescq")


def _clifford_circuit() -> Circuit:
    circuit = Circuit(4, name="clifford4")
    circuit.h(0).cnot(0, 1).cnot(1, 2).h(3).cnot(2, 3).cnot(3, 0)
    return circuit


def _t_chain_circuit() -> Circuit:
    circuit = Circuit(3, name="tchain3")
    for _ in range(6):
        circuit.rz(0, math.pi / 4)
        circuit.rz(1, math.pi / 8)
        circuit.cnot(1, 2)
        circuit.rz(2, 0.7)
    return circuit


def golden_circuits() -> Dict[str, Circuit]:
    """Small representatives of every gate mix the schedulers handle."""
    return {
        "qft5": qft_circuit(5),
        "dnn6": dnn_circuit(6, layers=2),
        "ising8": ising_circuit(8),
        "wstate6": wstate_circuit(6),
        "clifford4": _clifford_circuit(),
        "tchain3": _t_chain_circuit(),
    }


def large_circuits() -> Dict[str, Circuit]:
    """1000-tile scale circuits (250 data qubits x 2x2 STAR block = 1000 tiles).

    Kept out of :func:`golden_circuits` so the scheduler x seed product does
    not explode; only the two explicitly listed large cases are captured.
    Shallow on purpose — the point is fabric size (routing/MST pressure),
    not circuit length.
    """
    return {
        "scen250": clifford_rz_circuit(250, depth=2, seed=7),
        "scen250dense": clifford_rz_circuit(250, depth=3, cx_fraction=0.5,
                                            seed=11),
    }


def golden_cases() -> List[Tuple[str, str, str, int, str]]:
    """(case_id, circuit_key, scheduler, seed, variant) tuples.

    ``variant`` selects config/layout tweaks: the default run, RESCQ with
    MST routing disabled, RESCQ with the parallel/eager ablations off, and a
    compressed-grid run — one case per distinct code path.
    """
    cases: List[Tuple[str, str, str, int, str]] = []
    for circuit_key in sorted(golden_circuits()):
        for scheduler in GOLDEN_SCHEDULERS:
            for seed in GOLDEN_SEEDS:
                cases.append((f"{circuit_key}-{scheduler}-s{seed}",
                              circuit_key, scheduler, seed, "default"))
    # Variant coverage on one rotation-heavy circuit.
    cases.append(("dnn6-rescq-s0-nomst", "dnn6", "rescq", 0, "no_mst"))
    cases.append(("dnn6-rescq-s0-ablated", "dnn6", "rescq", 0, "ablated"))
    cases.append(("dnn6-rescq-s0-compressed", "dnn6", "rescq", 0, "compressed"))
    cases.append(("dnn6-greedy-s0-compressed", "dnn6", "greedy", 0, "compressed"))
    # 1000-tile scale points (ISSUE 8): exercise the vectorised routing core
    # on a fabric two orders of magnitude larger than the small cases.
    cases.append(("scen250-rescq-s0-large", "scen250", "rescq", 0, "default"))
    cases.append(("scen250dense-rescq-s0-large", "scen250dense", "rescq", 0,
                  "default"))
    return cases


def run_case(circuit_key: str, scheduler_name: str, seed: int,
             variant: str) -> Dict[str, object]:
    """Execute one golden case and return its serialised result."""
    from repro.analysis.export import result_to_dict
    from repro.sim.runner import default_layout

    circuits = golden_circuits()
    circuit = (circuits[circuit_key] if circuit_key in circuits
               else large_circuits()[circuit_key])
    config = GOLDEN_CONFIG
    # All routing backends and event engines must reproduce the goldens
    # byte-identically; CI legs re-run the suite with
    # RESCQ_GOLDEN_BACKEND=python / numba and RESCQ_GOLDEN_ENGINE=python /
    # batched / numba.
    backend = os.environ.get("RESCQ_GOLDEN_BACKEND")
    if backend:
        config = config.with_updates(routing_backend=backend)
    engine = os.environ.get("RESCQ_GOLDEN_ENGINE")
    if engine:
        config = config.with_updates(kernel_backend=engine)
    if variant == "no_mst":
        config = config.with_updates(use_mst_routing=False)
    elif variant == "ablated":
        config = config.with_updates(parallel_preparation=False,
                                     eager_correction_prep=False)
    if variant == "compressed":
        layout, _ = compress_layout(
            star_layout(circuit.num_qubits, StarVariant.STAR), 1.0, seed=2)
    else:
        layout = default_layout(circuit)
    scheduler = SCHEDULER_REGISTRY.create(scheduler_name)
    result = scheduler.run(circuit, layout, config, seed=seed)
    return result_to_dict(result)


def golden_path(case_id: str) -> str:
    return os.path.join(GOLDEN_DIR, f"{case_id}.json")


def load_golden(case_id: str) -> Dict[str, object]:
    with open(golden_path(case_id), "r", encoding="utf-8") as handle:
        return json.load(handle)
