"""End-to-end integration tests spanning workloads, fabric, schedulers and analysis."""


from repro import SimulationConfig, default_layout, geometric_mean
from repro.analysis import run_execution_comparison
from repro.circuits import from_artifact_format, to_artifact_format
from repro.exec import ExecutionEngine, plan_jobs
from repro.scheduling import AutoBraidScheduler, GreedyScheduler, RescqScheduler
from repro.sim import aggregate_comparison
from repro.workloads import (
    get_benchmark,
    hamiltonian_simulation_circuit,
    qaoa_vanilla_circuit,
    vqe_circuit,
    wstate_circuit,
)

FAST = SimulationConfig(mst_period=10, mst_latency=20)


class TestEndToEnd:
    def test_full_pipeline_on_registry_benchmark(self):
        """Build a Table 3 benchmark, run all three schedulers, check the
        headline qualitative result (RESCQ wins) end to end."""
        circuit = get_benchmark("VQE_n13").build()
        jobs = plan_jobs(
            [GreedyScheduler(), AutoBraidScheduler(), RescqScheduler()],
            circuit, FAST, default_layout(circuit), 2)
        rows = aggregate_comparison(jobs, ExecutionEngine().run(jobs))
        assert rows["rescq"].mean_cycles < rows["greedy"].mean_cycles
        assert rows["rescq"].mean_cycles < rows["autobraid"].mean_cycles

    def test_geomean_speedup_across_several_benchmarks(self):
        """A miniature Figure 10: geometric-mean speedup over a few small
        benchmarks should land in the right ballpark (>1.3x, typically ~2x)."""
        circuits = [vqe_circuit(8), wstate_circuit(8),
                    hamiltonian_simulation_circuit(8),
                    qaoa_vanilla_circuit(8, rounds=1)]
        summary = run_execution_comparison(circuits, config=FAST, seeds=2)
        speedup = summary.geomean_speedup("rescq", over="autobraid")
        assert speedup > 1.2

    def test_round_trip_through_artifact_format_preserves_schedule(self):
        """Exporting a workload to the artifact text format and re-importing it
        must not change the simulated cycle count."""
        circuit = vqe_circuit(6)
        reloaded = from_artifact_format(to_artifact_format(circuit),
                                        num_qubits=circuit.num_qubits,
                                        name=circuit.name)
        layout = default_layout(circuit)
        a = RescqScheduler().run(circuit, layout, FAST, seed=0)
        b = RescqScheduler().run(reloaded, layout, FAST, seed=0)
        assert a.total_cycles == b.total_cycles

    def test_seeded_runs_reproducible_across_schedulers(self):
        circuit = wstate_circuit(10)
        layout = default_layout(circuit)
        for scheduler in (GreedyScheduler(), AutoBraidScheduler(),
                          RescqScheduler()):
            first = scheduler.run(circuit, layout, FAST, seed=11)
            second = scheduler.run(circuit, layout, FAST, seed=11)
            assert first.total_cycles == second.total_cycles

    def test_distance_reduces_execution_time(self):
        """Figure 11's qualitative trend: larger code distance shortens the
        execution (preparation attempts fit in fewer cycles)."""
        circuit = vqe_circuit(8)
        layout = default_layout(circuit)
        totals = []
        for distance in (5, 9, 13):
            config = FAST.with_updates(distance=distance)
            results = [GreedyScheduler().run(circuit, layout, config, seed=s)
                       for s in range(3)]
            totals.append(geometric_mean([r.total_cycles for r in results]))
        assert totals[0] >= totals[-1]

    def test_mst_period_has_small_effect_on_rescq(self):
        """Figure 13's claim: RESCQ's performance is only mildly sensitive to
        the MST recomputation period."""
        circuit = qaoa_vanilla_circuit(8, rounds=1)
        layout = default_layout(circuit)
        cycles = []
        for period in (10, 100):
            config = FAST.with_updates(mst_period=period)
            results = [RescqScheduler().run(circuit, layout, config, seed=s)
                       for s in range(3)]
            cycles.append(geometric_mean([r.total_cycles for r in results]))
        ratio = max(cycles) / min(cycles)
        assert ratio < 1.5
