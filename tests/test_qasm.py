"""Tests for the OpenQASM 2.0 importer (lexer, parser, lowering, errors)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    BASIS,
    Circuit,
    Gate,
    GateType,
    QasmImportError,
    from_qasm,
    import_qasm_file,
    parse_qasm,
    to_qasm,
    transpile_to_clifford_rz,
)
from repro.workloads import build_scenario


def header(*lines: str) -> str:
    return "\n".join(('OPENQASM 2.0;', 'include "qelib1.inc";') + lines) + "\n"


class TestRegisters:
    def test_multiple_qregs_map_onto_flat_offsets(self):
        circuit = parse_qasm(header(
            "qreg a[2];", "qreg b[3];", "x a[1];", "x b[0];"))
        assert circuit.num_qubits == 5
        assert [gate.qubits for gate in circuit] == [(1,), (2,)]

    def test_missing_qreg_rejected(self):
        with pytest.raises(QasmImportError, match="declares no qreg"):
            parse_qasm('OPENQASM 2.0;\ncreg c[2];\n')

    def test_zero_size_register_rejected(self):
        with pytest.raises(QasmImportError, match="positive size"):
            parse_qasm('OPENQASM 2.0;\nqreg q[0];\n')

    def test_duplicate_register_rejected(self):
        with pytest.raises(QasmImportError, match="declared twice"):
            parse_qasm('OPENQASM 2.0;\nqreg q[2];\nqreg q[2];\n')

    def test_index_out_of_range_reports_position(self):
        with pytest.raises(QasmImportError) as excinfo:
            parse_qasm(header("qreg q[2];", "x q[7];"))
        assert excinfo.value.line == 4
        assert "out of range" in str(excinfo.value)


class TestGateCalls:
    def test_register_broadcast(self):
        circuit = parse_qasm(header("qreg q[3];", "h q;"))
        assert [gate.qubits for gate in circuit] == [(0,), (1,), (2,)]
        assert all(gate.gate_type is GateType.H for gate in circuit)

    def test_two_register_broadcast(self):
        circuit = parse_qasm(header("qreg a[2];", "qreg b[2];", "cx a,b;"))
        assert [gate.qubits for gate in circuit] == [(0, 2), (1, 3)]

    def test_mixed_broadcast_single_against_register(self):
        circuit = parse_qasm(header(
            "qreg a[1];", "qreg b[3];", "cx a[0],b;"))
        assert [gate.qubits for gate in circuit] == [(0, 1), (0, 2), (0, 3)]

    def test_broadcast_hitting_duplicate_operand_rejected(self):
        # cx q[0],q broadcasts to cx q[0],q[0] first, which OpenQASM forbids.
        with pytest.raises(QasmImportError, match="duplicate qubit"):
            parse_qasm(header("qreg q[3];", "cx q[0],q;"))

    def test_broadcast_size_mismatch_rejected(self):
        with pytest.raises(QasmImportError, match="different sizes"):
            parse_qasm(header("qreg a[2];", "qreg b[3];", "cx a,b;"))

    def test_duplicate_operand_rejected(self):
        with pytest.raises(QasmImportError, match="duplicate qubit"):
            parse_qasm(header("qreg q[2];", "cx q[1],q[1];"))

    def test_unknown_gate_suggests_neighbours(self):
        with pytest.raises(QasmImportError, match="did you mean"):
            parse_qasm(header("qreg q[1];", "hh q[0];"))

    def test_wrong_parameter_count_rejected(self):
        with pytest.raises(QasmImportError, match="takes 1 parameter"):
            parse_qasm(header("qreg q[1];", "rz(0.1,0.2) q[0];"))

    def test_wrong_operand_count_rejected(self):
        with pytest.raises(QasmImportError, match="acts on 2 qubit"):
            parse_qasm(header("qreg q[3];", "cx q[0],q[1],q[2];"))


class TestQelib1Lowering:
    def run_one(self, call: str, qubits: int = 3) -> Circuit:
        return parse_qasm(header(f"qreg q[{qubits}];", call))

    def test_u1_is_rz(self):
        circuit = self.run_one("u1(0.25) q[0];")
        assert [g.gate_type for g in circuit] == [GateType.RZ]
        assert circuit[0].angle == pytest.approx(0.25)

    def test_u3_lowered_to_rz_ry_rz(self):
        circuit = self.run_one("u3(0.1,0.2,0.3) q[0];")
        assert [g.gate_type for g in circuit] == [
            GateType.RZ, GateType.RY, GateType.RZ]
        assert circuit[0].angle == pytest.approx(0.3)  # lambda first
        assert circuit[2].angle == pytest.approx(0.2)

    def test_builtin_U_matches_u3(self):
        a = self.run_one("U(0.1,0.2,0.3) q[0];")
        b = self.run_one("u3(0.1,0.2,0.3) q[0];")
        assert a == b

    def test_id_emits_nothing(self):
        assert len(self.run_one("id q[0];")) == 0

    def test_cu1_uses_half_angle_conjugation(self):
        circuit = self.run_one("cu1(0.8) q[0],q[1];")
        kinds = [g.gate_type for g in circuit]
        assert kinds == [GateType.RZ, GateType.CNOT, GateType.RZ,
                         GateType.CNOT, GateType.RZ]
        assert circuit[0].angle == pytest.approx(0.4)
        assert circuit[2].angle == pytest.approx(-0.4)

    def test_cp_is_cu1_alias(self):
        assert (self.run_one("cp(0.8) q[0],q[1];")
                == self.run_one("cu1(0.8) q[0],q[1];"))

    def test_crz_conjugates_target_only(self):
        circuit = self.run_one("crz(0.6) q[0],q[1];")
        assert all(gate.qubits[-1] == 1 for gate in circuit)

    def test_cswap_expands_through_toffoli(self):
        circuit = self.run_one("cswap q[0],q[1],q[2];")
        assert GateType.CCX in [g.gate_type for g in circuit]

    def test_every_lowering_lands_in_transpilable_vocabulary(self):
        calls = ["x q[0];", "y q[0];", "z q[0];", "h q[0];", "s q[0];",
                 "sdg q[0];", "t q[0];", "tdg q[0];", "rx(0.1) q[0];",
                 "ry(0.2) q[0];", "rz(0.3) q[0];", "u1(0.1) q[0];",
                 "u2(0.1,0.2) q[0];", "u3(0.1,0.2,0.3) q[0];", "p(0.4) q[0];",
                 "cx q[0],q[1];", "cz q[0],q[1];", "cy q[0],q[1];",
                 "ch q[0],q[1];", "swap q[0],q[1];", "crz(0.5) q[0],q[1];",
                 "cu1(0.5) q[0],q[1];", "cu3(0.1,0.2,0.3) q[0],q[1];",
                 "rzz(0.5) q[0],q[1];", "ccx q[0],q[1],q[2];",
                 "cswap q[0],q[1],q[2];"]
        circuit = self.run_one("\n".join(calls))
        lowered = transpile_to_clifford_rz(circuit)
        assert all(gate.gate_type in BASIS for gate in lowered)


class TestGateMacros:
    def test_macro_expansion_substitutes_params_and_qubits(self):
        circuit = parse_qasm(header(
            "gate twist(theta) a,b { cx a,b; rz(theta/2) b; cx a,b; }",
            "qreg q[4];",
            "twist(0.8) q[2],q[0];",
        ))
        assert [g.gate_type for g in circuit] == [
            GateType.CNOT, GateType.RZ, GateType.CNOT]
        assert circuit[0].qubits == (2, 0)
        assert circuit[1].qubits == (0,)
        assert circuit[1].angle == pytest.approx(0.4)

    def test_macros_nest(self):
        circuit = parse_qasm(header(
            "gate inner a { h a; }",
            "gate outer a,b { inner a; cx a,b; inner b; }",
            "qreg q[2];",
            "outer q[0],q[1];",
        ))
        assert [g.gate_type for g in circuit] == [
            GateType.H, GateType.CNOT, GateType.H]

    def test_macro_body_barrier_is_dropped(self):
        circuit = parse_qasm(header(
            "gate noisy a { h a; barrier a; h a; }",
            "qreg q[1];",
            "noisy q[0];",
        ))
        assert [g.gate_type for g in circuit] == [GateType.H, GateType.H]

    def test_recursive_macro_rejected(self):
        with pytest.raises(QasmImportError, match="recursive"):
            parse_qasm(header(
                "gate loop a { loop a; }",
                "qreg q[1];",
                "loop q[0];",
            ))

    def test_macro_unknown_operand_rejected(self):
        with pytest.raises(QasmImportError, match="unknown qubit argument"):
            parse_qasm(header("gate bad a { h b; }", "qreg q[1];"))

    def test_duplicate_macro_rejected(self):
        with pytest.raises(QasmImportError, match="defined twice"):
            parse_qasm(header(
                "gate g1 a { h a; }", "gate g1 a { x a; }", "qreg q[1];"))


class TestAngleExpressions:
    @pytest.mark.parametrize("expression,expected", [
        ("pi", math.pi),
        ("pi/4", math.pi / 4),
        ("-pi/2", -math.pi / 2),
        ("3*pi/8", 3 * math.pi / 8),
        ("pi/2^2", math.pi / 4),
        ("2^3^2", 512.0),  # right-associative power
        ("(1+2)*0.5", 1.5),
        ("sin(pi/2)", 1.0),
        ("cos(0)", 1.0),
        ("sqrt(4)", 2.0),
        ("ln(exp(1))", 1.0),
        ("1e-3", 1e-3),
        ("-(0.25+0.25)", -0.5),
    ])
    def test_expression_values(self, expression, expected):
        circuit = parse_qasm(header("qreg q[1];", f"rz({expression}) q[0];"))
        assert circuit[0].angle == pytest.approx(expected)

    def test_division_by_zero_rejected(self):
        with pytest.raises(QasmImportError, match="division by zero"):
            parse_qasm(header("qreg q[1];", "rz(pi/0) q[0];"))

    @pytest.mark.parametrize("expression,needle", [
        ("(0-2)^0.5", "not a real number"),   # complex result
        ("0^(0-1)", "undefined"),             # ZeroDivisionError
        ("(1e200)^2", "undefined"),           # OverflowError
        ("1e308*1e308", "finite"),            # silent float overflow to inf
    ])
    def test_power_and_overflow_stay_inside_the_error_contract(
            self, expression, needle):
        with pytest.raises(QasmImportError, match=needle):
            parse_qasm(header("qreg q[1];", f"rz({expression}) q[0];"))

    def test_malformed_exponent_literal_rejected_with_position(self):
        with pytest.raises(QasmImportError) as excinfo:
            parse_qasm(header("qreg q[1];", "rz(1e+) q[0];"))
        assert "exponent has no digits" in str(excinfo.value)
        assert excinfo.value.line == 4

    def test_unknown_identifier_rejected(self):
        with pytest.raises(QasmImportError, match="unknown identifier"):
            parse_qasm(header("qreg q[1];", "rz(tau) q[0];"))

    def test_sqrt_of_negative_rejected(self):
        with pytest.raises(QasmImportError, match="undefined"):
            parse_qasm(header("qreg q[1];", "rz(sqrt(-1)) q[0];"))


class TestUnsupportedConstructs:
    @pytest.mark.parametrize("statement,needle", [
        ("if (c==1) x q[0];", "classical"),
        ("reset q[0];", "reset is not supported"),
        ("opaque mystery a;", "opaque"),
    ])
    def test_rejected_with_actionable_message(self, statement, needle):
        with pytest.raises(QasmImportError, match=needle):
            parse_qasm(header("qreg q[2];", "creg c[2];", statement))

    def test_only_qelib1_includable(self):
        with pytest.raises(QasmImportError, match="qelib1.inc"):
            parse_qasm('OPENQASM 2.0;\ninclude "mylib.inc";\nqreg q[1];\n')

    def test_unsupported_version_rejected(self):
        with pytest.raises(QasmImportError, match="version"):
            parse_qasm('OPENQASM 3.0;\nqreg q[1];\n')

    def test_error_carries_line_and_column(self):
        with pytest.raises(QasmImportError) as excinfo:
            parse_qasm('OPENQASM 2.0;\nqreg q[2];\nreset q[0];\n')
        assert excinfo.value.line == 3
        assert str(excinfo.value).startswith("<qasm>:3:")


class TestMeasureAndBarrier:
    def test_register_measure_broadcasts(self):
        circuit = parse_qasm(header(
            "qreg q[3];", "creg c[3];", "measure q -> c;"))
        assert [g.qubits for g in circuit] == [(0,), (1,), (2,)]
        assert all(g.gate_type is GateType.MEASURE for g in circuit)

    def test_measure_into_undeclared_creg_rejected(self):
        with pytest.raises(QasmImportError, match="not a declared creg"):
            parse_qasm(header("qreg q[1];", "measure q[0] -> c[0];"))

    def test_measure_into_smaller_creg_rejected(self):
        with pytest.raises(QasmImportError, match="smaller"):
            parse_qasm(header(
                "qreg q[3];", "creg c[2];", "measure q -> c;"))

    def test_measure_creg_index_out_of_range_rejected(self):
        with pytest.raises(QasmImportError, match="out of range for creg"):
            parse_qasm(header(
                "qreg q[1];", "creg c[1];", "measure q[0] -> c[9];"))

    @pytest.mark.parametrize("statement", [
        "measure q -> c[0];",
        "measure q[0] -> c;",
    ])
    def test_measure_mixed_register_and_bit_rejected(self, statement):
        with pytest.raises(QasmImportError, match="both"):
            parse_qasm(header("qreg q[3];", "creg c[3];", statement))

    def test_barrier_is_global(self):
        circuit = parse_qasm(header(
            "qreg q[2];", "h q;", "barrier q[0];", "cx q[0],q[1];"))
        barrier = circuit[2]
        assert barrier.gate_type is GateType.BARRIER
        assert barrier.qubits == ()


class TestImportFile:
    def test_import_names_circuit_after_file_and_lowers(self, tmp_path):
        path = tmp_path / "bell_pair.qasm"
        path.write_text(header("qreg q[2];", "h q[0];", "cz q[0],q[1];"))
        circuit = import_qasm_file(str(path))
        assert circuit.name == "bell_pair"
        assert all(gate.gate_type in BASIS for gate in circuit)

    def test_import_without_transpile_keeps_vocabulary(self, tmp_path):
        path = tmp_path / "raw.qasm"
        path.write_text(header("qreg q[2];", "cz q[0],q[1];"))
        circuit = import_qasm_file(str(path), transpile=False)
        assert [g.gate_type for g in circuit] == [GateType.CZ]

    def test_missing_file_reports_path(self, tmp_path):
        with pytest.raises(QasmImportError) as excinfo:
            import_qasm_file(str(tmp_path / "nope.qasm"))
        assert "cannot read" in str(excinfo.value)
        assert "nope.qasm" in str(excinfo.value)

    def test_parse_error_reports_filename(self, tmp_path):
        path = tmp_path / "broken.qasm"
        path.write_text("OPENQASM 2.0;\nqreg q[2];\nwarp q[0];\n")
        with pytest.raises(QasmImportError) as excinfo:
            import_qasm_file(str(path))
        assert str(path) in str(excinfo.value)
        assert excinfo.value.line == 3


def gate_strategy(num_qubits: int):
    single = st.sampled_from([GateType.H, GateType.X, GateType.S,
                              GateType.SDG, GateType.T, GateType.TDG])
    qubit = st.integers(0, num_qubits - 1)
    singles = st.builds(lambda k, q: Gate(k, (q,)), single, qubit)
    rotations = st.builds(
        lambda q, a: Gate(GateType.RZ, (q,), angle=a),
        qubit,
        st.floats(-6.0, 6.0, allow_nan=False, allow_infinity=False),
    )
    cnots = st.builds(
        lambda c, t: Gate(GateType.CNOT, (c, (c + 1 + t) % num_qubits)),
        qubit, st.integers(0, num_qubits - 2))
    return st.one_of(singles, rotations, cnots)


class TestRoundTrip:
    """The PR acceptance property: textio export -> QASM import is lossless."""

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_random_circuit_round_trips_through_qasm(self, data):
        num_qubits = data.draw(st.integers(2, 6))
        gates = data.draw(st.lists(gate_strategy(num_qubits), max_size=30))
        original = Circuit(num_qubits, name="prop", gates=gates)
        parsed = from_qasm(to_qasm(original))
        assert parsed == original

    @pytest.mark.parametrize("name", [
        "scenario:clifford_t:n=8,depth=10,seed=3",
        "scenario:clifford_rz:n=8,depth=10,seed=3",
        "scenario:congestion:n=8,layers=3,seed=3",
    ])
    def test_generated_scenarios_round_trip(self, name):
        original = build_scenario(name)
        # Scenario circuits are already in the scheduler basis, so the QASM
        # path reproduces them gate for gate (angles via exact float repr).
        reimported = transpile_to_clifford_rz(from_qasm(to_qasm(original)))
        assert reimported == original
