"""Tests for repro.cluster: HRW placement, the cache peer, and the router.

The e2e tests run a real 2-shard cluster — two :class:`ExperimentServer`
instances and one :class:`ShardRouter` on loopback ephemeral ports — via
:class:`~repro.cluster.harness.ClusterHarness`, and drive it over HTTP with
``http.client``: the same wire path as the CI ``cluster-e2e`` job.  The
workload is a tiny seeded scenario circuit so a 16-job plan costs
milliseconds, not minutes.
"""

import asyncio
import contextlib
import json
import os
import socket
import threading

import pytest

from repro.cluster import ClusterHarness, ShardRouter, hrw_score, rank_nodes
from repro.exec.cache import DirectoryCache, HttpCache
from repro.sim import GateTrace, SimulationResult

BENCH = "scenario:clifford_t:n=4,depth=3"


def spec_payload(seeds=4, depth=3, name="cluster-test", **envelope):
    payload = {"name": name,
               "benchmarks": [f"scenario:clifford_t:n=4,depth={depth}"],
               "schedulers": ["rescq"], "seeds": seeds,
               "config": {"mst_period": 10, "mst_latency": 10}}
    if envelope:
        return {"spec": payload, **envelope}
    return payload


def make_result(seed=0, total_cycles=10):
    traces = [GateTrace(0, "cnot", (0, 1), scheduled_cycle=0, start_cycle=0,
                        end_cycle=2)]
    return SimulationResult("bench", "rescq", seed=seed,
                            total_cycles=total_cycles, num_qubits=2,
                            traces=traces, data_busy_cycles={0: 7})


def closed_port() -> int:
    """An ephemeral port with nothing listening on it."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


@contextlib.contextmanager
def run_router(shards, **kwargs):
    """Run a ShardRouter over an arbitrary shard list in a background loop."""
    router = ShardRouter(shards, port=0, **kwargs)
    started = threading.Event()
    box = {}

    def runner():
        async def main():
            await router.start()
            box["loop"] = asyncio.get_event_loop()
            box["stop"] = asyncio.Event()
            started.set()
            await box["stop"].wait()
            await router.stop()
        asyncio.run(main())

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert started.wait(timeout=60), "router failed to start"
    try:
        yield router
    finally:
        box["loop"].call_soon_threadsafe(box["stop"].set)
        thread.join(timeout=60)
        assert not thread.is_alive(), "router failed to stop cleanly"


# -- rendezvous hashing --------------------------------------------------------

class TestHashring:
    NODES = [f"http://10.0.0.{index}:8765" for index in range(1, 6)]

    def test_score_is_deterministic_and_node_sensitive(self):
        assert hrw_score("a", "k") == hrw_score("a", "k")
        assert hrw_score("a", "k") != hrw_score("b", "k")
        # The NUL separator keeps (node, key) boundaries unambiguous.
        assert hrw_score("ab", "c") != hrw_score("a", "bc")

    def test_rank_is_a_permutation_of_the_nodes(self):
        ranking = rank_nodes(self.NODES, "f" * 64)
        assert sorted(ranking) == sorted(self.NODES)
        assert rank_nodes(self.NODES, "f" * 64) == ranking  # stable

    def test_keys_spread_over_all_nodes(self):
        owners = {rank_nodes(self.NODES, f"{index:064x}")[0]
                  for index in range(200)}
        assert owners == set(self.NODES)

    def test_removing_a_node_only_moves_its_own_keys(self):
        keys = [f"{index:064x}" for index in range(100)]
        before = {key: rank_nodes(self.NODES, key) for key in keys}
        survivors = self.NODES[1:]
        for key, ranking in before.items():
            expected = [node for node in ranking if node != self.NODES[0]]
            assert rank_nodes(survivors, key) == expected

    def test_empty_node_list_is_an_error(self):
        with pytest.raises(ValueError):
            rank_nodes([], "k")


# -- router construction -------------------------------------------------------

class TestShardRouterValidation:
    def test_needs_at_least_one_shard(self):
        with pytest.raises(ValueError, match="at least one shard"):
            ShardRouter([])

    def test_rejects_duplicate_shards(self):
        url = "http://127.0.0.1:8765"
        with pytest.raises(ValueError, match="duplicate"):
            ShardRouter([url, url + "/"])

    def test_rejects_non_http_shards(self):
        with pytest.raises(ValueError, match="http://"):
            ShardRouter(["https://127.0.0.1:8765"])


# -- cache peer protocol -------------------------------------------------------

@pytest.fixture(scope="class")
def peer(tmp_path_factory):
    """A live cache peer: (HttpCache client, its server-side backing store)."""
    backing = DirectoryCache(tmp_path_factory.mktemp("peer-cache"))
    with ClusterHarness(shards=1, router=False, max_workers=1,
                        cache_factory=lambda _index: backing) as cluster:
        yield HttpCache(cluster.shard_urls[0]), backing


class TestHttpCachePeer:
    def test_miss_then_hit_roundtrip(self, peer):
        client, _backing = peer
        fp = "a1" * 32
        assert client.get(fp) is None
        assert client.put(fp, make_result(seed=3)) is True
        assert fp in client
        assert client.get(fp) == make_result(seed=3)
        assert client.stats.describe() == "hits=1 misses=1 stores=1"

    def test_put_is_write_once_over_the_wire(self, peer):
        client, _backing = peer
        fp = "b2" * 32
        assert client.put(fp, make_result(total_cycles=10)) is True
        assert client.put(fp, make_result(total_cycles=99)) is False
        assert client.get(fp).total_cycles == 10

    def test_entries_len_and_clear(self, peer):
        client, _backing = peer
        client.clear()
        for index in range(3):
            client.put(f"{index:064x}", make_result(seed=index))
        assert len(client) == 3
        listing = {entry.fingerprint for entry in client.entries()}
        assert listing == {f"{index:064x}" for index in range(3)}
        assert all(entry.size_bytes > 0 for entry in client.entries())
        assert client.clear() == 3
        assert len(client) == 0

    def test_gc_by_age(self, peer):
        client, backing = peer
        client.clear()
        fp = "c3" * 32
        client.put(fp, make_result())
        path = backing._path(fp)
        stat = path.stat()
        os.utime(path, (stat.st_atime - 3600, stat.st_mtime - 3600))
        assert client.gc(older_than=600) == 1
        assert fp not in client

    def test_verify_reports_server_side_corruption(self, peer):
        client, backing = peer
        client.clear()
        client.put("d4" * 32, make_result())
        backing._path("e5" * 32).write_text("{not json")
        check = client.verify()
        assert not check.is_healthy
        assert check.corrupt == ["e5" * 32]
        assert (check.entries, check.ok) == (2, 1)
        # The peer evicts the corrupt entry on read, clearing the way for a
        # fresh write-once store.
        assert client.get("e5" * 32) is None
        assert client.put("e5" * 32, make_result()) is True

    def test_malformed_fingerprint_is_rejected_client_side(self, peer):
        client, _backing = peer
        with pytest.raises(ValueError, match="lowercase hex"):
            client.get("../../etc/passwd")

    def test_dead_peer_reads_are_misses_and_writes_raise(self):
        client = HttpCache(f"http://127.0.0.1:{closed_port()}", timeout=2.0)
        assert client.get("f" * 64) is None
        assert client.stats.misses == 1
        assert ("f" * 64) not in client
        with pytest.raises(OSError):
            client.put("f" * 64, make_result())

    def test_describe_names_the_peer(self, peer):
        client, _backing = peer
        assert client.url in client.describe()


# -- 2-shard e2e ---------------------------------------------------------------

@pytest.fixture(scope="module")
def cluster():
    with ClusterHarness(shards=2, max_workers=2) as instance:
        yield instance


def split_ndjson(body):
    lines = body.decode().splitlines()
    return lines[:-1], json.loads(lines[-1])


class TestClusterE2E:
    def test_identical_spec_twice_executes_once_cluster_wide(self, cluster):
        payload = spec_payload(seeds=16, depth=5)
        status, _headers, first = cluster.request("POST", "/experiments",
                                                  payload)
        assert status == 200
        status, _headers, second = cluster.request("POST", "/experiments",
                                                   payload)
        assert status == 200
        first_rows, first_summary = split_ndjson(first)
        second_rows, second_summary = split_ndjson(second)
        assert first_rows == second_rows  # byte-identical row stream
        assert len(first_rows) == 16
        assert first_summary["jobs"] == 16
        assert first_summary["executed"] == 16
        assert second_summary["executed"] == 0
        assert second_summary["cache_hits"] + second_summary["deduped"] == 16
        seeds = [json.loads(row)["seed"] for row in first_rows]
        assert seeds == list(range(16))  # merged back into plan order

    def test_jobs_spread_over_both_shards(self, cluster):
        cluster.request("POST", "/experiments", spec_payload(seeds=16,
                                                             depth=6))
        per_shard = []
        for index in range(2):
            status, _headers, data = cluster.shard_request(index, "GET",
                                                           "/stats")
            assert status == 200
            per_shard.append(json.loads(data)["jobs"])
        # 16 fingerprints HRW-hashed onto 2 shards: both sides own work.
        assert all(jobs > 0 for jobs in per_shard)

    def test_stats_aggregates_cluster_wide_counts(self, cluster):
        payload = spec_payload(seeds=4, depth=7)
        cluster.request("POST", "/experiments", payload)
        cluster.request("POST", "/experiments", payload)
        status, _headers, data = cluster.request("GET", "/stats")
        assert status == 200
        snapshot = json.loads(data)
        assert set(snapshot) == {"router", "cluster", "shards",
                                 "membership"}
        assert snapshot["router"]["requests"] >= 2
        cluster_counts = snapshot["cluster"]
        assert cluster_counts["executed"] >= 4
        assert cluster_counts["cache_hits"] + cluster_counts["deduped"] >= 4
        assert set(snapshot["shards"]) == set(cluster.shard_urls)

    def test_healthz_all_shards_ok(self, cluster):
        status, _headers, data = cluster.request("GET", "/healthz")
        assert status == 200
        payload = json.loads(data)
        assert payload["status"] == "ok"
        assert all(state == "ok" for state in payload["shards"].values())

    def test_include_status_rows_pass_through(self, cluster):
        payload = spec_payload(seeds=2, depth=8, include_status=True,
                               request_id="e2e-42")
        status, _headers, body = cluster.request("POST", "/experiments",
                                                 payload)
        assert status == 200
        rows, summary = split_ndjson(body)
        assert summary["request_id"] == "e2e-42"
        for row in rows:
            record = json.loads(row)
            assert record["status"]["source"] in ("executed", "cache",
                                                  "deduped")
            assert len(record["status"]["fingerprint"]) == 64

    def test_indices_runs_a_sub_plan_through_the_router(self, cluster):
        payload = spec_payload(seeds=4, depth=9, indices=[0, 2])
        status, _headers, body = cluster.request("POST", "/experiments",
                                                 payload)
        assert status == 200
        rows, summary = split_ndjson(body)
        assert summary["jobs"] == 2
        assert [json.loads(row)["seed"] for row in rows] == [0, 2]

    def test_out_of_range_indices_is_400(self, cluster):
        payload = spec_payload(seeds=2, depth=9, indices=[7])
        status, _headers, body = cluster.request("POST", "/experiments",
                                                 payload)
        assert status == 400
        assert "out of range" in json.loads(body)["error"]

    def test_admission_refusal_propagates_with_retry_after(self, cluster):
        for server in cluster.servers:
            server.service.max_pending = 0
            server.service.retry_after = 3.0
        try:
            status, headers, body = cluster.request(
                "POST", "/experiments", spec_payload(seeds=2, depth=10))
            assert status == 429
            assert int(headers["retry-after"]) == 3
            assert "max_pending" in json.loads(body)["error"]
        finally:
            for server in cluster.servers:
                server.service.max_pending = None
                server.service.retry_after = 1.0

    def test_bad_spec_is_400_not_a_shard_fanout(self, cluster):
        payload = spec_payload(seeds=2)
        payload["benchmarks"] = ["no_such_bench"]
        status, _headers, body = cluster.request("POST", "/experiments",
                                                 payload)
        assert status == 400
        assert "no_such_bench" in json.loads(body)["error"]


class TestRouterFailover:
    def test_all_shards_dead_is_502(self):
        dead = f"http://127.0.0.1:{closed_port()}"
        with run_router([dead], connect_timeout=2.0) as router:
            status, _headers, body = ClusterHarness._request(
                router.port, "POST", "/experiments", spec_payload(seeds=2))
            assert status == 502
            assert "no shard reachable" in json.loads(body)["error"]

    def test_dead_shard_fails_over_to_next_ranked(self, cluster):
        dead = f"http://127.0.0.1:{closed_port()}"
        shards = [dead] + cluster.shard_urls
        with run_router(shards, connect_timeout=2.0) as router:
            status, _headers, body = ClusterHarness._request(
                router.port, "POST", "/experiments",
                spec_payload(seeds=32, depth=11))
            assert status == 200
            rows, summary = split_ndjson(body)
            assert len(rows) == 32
            assert summary["jobs"] == 32
            assert "errors" not in summary
            # With 32 jobs over 3 ranked shards, some positions rank the
            # dead shard first and must have been re-routed.
            assert router.stats.retried > 0

    def test_healthz_reports_degraded_503(self, cluster):
        dead = f"http://127.0.0.1:{closed_port()}"
        with run_router([dead] + cluster.shard_urls,
                        probe_timeout=2.0) as router:
            status, _headers, data = ClusterHarness._request(
                router.port, "GET", "/healthz")
            assert status == 503
            payload = json.loads(data)
            assert payload["status"] == "degraded"
            assert payload["shards"][dead].startswith("unreachable")
            for url in cluster.shard_urls:
                assert payload["shards"][url] == "ok"
