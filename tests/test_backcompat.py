"""Removal contract for the legacy entry points.

``run_schedule`` / ``compare_schedulers`` / ``run_comparison`` and the four
``sweep_*`` functions went through a ``DeprecationWarning`` cycle and are
now hard errors: they stay importable (so old ``from repro.sim import
run_schedule`` lines do not explode at import time) but calling one raises
``RuntimeError`` naming the ExperimentSpec replacement.  The declarative
API they point at must itself run clean of deprecation noise.
"""

import warnings

import pytest

from repro.analysis import (
    run_axis_sweep,
    sweep_compression,
    sweep_distance,
    sweep_error_rate,
    sweep_mst_period,
)
from repro.api import ExperimentSpec, run_experiment
from repro.scheduling import RescqScheduler
from repro.sim import (
    SimulationConfig,
    compare_schedulers,
    run_comparison,
    run_schedule,
)
from repro.workloads.qft import qft_circuit

FAST = SimulationConfig(max_cycles=100_000)


@pytest.fixture(scope="module")
def circuit():
    return qft_circuit(6)


class TestRemovedEntryPoints:
    def test_run_schedule_raises_with_replacement(self, circuit):
        with pytest.raises(RuntimeError, match="run_experiment"):
            run_schedule(RescqScheduler(), circuit, config=FAST, seeds=1)

    def test_compare_schedulers_raises_with_replacement(self, circuit):
        with pytest.raises(RuntimeError, match="comparison_rows"):
            compare_schedulers([RescqScheduler()], circuit, config=FAST,
                               seeds=1)

    def test_run_comparison_alias_raises(self, circuit):
        with pytest.raises(RuntimeError, match="run_comparison"):
            run_comparison([RescqScheduler()], circuit, config=FAST, seeds=1)

    def test_errors_name_the_removed_function(self, circuit):
        with pytest.raises(RuntimeError, match="run_schedule"):
            run_schedule(RescqScheduler(), circuit)
        with pytest.raises(RuntimeError, match="compare_schedulers"):
            compare_schedulers([RescqScheduler()], circuit)

    @pytest.mark.parametrize("shim,axis", [
        (sweep_distance, "distance"),
        (sweep_error_rate, "error-rate"),
        (sweep_mst_period, "mst-period"),
        (sweep_compression, "compression"),
    ])
    def test_sweep_shims_raise_naming_axis(self, circuit, shim, axis):
        with pytest.raises(RuntimeError) as excinfo:
            shim([RescqScheduler()], [circuit], seeds=1)
        message = str(excinfo.value)
        assert shim.__name__ in message
        assert axis in message
        assert "run_axis_sweep" in message

    def test_stubs_raise_before_touching_arguments(self):
        # The stubs must fail fast for any signature, including the old
        # keyword conventions, rather than raising TypeError.
        with pytest.raises(RuntimeError):
            run_schedule()
        with pytest.raises(RuntimeError):
            sweep_mst_period(periods=(25,))


class TestReplacementsAreClean:
    def test_run_axis_sweep_does_not_warn(self, circuit):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            rows = run_axis_sweep("mst-period", [RescqScheduler()], [circuit],
                                  values=(25,), seeds=1)
        assert len(rows) == 1

    def test_run_experiment_does_not_warn(self):
        spec = ExperimentSpec(benchmarks=("VQE_n13",), schedulers=("rescq",),
                              seeds=1)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            results = run_experiment(spec)
        assert len(results.rows) == 1
