"""Back-compat: the legacy entry points still work and warn once deprecated.

``run_schedule`` / ``compare_schedulers`` / ``run_comparison`` and the four
``sweep_*`` functions are shims over the declarative API; they must emit
``DeprecationWarning`` and return exactly what the new API returns so
examples and external callers keep working unchanged.
"""

import warnings

import pytest

from repro.analysis import (
    run_axis_sweep,
    sweep_compression,
    sweep_distance,
    sweep_error_rate,
    sweep_mst_period,
)
from repro.api import ExperimentSpec, run_experiment
from repro.scheduling import AutoBraidScheduler, RescqScheduler
from repro.sim import SimulationConfig, compare_schedulers, run_comparison, run_schedule
from repro.workloads import get_benchmark
from repro.workloads.qft import qft_circuit

FAST = SimulationConfig(max_cycles=100_000)


@pytest.fixture(scope="module")
def circuit():
    return qft_circuit(6)


class TestDeprecationWarnings:
    def test_run_schedule_warns(self, circuit):
        with pytest.warns(DeprecationWarning, match="run_schedule"):
            results = run_schedule(RescqScheduler(), circuit, config=FAST,
                                   seeds=1)
        assert len(results) == 1

    def test_compare_schedulers_warns(self, circuit):
        with pytest.warns(DeprecationWarning, match="compare_schedulers"):
            rows = compare_schedulers([RescqScheduler()], circuit,
                                      config=FAST, seeds=1)
        assert "rescq" in rows

    def test_run_comparison_alias_warns(self, circuit):
        with pytest.warns(DeprecationWarning):
            rows = run_comparison([RescqScheduler()], circuit, config=FAST,
                                  seeds=1)
        assert "rescq" in rows

    @pytest.mark.parametrize("shim,kwargs", [
        (sweep_distance, {"distances": (5,)}),
        (sweep_error_rate, {"error_rates": (1e-4,)}),
        (sweep_mst_period, {"periods": (25,)}),
        (sweep_compression, {"compressions": (0.0,)}),
    ])
    def test_sweep_shims_warn(self, circuit, shim, kwargs):
        with pytest.warns(DeprecationWarning, match=shim.__name__):
            rows = shim([RescqScheduler()], [circuit], seeds=1, **kwargs)
        assert len(rows) == 1
        assert rows[0].scheduler == "rescq"

    def test_run_axis_sweep_does_not_warn(self, circuit):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            rows = run_axis_sweep("mst-period", [RescqScheduler()], [circuit],
                                  values=(25,), seeds=1)
        assert len(rows) == 1


class TestShimEquivalence:
    def test_compare_schedulers_matches_run_experiment(self):
        benchmark = "VQE_n13"
        schedulers = [AutoBraidScheduler(), RescqScheduler()]
        with pytest.warns(DeprecationWarning):
            legacy = compare_schedulers(schedulers,
                                        get_benchmark(benchmark).build(),
                                        seeds=2)
        spec = ExperimentSpec(benchmarks=(benchmark,),
                              schedulers=("autobraid", "rescq"), seeds=2)
        modern = run_experiment(spec).comparison_rows()
        assert list(legacy) == list(modern)
        for name in legacy:
            assert legacy[name].mean_cycles == modern[name].mean_cycles
            assert legacy[name].min_cycles == modern[name].min_cycles
            assert legacy[name].max_cycles == modern[name].max_cycles
            assert legacy[name].mean_idle_fraction == \
                modern[name].mean_idle_fraction

    def test_sweep_shim_matches_spec_grid(self):
        benchmark = "VQE_n13"
        with pytest.warns(DeprecationWarning):
            legacy = sweep_mst_period([RescqScheduler()],
                                      [get_benchmark(benchmark).build()],
                                      periods=(25, 50), seeds=1)
        spec = ExperimentSpec(benchmarks=(benchmark,), schedulers=("rescq",),
                              grid={"mst_period": (25, 50)}, seeds=1)
        modern = run_experiment(spec).sweep_rows("mst_period")
        assert [row.as_dict() for row in legacy] == \
               [row.as_dict() for row in modern]
