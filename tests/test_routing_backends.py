"""Routing-backend equivalence: python, vector (and numba when installed).

The vectorised struct-of-arrays routing core (ISSUE 8) must be a pure
performance change: every backend produces byte-identical schedules.  These
tests pin that from three angles — raw shortest-path queries, the FlatGrid
array representation, and whole scheduler runs over random
scenario-generator circuits.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import SimulationConfig
from repro.analysis.export import result_to_dict
from repro.fabric import StarVariant, star_layout
from repro.fabric.flat import FlatGrid
from repro.kernel.fabric_state import FabricState
from repro.lattice import (
    ROUTING_BACKEND_NAMES,
    bfs_ancilla_path,
    get_backend,
    numba_available,
)
from repro.scheduling import SCHEDULER_REGISTRY
from repro.sim.runner import default_layout
from repro.workloads.scenarios import clifford_rz_circuit


# ---------------------------------------------------------------------------
# FlatGrid: the struct-of-arrays layout projection
# ---------------------------------------------------------------------------

class TestFlatGrid:
    def test_neighbor_table_matches_layout_adjacency(self):
        layout = star_layout(6, StarVariant.STAR)
        flat = FlatGrid.for_layout(layout)
        for position in layout.ancilla_positions():
            index = flat.flat_index(position)
            neighbors = {flat._positions[n]
                         for n in flat.route_neighbors[index] if n >= 0}
            expected = set(layout.ancilla_neighbors(position))
            assert neighbors == expected

    def test_flat_index_position_round_trip(self):
        layout = star_layout(4, StarVariant.STAR)
        flat = FlatGrid.for_layout(layout)
        for position in layout.ancilla_positions():
            assert flat.position(flat.flat_index(position)) == position

    def test_for_layout_is_cached_until_version_bump(self):
        layout = star_layout(4, StarVariant.STAR)
        flat = FlatGrid.for_layout(layout)
        assert FlatGrid.for_layout(layout) is flat
        victim = layout.ancilla_positions()[0]
        layout.disable(victim)
        rebuilt = FlatGrid.for_layout(layout)
        assert rebuilt is not flat
        assert rebuilt.flat_index(victim) == -1 or \
            rebuilt.anc_slot[rebuilt.flat_index(victim)] == -1

    def test_ancilla_slots_are_row_major(self):
        layout = star_layout(5, StarVariant.STAR)
        flat = FlatGrid.for_layout(layout)
        assert flat.anc_positions == sorted(flat.anc_positions)
        assert flat.anc_positions == layout.ancilla_positions()


# ---------------------------------------------------------------------------
# Shortest-path parity: vector backend vs the reference BFS
# ---------------------------------------------------------------------------

class TestShortestPathParity:
    @pytest.fixture()
    def layout(self):
        return star_layout(8, StarVariant.STAR)

    def test_all_pairs_match_reference(self, layout):
        backend = get_backend("vector")
        ancillas = layout.ancilla_positions()
        rng = np.random.default_rng(3)
        pairs = rng.integers(0, len(ancillas), size=(80, 2))
        for a_idx, b_idx in pairs:
            start, goal = ancillas[a_idx], ancillas[b_idx]
            expected = bfs_ancilla_path(layout, start, goal)
            actual = backend.shortest_path(layout, start, goal)
            assert actual == expected

    def test_blocked_tiles_match_reference(self, layout):
        backend = get_backend("vector")
        ancillas = layout.ancilla_positions()
        rng = np.random.default_rng(5)
        for _ in range(40):
            blocked = {ancillas[i] for i in
                       rng.choice(len(ancillas), size=6, replace=False)}
            start, goal = (ancillas[int(i)] for i in
                           rng.integers(0, len(ancillas), size=2))
            expected = bfs_ancilla_path(layout, start, goal, blocked)
            actual = backend.shortest_path(layout, start, goal, blocked)
            assert actual == expected

    def test_non_ancilla_endpoints_return_none(self, layout):
        backend = get_backend("vector")
        data = layout.data_position(0)
        ancilla = layout.ancilla_positions()[0]
        assert backend.shortest_path(layout, data, ancilla) is None
        assert bfs_ancilla_path(layout, data, ancilla) is None

    def test_survives_layout_mutation(self, layout):
        backend = get_backend("vector")
        ancillas = layout.ancilla_positions()
        start, goal = ancillas[0], ancillas[-1]
        before = backend.shortest_path(layout, start, goal)
        assert before == bfs_ancilla_path(layout, start, goal)
        victim = before[len(before) // 2]
        layout.disable(victim)
        backend.invalidate()
        after = backend.shortest_path(layout, start, goal)
        assert after == bfs_ancilla_path(layout, start, goal)
        assert victim not in (after or ())


# ---------------------------------------------------------------------------
# Backend registry
# ---------------------------------------------------------------------------

class TestBackendRegistry:
    def test_known_names(self):
        assert ROUTING_BACKEND_NAMES == ("python", "vector", "numba")
        for name in ("python", "vector"):
            assert get_backend(name).name == name

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown routing backend"):
            get_backend("fortran")

    def test_config_validates_backend(self):
        with pytest.raises(ValueError, match="routing_backend"):
            SimulationConfig(routing_backend="fortran")

    @pytest.mark.skipif(numba_available(), reason="numba installed: the "
                        "missing-dependency error path cannot be exercised")
    def test_numba_backend_without_numba_raises_actionably(self):
        layout = star_layout(3, StarVariant.STAR)
        a, b = layout.ancilla_positions()[:2]
        with pytest.raises(RuntimeError, match=r"repro\[numba\]"):
            backend = get_backend("numba")
            backend.shortest_path(layout, a, b)

    @pytest.mark.skipif(not numba_available(), reason="numba not installed")
    def test_numba_backend_matches_reference(self):
        layout = star_layout(6, StarVariant.STAR)
        backend = get_backend("numba")
        ancillas = layout.ancilla_positions()
        rng = np.random.default_rng(9)
        for _ in range(30):
            start, goal = (ancillas[int(i)] for i in
                           rng.integers(0, len(ancillas), size=2))
            assert (backend.shortest_path(layout, start, goal)
                    == bfs_ancilla_path(layout, start, goal))


# ---------------------------------------------------------------------------
# FabricState array views
# ---------------------------------------------------------------------------

class TestFabricStateViews:
    def test_views_mirror_dict_state(self):
        layout = star_layout(4, StarVariant.STAR)
        fabric = FabricState(layout, 4, activity_window=100)
        ancillas = fabric.ancillas
        fabric.occupy_ancilla(ancillas[2], 0, 17)
        fabric.hold(ancillas[3], 42)
        fabric.occupy_data(1, 0, 9)
        free = fabric.anc_free_view()
        holding = fabric.anc_holding_view()
        assert free[2] == 17 and free[0] == 0
        assert holding[3] == 42 and holding[0] == -1
        idle = fabric.anc_idle_mask(now=5)
        assert not idle[2] and idle[0]
        assert fabric.data_free_view()[1] == 9
        assert fabric.flat_grid.anc_positions == ancillas


# ---------------------------------------------------------------------------
# Whole-run equivalence on scenario-generator circuits (hypothesis)
# ---------------------------------------------------------------------------

def _run(circuit, backend: str, seed: int):
    config = SimulationConfig(mst_period=10, mst_latency=20,
                              routing_backend=backend)
    layout = default_layout(circuit)
    scheduler = SCHEDULER_REGISTRY.create("rescq")
    return result_to_dict(scheduler.run(circuit, layout, config, seed=seed))


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(n=st.integers(4, 10), depth=st.integers(2, 5),
       circuit_seed=st.integers(0, 1000), run_seed=st.integers(0, 3))
def test_backends_produce_identical_traces(n, depth, circuit_seed, run_seed):
    """python and vector backends yield byte-identical scheduler results."""
    circuit = clifford_rz_circuit(n, depth=depth, seed=circuit_seed)
    reference = _run(circuit, "python", run_seed)
    vectorised = _run(circuit, "vector", run_seed)
    assert vectorised == reference


def test_backends_identical_on_dense_scenario():
    """Deterministic (non-hypothesis) cross-backend check on a denser case."""
    circuit = clifford_rz_circuit(12, depth=6, cx_fraction=0.5, seed=21)
    reference = _run(circuit, "python", 1)
    vectorised = _run(circuit, "vector", 1)
    assert vectorised == reference
    if numba_available():
        assert _run(circuit, "numba", 1) == reference
