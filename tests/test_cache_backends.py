"""Tests for the cache backends: write-once semantics, GC, integrity, races.

The multiprocess stress tests at the bottom pin the concurrency contract
from :class:`repro.exec.cache.CacheBackend`: N writer processes racing the
same fingerprint leave exactly one complete entry, and readers never see a
torn payload.  Workers run under the ``spawn`` start method — the same one
the experiment service uses — so each child opens its own backend instance
against the shared path, exactly like concurrent CLI invocations would.
"""

import multiprocessing
import os

import pytest

from repro.cluster import ClusterHarness
from repro.exec import ResultCache
from repro.exec.cache import (
    CacheBackend,
    DirectoryCache,
    HttpCache,
    SQLiteCache,
    TieredCache,
    open_cache_backend,
)
from repro.sim import GateTrace, SimulationResult

BACKENDS = ("dir", "sqlite")


def make_result(seed=0, total_cycles=10):
    traces = [
        GateTrace(0, "cnot", (0, 1), scheduled_cycle=0, start_cycle=0,
                  end_cycle=2),
        GateTrace(1, "rz", (0,), scheduled_cycle=2, start_cycle=3,
                  end_cycle=8, injections=2, preparation_attempts=3),
    ]
    return SimulationResult("bench", "rescq", seed=seed,
                            total_cycles=total_cycles, num_qubits=2,
                            traces=traces, data_busy_cycles={0: 7, 1: 5})


def open_backend(kind, tmp_path):
    if kind == "sqlite":
        return SQLiteCache(tmp_path / "cache.sqlite")
    return DirectoryCache(tmp_path / "cache")


def backdate(backend, fingerprint, seconds):
    """Shift an entry's stored_at timestamp into the past (test-only)."""
    if isinstance(backend, SQLiteCache):
        with backend._lock:
            backend._conn.execute(
                "UPDATE results SET stored_at = stored_at - ? "
                "WHERE fingerprint = ?", (seconds, fingerprint))
            backend._conn.commit()
    else:
        path = backend._path(fingerprint)
        stat = path.stat()
        os.utime(path, (stat.st_atime - seconds, stat.st_mtime - seconds))


def corrupt_entry(backend, fingerprint):
    """Plant an unreadable payload under ``fingerprint`` (test-only)."""
    if isinstance(backend, SQLiteCache):
        with backend._lock:
            backend._conn.execute(
                "INSERT OR REPLACE INTO results "
                "(fingerprint, payload, size_bytes, stored_at) "
                "VALUES (?, '{not json', 9, 0)", (fingerprint,))
            backend._conn.commit()
    else:
        backend._path(fingerprint).write_text("{not json")


FP = "f" * 64


@pytest.fixture(params=BACKENDS)
def backend(request, tmp_path):
    instance = open_backend(request.param, tmp_path)
    yield instance
    instance.close()


class TestBackendContract:
    def test_miss_then_hit_roundtrip(self, backend):
        assert backend.get(FP) is None
        result = make_result()
        assert backend.put(FP, result) is True
        assert FP in backend
        assert backend.get(FP) == result
        assert backend.stats.describe() == "hits=1 misses=1 stores=1"

    def test_put_is_write_once(self, backend):
        backend.put(FP, make_result(total_cycles=10))
        assert backend.put(FP, make_result(total_cycles=99)) is False
        assert backend.get(FP).total_cycles == 10
        assert backend.stats.stores == 1

    def test_len_entries_and_clear(self, backend):
        for index in range(3):
            backend.put(f"{index:064x}", make_result(seed=index))
        assert len(backend) == 3
        entries = {entry.fingerprint: entry for entry in backend.entries()}
        assert set(entries) == {f"{index:064x}" for index in range(3)}
        assert all(entry.size_bytes > 0 for entry in entries.values())
        assert backend.size_bytes() == sum(
            entry.size_bytes for entry in entries.values())
        assert backend.clear() == 3
        assert len(backend) == 0

    def test_gc_removes_only_old_entries(self, backend):
        backend.put("a" * 64, make_result(seed=0))
        backend.put("b" * 64, make_result(seed=1))
        backdate(backend, "a" * 64, 3600)
        assert backend.gc(older_than=600) == 1
        assert "a" * 64 not in backend
        assert "b" * 64 in backend

    def test_gc_with_large_cutoff_removes_nothing(self, backend):
        backend.put(FP, make_result())
        assert backend.gc(older_than=86400) == 0
        assert FP in backend

    def test_corrupt_entry_is_a_miss_and_gets_evicted(self, backend):
        corrupt_entry(backend, FP)
        assert backend.get(FP) is None
        assert backend.stats.misses == 1
        # Eviction makes room for the write-once put of the re-run result.
        assert backend.put(FP, make_result()) is True
        assert backend.get(FP) == make_result()

    def test_verify_healthy(self, backend):
        backend.put(FP, make_result())
        check = backend.verify()
        assert check.is_healthy
        assert (check.entries, check.ok) == (1, 1)
        assert "ok" in check.describe()

    def test_verify_reports_corrupt_fingerprints(self, backend):
        backend.put("a" * 64, make_result())
        corrupt_entry(backend, "b" * 64)
        check = backend.verify()
        assert not check.is_healthy
        assert check.corrupt == ["b" * 64]
        assert "CORRUPT(1)" in check.describe()

    def test_close_is_idempotent(self, backend):
        backend.close()
        backend.close()

    def test_describe_mentions_counters(self, backend):
        assert "hits=0 misses=0 stores=0" in backend.describe()


class TestOpenCacheBackend:
    def test_sqlite_prefix(self, tmp_path):
        backend = open_cache_backend(f"sqlite:{tmp_path / 'c'}")
        assert isinstance(backend, SQLiteCache)
        backend.close()

    def test_dir_prefix_wins_over_suffix(self, tmp_path):
        backend = open_cache_backend(f"dir:{tmp_path / 'c.db'}")
        assert isinstance(backend, DirectoryCache)

    def test_sqlite_suffixes(self, tmp_path):
        for suffix in (".sqlite", ".sqlite3", ".db"):
            backend = open_cache_backend(tmp_path / f"c{suffix}")
            assert isinstance(backend, SQLiteCache)
            backend.close()

    def test_bare_path_is_a_directory(self, tmp_path):
        assert isinstance(open_cache_backend(tmp_path / "plain"),
                          DirectoryCache)

    def test_backend_instance_passes_through(self, tmp_path):
        backend = DirectoryCache(tmp_path)
        assert open_cache_backend(backend) is backend

    def test_result_cache_alias_is_directory_backend(self):
        assert ResultCache is DirectoryCache
        assert issubclass(ResultCache, CacheBackend)

    def test_http_url_is_peer_client(self):
        backend = open_cache_backend("http://127.0.0.1:8765")
        assert isinstance(backend, HttpCache)
        assert (backend.host, backend.port) == ("127.0.0.1", 8765)

    def test_https_is_rejected_with_hint(self):
        with pytest.raises(ValueError, match="http://"):
            open_cache_backend("https://127.0.0.1:8765")

    def test_tier_spec_composes_near_and_far(self, tmp_path):
        backend = open_cache_backend(
            f"dir:{tmp_path / 'near'}|http://127.0.0.1:8765")
        assert isinstance(backend, TieredCache)
        assert isinstance(backend.near, DirectoryCache)
        assert isinstance(backend.far, HttpCache)

    def test_malformed_tier_spec_is_rejected(self, tmp_path):
        for bad in ("|x", "x|", "a|b|c"):
            with pytest.raises(ValueError, match="NEAR|FAR"):
                open_cache_backend(bad)


class TestTieredCache:
    def tiered(self, tmp_path):
        near = DirectoryCache(tmp_path / "near")
        far = DirectoryCache(tmp_path / "far")
        return TieredCache(near=near, far=far)

    def test_write_through_and_far_authoritative_verdict(self, tmp_path):
        tiered = self.tiered(tmp_path)
        assert tiered.put(FP, make_result()) is True
        assert FP in tiered.near and FP in tiered.far
        # A second instance sharing only the far tier sees the entry and
        # reports the write-once verdict from it.
        other = TieredCache(near=DirectoryCache(tmp_path / "other-near"),
                            far=DirectoryCache(tmp_path / "far"))
        assert other.put(FP, make_result()) is False
        assert len(other) == 1

    def test_read_through_backfills_near_tier(self, tmp_path):
        tiered = self.tiered(tmp_path)
        tiered.far.put(FP, make_result())
        assert FP not in tiered.near
        assert tiered.get(FP) == make_result()
        assert FP in tiered.near  # backfilled
        assert tiered.stats.hits == 1

    def test_clear_and_gc_touch_both_tiers(self, tmp_path):
        tiered = self.tiered(tmp_path)
        tiered.put(FP, make_result())
        assert tiered.clear() == 1
        assert FP not in tiered.near and FP not in tiered.far


# -- multiprocess stress -------------------------------------------------------

def _spec_for(kind, root):
    return f"sqlite:{root}/cache.sqlite" if kind == "sqlite" else f"dir:{root}/cache"


def _stress_writer(spec, own_fp, barrier, out):
    """One racing writer process (module-level: must pickle under spawn).

    ``spec`` is any :func:`open_cache_backend` spec string, so the same
    writer races the directory, SQLite, ``http://`` peer and tiered
    backends identically.
    """
    backend = open_cache_backend(spec)
    expected = make_result()
    barrier.wait()
    shared_stores = 0
    torn = 0
    for _ in range(5):
        if backend.put(FP, expected):
            shared_stores += 1
        observed = backend.get(FP)
        if observed is not None and observed != expected:
            torn += 1
    backend.put(own_fp, make_result(seed=int(own_fp[:4], 16)))
    backend.close()
    out.put((shared_stores, torn))


def _run_stress(spec, nprocs=4):
    ctx = multiprocessing.get_context("spawn")
    barrier = ctx.Barrier(nprocs)
    out = ctx.Queue()
    own_fps = [f"{index:04x}" + "0" * 60 for index in range(nprocs)]
    procs = [ctx.Process(target=_stress_writer,
                         args=(spec, own_fps[index], barrier, out))
             for index in range(nprocs)]
    for proc in procs:
        proc.start()
    reports = [out.get(timeout=60) for _ in procs]
    for proc in procs:
        proc.join(timeout=60)
        assert proc.exitcode == 0
    assert sum(stores for stores, _ in reports) == 1, \
        "the shared fingerprint must be created exactly once"
    assert sum(torn for _, torn in reports) == 0, \
        "no reader may observe a torn payload"

    backend = open_cache_backend(spec)
    try:
        assert len(backend) == nprocs + 1
        assert backend.get(FP) == make_result()
        for own in own_fps:
            assert own in backend
        assert backend.verify().is_healthy
    finally:
        backend.close()


@pytest.mark.parametrize("kind", BACKENDS)
def test_racing_writers_store_exactly_once(kind, tmp_path):
    """N spawn processes race one shared and N distinct fingerprints: the
    shared entry is created exactly once, every distinct entry lands, and
    no reader ever observes a torn payload."""
    _run_stress(_spec_for(kind, str(tmp_path)))


@pytest.mark.parametrize("kind", ("http", "tiered"))
def test_racing_writers_store_exactly_once_over_http(kind, tmp_path):
    """The same stress through the network peer protocol: N spawn processes
    hammer one live cache peer (directly, and behind a local near tier) and
    the peer's write-once guarantee must hold across the wire."""
    peer_backend = DirectoryCache(tmp_path / "peer")
    with ClusterHarness(shards=1, router=False, max_workers=1,
                        cache_factory=lambda _i: peer_backend) as cluster:
        peer_url = cluster.shard_urls[0]
        spec = (peer_url if kind == "http"
                else f"dir:{tmp_path / 'near'}|{peer_url}")
        _run_stress(spec)
