"""Tests for the static baselines and the RESCQ realtime scheduler."""

import math

import pytest

from repro import SimulationConfig, default_layout
from repro.circuits import Circuit
from repro.fabric import StarVariant, compress_layout, star_layout
from repro.scheduling import AutoBraidScheduler, GreedyScheduler, RescqScheduler
from repro.exec import ExecutionEngine, plan_jobs
from repro.workloads import dnn_circuit, ising_circuit, qft_circuit


CONFIG = SimulationConfig(distance=7, physical_error_rate=1e-4, mst_period=10,
                          mst_latency=20)


def run_one(scheduler, circuit, seed=0, config=CONFIG, layout=None):
    layout = layout or default_layout(circuit)
    return scheduler.run(circuit, layout, config, seed=seed)


class TestBaselineSchedulers:
    @pytest.mark.parametrize("scheduler_cls", [GreedyScheduler, AutoBraidScheduler])
    def test_executes_every_gate(self, scheduler_cls, small_circuit):
        result = run_one(scheduler_cls(), small_circuit)
        expected = len(small_circuit.without_free_gates())
        assert result.num_gates == expected
        assert result.total_cycles > 0

    def test_deterministic_given_seed(self, qft6):
        a = run_one(GreedyScheduler(), qft6, seed=3)
        b = run_one(GreedyScheduler(), qft6, seed=3)
        assert a.total_cycles == b.total_cycles

    def test_different_seeds_vary(self, qft6):
        cycles = {run_one(GreedyScheduler(), qft6, seed=s).total_cycles
                  for s in range(5)}
        assert len(cycles) > 1

    def test_layer_barrier_traces(self, small_circuit):
        """In a static schedule a gate never starts before its layer opened."""
        result = run_one(AutoBraidScheduler(), small_circuit)
        for trace in result.traces:
            assert trace.start_cycle >= trace.scheduled_cycle

    def test_rz_gates_record_injections_and_preps(self, dnn6):
        result = run_one(GreedyScheduler(), dnn6)
        rz_traces = [t for t in result.traces if t.kind == "rz"]
        assert rz_traces
        assert all(t.injections >= 1 for t in rz_traces)
        assert all(t.preparation_attempts >= t.injections for t in rz_traces)

    def test_mean_injections_close_to_two(self, dnn6):
        """Equation 1: each Rz needs two injections in expectation."""
        result = run_one(GreedyScheduler(), dnn6, seed=1)
        rz_traces = [t for t in result.traces if t.kind == "rz"]
        mean = sum(t.injections for t in rz_traces) / len(rz_traces)
        assert 1.5 < mean < 2.6

    def test_cnot_traces_include_edge_rotations_when_needed(self, qft6):
        result = run_one(GreedyScheduler(), qft6)
        cnot_traces = [t for t in result.traces if t.kind == "cnot"]
        assert cnot_traces
        assert all(t.end_cycle - t.start_cycle >= 2 for t in cnot_traces)

    def test_idle_fraction_between_zero_and_one(self, qft6):
        result = run_one(AutoBraidScheduler(), qft6)
        assert 0.0 <= result.idle_fraction() <= 1.0


class TestRescqScheduler:
    def test_executes_every_gate(self, small_circuit):
        result = run_one(RescqScheduler(), small_circuit)
        assert result.num_gates == len(small_circuit.without_free_gates())

    def test_deterministic_given_seed(self, qft6):
        a = run_one(RescqScheduler(), qft6, seed=2)
        b = run_one(RescqScheduler(), qft6, seed=2)
        assert a.total_cycles == b.total_cycles
        assert [t.end_cycle for t in a.traces] == [t.end_cycle for t in b.traces]

    def test_faster_than_baselines_on_rotation_heavy_workload(self, dnn6):
        rescq = run_one(RescqScheduler(), dnn6)
        greedy = run_one(GreedyScheduler(), dnn6)
        autobraid = run_one(AutoBraidScheduler(), dnn6)
        assert rescq.total_cycles < greedy.total_cycles
        assert rescq.total_cycles < autobraid.total_cycles

    def test_speedup_is_substantial_on_parallel_workload(self):
        circuit = ising_circuit(12)
        rescq = run_one(RescqScheduler(), circuit)
        autobraid = run_one(AutoBraidScheduler(), circuit)
        assert autobraid.total_cycles / rescq.total_cycles > 1.3

    def test_lower_idle_fraction_than_baseline(self, dnn6):
        rescq = run_one(RescqScheduler(), dnn6)
        autobraid = run_one(AutoBraidScheduler(), dnn6)
        assert rescq.idle_fraction() <= autobraid.idle_fraction()

    def test_total_cycles_at_least_critical_path_bound(self, small_circuit):
        """Sanity: the realtime schedule cannot beat a trivial lower bound of
        one cycle per dependent gate on the deepest chain."""
        result = run_one(RescqScheduler(), small_circuit)
        depth = small_circuit.without_free_gates().depth()
        assert result.total_cycles >= depth

    def test_traces_are_consistent(self, qft6):
        result = run_one(RescqScheduler(), qft6)
        for trace in result.traces:
            assert trace.end_cycle > trace.start_cycle or trace.service_time == 0
            assert trace.end_cycle >= trace.scheduled_cycle
            assert trace.latency_after_schedule >= 0

    def test_mst_computations_happen(self, qft6):
        result = run_one(RescqScheduler(), qft6)
        assert result.metadata["mst_computations"] >= 1

    def test_runs_without_mst_routing(self, qft6):
        config = CONFIG.with_updates(use_mst_routing=False)
        result = run_one(RescqScheduler(), qft6, config=config)
        assert result.num_gates == len(qft6.without_free_gates())

    def test_ablation_no_parallel_prep_is_slower(self):
        circuit = dnn_circuit(8, layers=3)
        fast = run_one(RescqScheduler(), circuit)
        ablated_config = CONFIG.with_updates(parallel_preparation=False,
                                             eager_correction_prep=False)
        slow = run_one(RescqScheduler(name="rescq-ablated"), circuit,
                       config=ablated_config)
        assert slow.total_cycles >= fast.total_cycles

    def test_works_on_compressed_grid(self):
        circuit = dnn_circuit(8, layers=2)
        layout = star_layout(8, StarVariant.STAR)
        compressed, _ = compress_layout(layout, 1.0, seed=2)
        result = run_one(RescqScheduler(), circuit, layout=compressed)
        assert result.num_gates == len(circuit.without_free_gates())

    def test_compression_does_not_break_baselines(self):
        circuit = qft_circuit(6)
        layout, _ = compress_layout(star_layout(6, StarVariant.STAR), 1.0, seed=2)
        for scheduler in (GreedyScheduler(), AutoBraidScheduler()):
            result = run_one(scheduler, circuit, layout=layout)
            assert result.total_cycles > 0

    def test_compressed_grid_is_slower_for_baseline(self):
        circuit = dnn_circuit(8, layers=2)
        full = run_one(AutoBraidScheduler(), circuit,
                       layout=star_layout(8, StarVariant.STAR))
        compressed_layout, _ = compress_layout(star_layout(8, StarVariant.STAR),
                                               1.0, seed=2)
        compressed = run_one(AutoBraidScheduler(), circuit,
                             layout=compressed_layout)
        assert compressed.total_cycles >= full.total_cycles

    def test_pure_clifford_circuit_executes(self):
        circuit = Circuit(4, name="clifford")
        circuit.h(0).cnot(0, 1).cnot(1, 2).h(3).cnot(2, 3)
        result = run_one(RescqScheduler(), circuit)
        assert result.num_gates == 5
        assert all(t.injections == 0 for t in result.traces)

    def test_t_gate_chain_truncates(self):
        """Rz(pi/4) corrections become Clifford after two doublings, so the
        injection count per gate never exceeds 2."""
        circuit = Circuit(2, name="tchain")
        for _ in range(10):
            circuit.rz(0, math.pi / 4)
            circuit.rz(1, math.pi / 4)
        result = run_one(RescqScheduler(), circuit, seed=5)
        rz_traces = [t for t in result.traces if t.kind == "rz"]
        assert all(t.injections <= 2 for t in rz_traces)

    def test_single_qubit_circuit(self):
        circuit = Circuit(1, name="single")
        circuit.h(0).rz(0, 0.5).h(0).rz(0, 1.2)
        result = run_one(RescqScheduler(), circuit)
        assert result.num_gates == 4

    def test_planned_jobs_multiple_seeds(self, qft6):
        jobs = plan_jobs([RescqScheduler()], qft6, CONFIG,
                         default_layout(qft6), 3)
        results = ExecutionEngine().run(jobs)
        assert len(results) == 3
        assert len({r.seed for r in results}) == 3
