"""Regenerate the golden-trace JSON files (see tests/golden_cases.py).

Run only when a behaviour change is intentional::

    PYTHONPATH=src python tests/capture_golden.py
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

from golden_cases import GOLDEN_DIR, golden_cases, golden_path, run_case


def main() -> int:
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    for case_id, circuit_key, scheduler, seed, variant in golden_cases():
        payload = run_case(circuit_key, scheduler, seed, variant)
        with open(golden_path(case_id), "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"captured {case_id}: {payload['total_cycles']} cycles, "
              f"{len(payload['traces'])} traces")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
